"""Benchmark F4 — Figure 4: high-precision query time per dataset.

Two layers:

* per-(dataset, algorithm) pytest-benchmark timings — the raw data
  behind Figure 4's bars, measured by the benchmark machinery itself;
* the figure harness run, which produces the ``c.cx``-annotated table
  (written to ``results/fig4.txt``) and the paper-shape assertions.
"""

from __future__ import annotations

import pytest

from repro.bepi.solver import bepi_query
from repro.core.fifo_fwdpush import fifo_forward_push
from repro.core.power_iteration import power_iteration
from repro.core.powerpush import power_push
from repro.experiments.config import query_sources
from repro.experiments.fig4 import run_fig4

_ALGORITHMS = ("PowerPush", "BePI", "FIFO-FwdPush", "PowItr")


def _query_once(workspace, dataset, algorithm, source):
    graph = workspace.graph(dataset)
    l1_threshold = workspace.config.l1_threshold(graph)
    if algorithm == "PowerPush":
        return power_push(graph, source, l1_threshold=l1_threshold)
    if algorithm == "PowItr":
        return power_iteration(graph, source, l1_threshold=l1_threshold)
    if algorithm == "FIFO-FwdPush":
        return fifo_forward_push(graph, source, l1_threshold=l1_threshold)
    index = workspace.bepi_index(dataset)
    return bepi_query(graph, index, source, delta=l1_threshold)


def pytest_generate_tests(metafunc):
    if {"dataset", "algorithm"} <= set(metafunc.fixturenames):
        from repro.experiments.config import bench_config

        datasets = bench_config().datasets
        metafunc.parametrize(
            "dataset,algorithm",
            [(d, a) for d in datasets for a in _ALGORITHMS],
            ids=[f"{d}-{a}" for d in datasets for a in _ALGORITHMS],
        )


def test_hp_query(benchmark, workspace, dataset, algorithm):
    """One high-precision query, timed by pytest-benchmark."""
    graph = workspace.graph(dataset)
    graph.transition_matrix_transpose()  # warm the shared cache
    if algorithm == "BePI":
        workspace.bepi_index(dataset)  # exclude construction, as paper
    source = int(query_sources(graph, 1, workspace.config.seed)[0])
    result = benchmark(_query_once, workspace, dataset, algorithm, source)
    if result.residue is not None:
        assert result.r_sum <= workspace.config.l1_threshold(graph)


def test_fig4_report(benchmark, workspace, write_report):
    result = benchmark.pedantic(
        run_fig4, args=(workspace,), rounds=1, iterations=1
    )
    write_report("fig4", result.render())
    for dataset, by_method in result.seconds.items():
        # Paper shape: PowerPush beats BePI's query time on all but the
        # smallest dataset; at NumPy scale we assert it is never more
        # than 1.5x BePI anywhere and faster somewhere.
        assert (
            by_method["PowerPush"] <= 1.5 * by_method["BePI"]
        ), dataset
    wins = sum(
        by_method["PowerPush"] <= by_method["BePI"]
        for by_method in result.seconds.values()
    )
    assert wins >= max(1, len(result.seconds) - 1)
