"""Shared fixtures for the benchmark suite.

The benchmarks default to the scaled-down bench configuration (three
representative datasets, three sources); set ``REPRO_BENCH_FULL=1`` for
the paper's full protocol or ``REPRO_BENCH_DATASETS`` /
``REPRO_BENCH_SOURCES`` / ``REPRO_BENCH_SCALE`` for custom runs.

Every experiment writes its rendered report (the reproduced table or
figure) to ``results/<experiment>.txt`` so the artefacts survive the
pytest run; the console shows pytest-benchmark's timing table.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import bench_config
from repro.experiments.workspace import Workspace

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def workspace() -> Workspace:
    """One shared workspace (datasets + indexes cached) per session."""
    return Workspace(bench_config())


@pytest.fixture(scope="session")
def write_report():
    """Callable saving a rendered experiment report under results/."""

    def _write(name: str, text: str) -> Path:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _write
