"""Benchmark SV — the concurrent serving layer vs serial queries.

A Zipfian read-heavy workload replays twice over the same R-MAT graph:
once through :class:`~repro.serving.server.EngineServer` (micro-batch
scheduler + versioned result cache, a closed-loop worker pool) and
once through a bare engine answering one query at a time.  The claims
under test:

* batched/cached throughput is at least ``MIN_SPEEDUP`` x serial,
* every served answer is byte-identical to the serial baseline's,
* the metrics land in ``results/BENCH_serving.json`` — throughput,
  p50/p99 latency, cache hit rate, batching factor — the first entries
  of the serving bench trajectory.

With ``--workers N`` the bench additionally runs the same workload
through the multi-process :class:`~repro.serving.sharded.ShardedDispatcher`
(N shard processes mapping one shared-memory graph image) and compares
it against the thread-based server.  Three gates then apply:

* both modes must stay byte-identical to the serial baseline (and
  therefore to each other — placement never changes a seeded answer),
* the run must leave **zero** ``/dev/shm`` segments behind
  (checked against :data:`repro.serving.shm.SEGMENT_PREFIX` before
  exit), and
* process-mode throughput must be at least ``MIN_PROCESS_SPEEDUP`` x
  thread mode — enforced only when the machine actually offers the
  workers >= 2 cores (a single-core container cannot demonstrate
  process parallelism; the ratio is still measured and reported).

With ``--chaos`` the sharded run happens under a seeded fault
schedule (worker kills, dropped/delayed replies — see
:mod:`repro.serving.faults`): the supervisor must respawn every
killed shard over the shared graph image, the retry machinery must
recover every request, and the gates assert zero hung futures,
byte-identical completed answers, full capacity restored, and bounded
recovery time.  A separate probe crashes a shard mid-update-barrier
and checks the barrier settles on the survivors.

Also runnable as a script (CI exercises this on every push)::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --workers 2
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --chaos
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.durability.atomic import atomic_write_json
from repro.generators.rmat import rmat_digraph
from repro.serving import (
    FaultInjector,
    FaultSpec,
    WorkloadGenerator,
    run_loadtest,
)
from repro.serving.shm import SEGMENT_PREFIX

#: The scheduler+cache must beat one-query-at-a-time by at least this.
MIN_SPEEDUP = 2.0

#: Per-record WAL fsync may cost at most this fraction of update
#: throughput (vs the same durable path with fsync off).
MAX_FSYNC_LOSS = 0.25

#: Process mode must beat thread mode by at least this — when the host
#: grants the shards >= 2 cores (otherwise reported, not enforced).
MIN_PROCESS_SPEEDUP = 2.0

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
DEFAULT_JSON = RESULTS_DIR / "BENCH_serving.json"


def _effective_cores(workers: int) -> int:
    """Cores the worker pool can actually spread over."""
    try:
        available = len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        available = os.cpu_count() or 1
    return min(workers, available)


def leaked_segments() -> list[str]:
    """Shared-memory segments of ours still present in ``/dev/shm``."""
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return []
    return sorted(
        entry.name
        for entry in shm_dir.iterdir()
        if entry.name.startswith(SEGMENT_PREFIX)
    )


def run_serving_bench(
    *,
    scale: int = 10,
    edges: int = 8_000,
    requests: int = 400,
    sources: int = 48,
    zipf: float = 1.2,
    concurrency: int = 8,
    window: float = 0.002,
    seed: int = 2021,
    workers: int = 0,
    l1_threshold: float = 1e-7,
    arrival: str = "closed",
    arrival_rate: float = 500.0,
    slo_ms: float | None = None,
    deadline_ms: float | None = None,
    max_inflight: int | None = None,
    degrade_l1: float | None = None,
    chaos: FaultInjector | None = None,
    max_restarts: int | None = None,
    request_timeout: float | None = None,
):
    """One measured loadtest run; returns the LoadtestReport."""

    # Read-only workload: both runs can share one immutable graph.
    base = rmat_digraph(
        scale, edges, rng=np.random.default_rng(seed), name="serving-rmat"
    )

    def make_graph():
        return base

    workload = WorkloadGenerator(
        base.num_nodes,
        num_sources=sources,
        zipf_exponent=zipf,
        read_fraction=1.0,  # the read-heavy contract the cache serves
        arrival=arrival,
        arrival_rate=arrival_rate,
        seed=seed,
    ).generate(requests)
    return run_loadtest(
        make_graph,
        workload,
        method="powerpush",
        params={"l1_threshold": l1_threshold},
        seed=seed,
        concurrency=concurrency,
        window=window,
        workers=workers,
        slo_ms=slo_ms,
        deadline_ms=deadline_ms,
        max_inflight=max_inflight,
        degrade_params=(
            {"l1_threshold": degrade_l1}
            if degrade_l1 is not None
            else None
        ),
        chaos=chaos,
        max_restarts=max_restarts,
        request_timeout=request_timeout,
    )


def test_serving_speedup_and_equivalence(benchmark, write_report):
    report = benchmark.pedantic(run_serving_bench, rounds=1, iterations=1)
    write_report("serving", report.render())
    report.write_json(DEFAULT_JSON)

    assert report.identical is True, (
        "served answers diverged from the serial baseline"
    )
    assert report.cache_hit_rate > 0.0, "Zipfian workload never hit cache"
    assert report.batching_factor >= 1.0
    assert report.speedup >= MIN_SPEEDUP, (
        f"serving layer at {report.speedup:.2f}x serial "
        f"(expected >= {MIN_SPEEDUP}x)"
    )


def _per_worker_hit_rates(stats: dict[str, Any]) -> dict[str, float]:
    return {
        worker_id: float(worker["cache"].get("hit_rate", 0.0))
        for worker_id, worker in stats.get("per_worker", {}).items()
    }


def _run_process_comparison(args: argparse.Namespace, sizes) -> int:
    """``--workers N``: thread mode vs N shard processes, three gates."""
    scale, edges, requests, sources = sizes
    # Process parallelism pays off on solve-dominated traffic: spread
    # the Zipf over more distinct sources and tighten the threshold so
    # the comparison measures parallel solving, not shared cache hits,
    # and saturate both modes with an open-loop arrival burst so each
    # reaches its full micro-batch depth (closed-loop clients starve the
    # per-shard queues of burst depth and measure client count instead).
    sources = max(sources, requests // 2)
    common = dict(
        scale=scale,
        edges=edges,
        requests=requests,
        sources=sources,
        zipf=args.zipf,
        concurrency=args.concurrency,
        seed=args.seed,
        l1_threshold=1e-8,
        arrival="open",
        arrival_rate=50_000.0,
    )
    thread_report = run_serving_bench(**common)
    process_report = run_serving_bench(**common, workers=args.workers)

    print("--- thread mode ---")
    print(thread_report.render())
    print(f"--- process mode ({args.workers} workers) ---")
    print(process_report.render())

    thread_qps = thread_report.served.throughput_qps
    process_qps = process_report.served.throughput_qps
    process_speedup = process_qps / thread_qps if thread_qps else 0.0
    hit_rates = _per_worker_hit_rates(process_report.server_stats)
    leaks = leaked_segments()
    cores = _effective_cores(args.workers)

    payload = {
        "thread": thread_report.to_dict(),
        "process": process_report.to_dict(),
        "workers": args.workers,
        "effective_cores": cores,
        "process_speedup": process_speedup,
        "per_worker_hit_rate": hit_rates,
        "leaked_segments": leaks,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_json(out, payload)
    print(f"metrics written to {out}")
    print(
        f"process vs thread: {process_speedup:.2f}x "
        f"({process_qps:.0f} vs {thread_qps:.0f} q/s, "
        f"{cores} effective cores)"
    )
    print(
        "per-worker cache hit rates: "
        + ", ".join(f"w{k}={v:.1%}" for k, v in sorted(hit_rates.items()))
    )

    failed = False
    for label, report in (("thread", thread_report), ("process", process_report)):
        if report.identical is not True:
            print(f"FAIL: {label}-mode answers diverged from serial baseline")
            failed = True
    if leaks:
        print(f"FAIL: leaked shared-memory segments: {leaks}")
        failed = True
    if cores >= 2 and process_speedup < MIN_PROCESS_SPEEDUP:
        print(
            f"FAIL: process mode at {process_speedup:.2f}x thread mode "
            f"(expected >= {MIN_PROCESS_SPEEDUP}x on {cores} cores)"
        )
        failed = True
    elif cores < 2:
        print(
            f"NOTE: only {cores} effective core(s); the "
            f"{MIN_PROCESS_SPEEDUP}x process-over-thread gate needs >= 2 "
            "and is reported, not enforced"
        )
    if failed:
        return 1
    print(
        f"OK: byte-identical across serial/thread/process, zero leaked "
        f"segments, process mode at {process_speedup:.2f}x thread mode"
    )
    return 0


def _run_overload(args: argparse.Namespace, sizes) -> int:
    """``--overload``: open-loop flood through the async front door.

    A short closed-loop run calibrates the server's sustainable
    service rate; the measured run then arrives at
    ``--overload-factor`` (default 3) times that rate, with deadlines,
    admission shedding, and a degraded tier.  Five gates:

    * every request is accounted (completed/shed/expired/failed — a
      hung future would leave ``accounted < queries``),
    * goodput under the SLO is strictly positive (the front door keeps
      answering within SLO *while* overloaded),
    * the run actually overloaded (something shed/degraded/expired),
    * p99 of admitted requests stays bounded by the deadline (plus
      scheduling slack) — overload degrades admission, not the tail,
    * every served answer is byte-identical to the serial baseline
      (full fidelity against the caller's request, degraded against
      the degraded request), and no shm segments leak.
    """
    scale, edges, requests, sources = sizes
    # Solve-dominated traffic (many distinct sources, tight threshold):
    # overload must saturate the solver, not the result cache.
    sources = max(sources, requests // 2)
    common = dict(
        scale=scale,
        edges=edges,
        sources=sources,
        zipf=args.zipf,
        concurrency=args.concurrency,
        seed=args.seed,
        l1_threshold=1e-8,
    )
    calibration = run_serving_bench(
        **common, requests=max(80, requests // 4)
    )
    service_rate = calibration.served.throughput_qps
    arrival_rate = max(args.overload_factor * service_rate, 200.0)
    print(
        f"calibrated service rate {service_rate:.0f} q/s -> open-loop "
        f"arrivals at {arrival_rate:.0f} q/s "
        f"({args.overload_factor:.1f}x)"
    )
    report = run_serving_bench(
        **common,
        requests=requests,
        arrival="open",
        arrival_rate=arrival_rate,
        slo_ms=args.slo_ms,
        deadline_ms=args.deadline_ms,
        max_inflight=args.max_inflight,
        degrade_l1=args.degrade_l1,
    )
    print(report.render())

    served = report.served
    leaks = leaked_segments()
    payload = {
        "service_rate_qps": service_rate,
        "arrival_rate_qps": arrival_rate,
        "overload_factor": args.overload_factor,
        "slo_ms": args.slo_ms,
        "deadline_ms": args.deadline_ms,
        "max_inflight": args.max_inflight,
        "degrade_l1": args.degrade_l1,
        "goodput_qps": served.goodput_qps,
        "report": report.to_dict(),
        "leaked_segments": leaks,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    # Merge alongside the baseline serving metrics rather than
    # clobbering them: both runs feed one BENCH_serving.json.
    existing: dict[str, Any] = {}
    if out.exists():
        existing = json.loads(out.read_text())
    existing["overload"] = payload
    atomic_write_json(out, existing)
    print(f"metrics written to {out}")
    print(
        f"overload: goodput={served.goodput_qps:.0f} q/s "
        f"shed={served.shed} degraded={served.degraded} "
        f"deadline_expired={served.deadline_expired} "
        f"failed={served.failed} accounted={served.accounted}/"
        f"{served.queries}"
    )

    failed = False
    if served.accounted != served.queries:
        print(
            f"FAIL: {served.queries - served.accounted} request(s) "
            f"unaccounted — a future hung or vanished"
        )
        failed = True
    if served.failed:
        print(f"FAIL: {served.failed} unexpected request failure(s)")
        failed = True
    if served.within_slo <= 0:
        print("FAIL: zero requests completed within the SLO under load")
        failed = True
    if not (served.shed + served.degraded + served.deadline_expired):
        print(
            "FAIL: nothing shed/degraded/expired — the run never "
            "actually overloaded the server; raise --overload-factor"
        )
        failed = True
    p99_bound_ms = args.deadline_ms * 1.5
    if served.p99_ms > p99_bound_ms:
        print(
            f"FAIL: admitted p99 {served.p99_ms:.1f}ms above "
            f"{p99_bound_ms:.0f}ms (deadline x1.5) — deadlines are "
            f"not bounding the tail"
        )
        failed = True
    if report.identical is not True:
        print("FAIL: a served answer diverged from the serial baseline")
        failed = True
    if leaks:
        print(f"FAIL: leaked shared-memory segments: {leaks}")
        failed = True
    if failed:
        return 1
    print(
        f"OK: goodput {served.goodput_qps:.0f} q/s under a "
        f"{args.slo_ms:.0f}ms SLO at {args.overload_factor:.1f}x "
        f"overload; p99 {served.p99_ms:.1f}ms bounded; every request "
        f"accounted; byte-identical answers"
    )
    return 0


def _chaos_barrier_probe(seed: int) -> dict[str, Any]:
    """Crash a shard mid-``apply_updates`` and verify self-healing.

    The read-only workload in the main chaos run never broadcasts
    updates, so the ``crash_update`` fault gets a dedicated probe:
    worker 0 is armed to die *after* applying the first update
    broadcast but *before* acking it.  Checks (returned for gating):
    the barrier settles on the survivor's version instead of hanging,
    the respawn replays the update journal to that version, and
    post-crash answers are byte-identical to a serial engine at the
    same version.
    """
    from repro.api.engine import PPREngine
    from repro.graph.dynamic import DynamicGraph
    from repro.serving import ShardedDispatcher

    base = rmat_digraph(
        8, 1200, rng=np.random.default_rng(seed), name="chaos-barrier"
    )
    updates = []
    for u in (1, 2):
        v = next(
            v
            for v in range(base.num_nodes)
            if v != u and not base.has_edge(u, v)
        )
        updates.append(("add", u, v))
    injector = FaultInjector([FaultSpec("crash_update", worker=0, at=0)])
    began = time.monotonic()
    with ShardedDispatcher(
        DynamicGraph(base),
        workers=2,
        alpha=0.2,
        seed=seed,
        fault_injector=injector,
    ) as disp:
        version = disp.apply_updates(updates)
        barrier_settled = version == len(updates)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            supervisor = disp.stats(timeout=0.5)["supervisor"]
            if supervisor["respawns"] >= 1 and disp.num_workers == 2:
                break
            time.sleep(0.05)
        supervisor = disp.stats()["supervisor"]
        respawned = supervisor["respawns"] >= 1 and disp.num_workers == 2
        reference = PPREngine(DynamicGraph(base), alpha=0.2, seed=seed)
        reference.apply_updates(updates)
        identical = True
        for source in range(0, base.num_nodes, 47):
            served = disp.query(source, "powerpush", l1_threshold=1e-7)
            expected = reference.query(
                source, "powerpush", l1_threshold=1e-7
            )
            identical = identical and (
                served.version == version
                and served.result.estimate.tobytes()
                == expected.estimate.tobytes()
            )
        recovery = dict(supervisor["recovery_s"])
    return {
        "barrier_settled": barrier_settled,
        "version": version,
        "respawned": respawned,
        "identical": identical,
        "recovery_s": recovery,
        "elapsed_s": time.monotonic() - began,
    }


def _run_chaos(args: argparse.Namespace, sizes) -> int:
    """``--chaos``: the sharded run under a seeded fault schedule.

    A Zipfian closed-loop workload replays against ``--workers`` (or
    2) shard processes while :class:`FaultInjector` kills workers and
    drops/delays replies at seed-deterministic points.  Gates:

    * every request is accounted and none failed (retry + respawn
      recovered all of them — zero hung futures),
    * completed answers stay byte-identical to the serial baseline,
    * every killed worker is respawned (capacity fully restored: no
      worker removed, no degraded-capacity flag) with bounded
      recovery time,
    * the mid-barrier crash probe settles and heals,
    * zero leaked shared-memory segments.
    """
    scale, edges, requests, sources = sizes
    workers = args.workers or 2
    injector = FaultInjector.random_schedule(
        workers=workers,
        requests=requests,
        kills=args.chaos_kills,
        stops=args.chaos_stops,
        drops=args.chaos_drops,
        delays=args.chaos_delays,
        seed=args.chaos_seed,
    )
    schedule = [dataclasses.asdict(spec) for spec in injector.schedule]
    print(f"chaos schedule (seed {args.chaos_seed}): {schedule}")
    report = run_serving_bench(
        scale=scale,
        edges=edges,
        requests=requests,
        sources=sources,
        zipf=args.zipf,
        concurrency=args.concurrency,
        seed=args.seed,
        workers=workers,
        chaos=injector,
        max_restarts=args.max_restarts,
        request_timeout=args.request_timeout,
    )
    print(report.render())
    barrier = _chaos_barrier_probe(args.seed)
    print(
        f"barrier-crash probe: settled={barrier['barrier_settled']} "
        f"respawned={barrier['respawned']} "
        f"identical={barrier['identical']}"
    )

    served = report.served
    supervisor = report.chaos.get("supervisor", {})
    kills_fired = sum(
        1 for spec in report.chaos.get("fired", []) if spec["kind"] == "kill"
    )
    recovery = supervisor.get("recovery_s", {}) or {}
    leaks = leaked_segments()

    payload = {
        "workers": workers,
        "chaos_seed": args.chaos_seed,
        "max_restarts": args.max_restarts,
        "request_timeout": args.request_timeout,
        "schedule": schedule,
        "report": report.to_dict(),
        "barrier_probe": barrier,
        "leaked_segments": leaks,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    # Merge alongside the baseline serving metrics rather than
    # clobbering them: every serving run feeds one BENCH_serving.json.
    existing: dict[str, Any] = {}
    if out.exists():
        existing = json.loads(out.read_text())
    existing["chaos"] = payload
    atomic_write_json(out, existing)
    print(f"metrics written to {out}")
    recovery_max = recovery.get("max")
    print(
        f"chaos: kills_fired={kills_fired} "
        f"respawns={supervisor.get('respawns', 0)} "
        f"retries={supervisor.get('retries', 0)} "
        f"request_timeouts={supervisor.get('request_timeouts', 0)} "
        f"recovery_max="
        + (f"{recovery_max * 1e3:.0f}ms" if recovery_max else "n/a")
        + f" accounted={served.accounted}/{served.queries}"
    )

    failed = False
    if served.accounted != served.queries:
        print(
            f"FAIL: {served.queries - served.accounted} request(s) "
            f"unaccounted — a future hung or vanished under chaos"
        )
        failed = True
    if served.failed:
        print(
            f"FAIL: {served.failed} request(s) failed — retry + respawn "
            f"did not recover them"
        )
        failed = True
    if report.identical is not True:
        print("FAIL: a completed answer diverged from the serial baseline")
        failed = True
    if kills_fired and supervisor.get("respawns", 0) < 1:
        print("FAIL: a worker was killed but never respawned")
        failed = True
    if supervisor.get("removed"):
        print(
            f"FAIL: workers {supervisor['removed']} permanently removed "
            f"— restart budget exhausted instead of recovering"
        )
        failed = True
    if supervisor.get("degraded_capacity"):
        print("FAIL: dispatcher finished with degraded capacity")
        failed = True
    if kills_fired and (recovery_max is None or recovery_max > 15.0):
        print(
            f"FAIL: recovery time {recovery_max} not recorded or "
            f"unbounded (> 15s)"
        )
        failed = True
    for key in ("barrier_settled", "respawned", "identical"):
        if not barrier[key]:
            print(f"FAIL: barrier-crash probe: {key} is False")
            failed = True
    if leaks:
        print(f"FAIL: leaked shared-memory segments: {leaks}")
        failed = True
    if failed:
        return 1
    print(
        f"OK: {served.queries} requests all accounted under "
        f"{len(schedule)} scheduled faults; "
        f"{supervisor.get('respawns', 0)} respawn(s), max recovery "
        + (f"{recovery_max * 1e3:.0f}ms" if recovery_max else "n/a")
        + "; byte-identical answers; barrier crash healed; zero leaks"
    )
    return 0


def _durable_update_qps(
    scale: int, edges: int, seed: int, *, fsync: bool,
    batches: int = 32, batch_size: int = 64, trials: int = 3,
) -> float:
    """Update throughput (updates/s) through a durable graph.

    Applies a scripted stream batch-by-batch with a WAL flush after
    every batch — the exact group commit the serving ack path does, at
    the server's default ``max_batch`` of 64 — so the fsync on/off
    ratio isolates the durability tax.  Best-of-``trials`` throughput
    keeps the gate stable against fsync tail latency (p50 is ~100µs on
    an idle ext4 volume; the p99 stretches into milliseconds).
    """
    import tempfile

    from repro.durability import open_durable_graph
    from repro.graph.dynamic import DynamicGraph, sample_edge_update

    base = rmat_digraph(
        scale, edges, rng=np.random.default_rng(seed), name="fsync-probe"
    )
    scratch = DynamicGraph(base)
    rng = np.random.default_rng(seed + 1)
    updates = []
    for _ in range(batches * batch_size):
        update = sample_edge_update(scratch, rng)
        scratch.apply_updates([update])
        updates.append(update)
    best = 0.0
    for _ in range(trials):
        with tempfile.TemporaryDirectory(prefix="fsync-probe-") as tmp:
            manager, graph = open_durable_graph(
                Path(tmp) / "durable", DynamicGraph(base), fsync=fsync
            )
            started = time.perf_counter()
            for start in range(0, len(updates), batch_size):
                graph.apply_updates(updates[start : start + batch_size])
                manager.flush()
            elapsed = time.perf_counter() - started
            manager.close()
        best = max(best, len(updates) / elapsed)
    return best


def _serving_mix_qps(
    scale: int, edges: int, seed: int, *, fsync: bool,
    requests: int = 96, update_every: int = 4, batch_size: int = 8,
    trials: int = 2,
) -> float:
    """Request throughput of the smoke serving mix over a durable graph.

    Queries with an update batch every ``update_every`` requests — the
    soak-mode mix — through an :class:`EngineServer` whose WAL is the
    real ack path.  This is the number the ≤``MAX_FSYNC_LOSS`` gate
    reads: group commit must amortise the per-record fsync into the
    serving workload, not just survive a microbenchmark.
    """
    import tempfile

    from repro.graph.dynamic import DynamicGraph, sample_edge_update
    from repro.serving import EngineServer

    base = rmat_digraph(
        scale, edges, rng=np.random.default_rng(seed), name="fsync-mix"
    )
    scratch = DynamicGraph(base)
    rng = np.random.default_rng(seed + 2)
    n_batches = requests // update_every + 1
    updates = []
    for _ in range(n_batches * batch_size):
        update = sample_edge_update(scratch, rng)
        scratch.apply_updates([update])
        updates.append(update)
    sources = list(
        np.random.default_rng(seed + 3).integers(0, base.num_nodes, 16)
    )
    best = 0.0
    for _ in range(trials):
        with tempfile.TemporaryDirectory(prefix="fsync-mix-") as tmp:
            server = EngineServer(
                DynamicGraph(base),
                alpha=0.2,
                seed=7,
                cache_capacity=0,
                wal_dir=Path(tmp) / "durable",
                wal_fsync=fsync,
            )
            with server:
                batch = 0
                started = time.perf_counter()
                for i in range(requests):
                    server.query(
                        int(sources[i % len(sources)]),
                        "powerpush",
                        l1_threshold=1e-5,
                    )
                    if i % update_every == 0:
                        start = batch * batch_size
                        server.apply_updates(
                            updates[start : start + batch_size]
                        )
                        batch += 1
                elapsed = time.perf_counter() - started
        best = max(best, requests / elapsed)
    return best


def _run_crash_restart(args: argparse.Namespace, sizes) -> int:
    """``--crash-restart``: the durability layer's acceptance gates.

    Three sub-suites, all blocking:

    * the whole-process crash harness — SIGKILL-equivalent death at
      every WAL/checkpoint protocol point, recovery to the logged
      version with byte-identical answers;
    * the exhaustive torn-tail sweep — the WAL's final record truncated
      at every byte offset must heal and stay appendable;
    * the fsync tax — durable update throughput with per-record fsync
      must stay within ``MAX_FSYNC_LOSS`` of the fsync-off run.

    Metrics (recovery latency, WAL replay rate, fsync delta) merge into
    ``BENCH_serving.json`` under ``"crash_restart"``.
    """
    from repro.durability import run_crash_harness, torn_tail_sweep

    scale, edges, _requests, _sources = sizes

    print("crash harness: scheduled kills at every WAL/checkpoint point")
    harness = run_crash_harness()
    for case in harness["cases"]:
        print(
            f"  {case['point']}@{case['at']}: exit={case['exitcode']} "
            f"acked={case['acked_version']} "
            f"recovered={case['recovered_version']} "
            f"replayed={case['replayed_records']} "
            f"recovery={case['recovery_seconds'] * 1e3:.1f}ms "
            f"identical={case['byte_identical']} ok={case['ok']}"
        )
    total_recovery = sum(c["recovery_seconds"] for c in harness["cases"])
    replay_rate = (
        harness["total_replayed_records"] / total_recovery
        if total_recovery > 0
        else None
    )

    print("torn-tail sweep: truncating the final record at every offset")
    sweep = torn_tail_sweep()
    print(
        f"  frame={sweep['frame_bytes']}B offsets_ok="
        f"{sweep['offsets_ok']}/{sweep['offsets_tested']} ok={sweep['ok']}"
    )

    upd_off = _durable_update_qps(scale, edges, args.seed, fsync=False)
    upd_on = _durable_update_qps(scale, edges, args.seed, fsync=True)
    upd_loss = 1.0 - upd_on / upd_off if upd_off > 0 else 1.0
    print(
        f"fsync tax (update path): {upd_on:.0f} updates/s fsync-on vs "
        f"{upd_off:.0f} fsync-off ({upd_loss:+.1%}; informational)"
    )
    mix_off = _serving_mix_qps(scale, edges, args.seed, fsync=False)
    mix_on = _serving_mix_qps(scale, edges, args.seed, fsync=True)
    fsync_loss = 1.0 - mix_on / mix_off if mix_off > 0 else 1.0
    print(
        f"fsync tax (serving mix): {mix_on:.0f} req/s fsync-on vs "
        f"{mix_off:.0f} fsync-off ({fsync_loss:+.1%} loss, gate ≤ "
        f"{MAX_FSYNC_LOSS:.0%})"
    )
    leaks = leaked_segments()

    payload = {
        "harness": harness,
        "torn_tail": sweep,
        "recovery": {
            "max_seconds": harness["max_recovery_seconds"],
            "total_replayed_records": harness["total_replayed_records"],
            "replay_records_per_second": replay_rate,
        },
        "fsync": {
            "update_path": {
                "updates_per_second_on": upd_on,
                "updates_per_second_off": upd_off,
                "throughput_loss": upd_loss,
            },
            "serving_mix": {
                "requests_per_second_on": mix_on,
                "requests_per_second_off": mix_off,
                "throughput_loss": fsync_loss,
            },
            "gate": MAX_FSYNC_LOSS,
        },
        "leaked_segments": leaks,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    # Merge alongside the baseline serving metrics rather than
    # clobbering them: every serving run feeds one BENCH_serving.json.
    existing: dict[str, Any] = {}
    if out.exists():
        existing = json.loads(out.read_text())
    existing["crash_restart"] = payload
    atomic_write_json(out, existing)
    print(f"metrics written to {out}")

    failed = False
    for case in harness["cases"]:
        if not case["ok"]:
            print(
                f"FAIL: crash at {case['point']}@{case['at']} did not "
                f"recover cleanly (recovered="
                f"{case['recovered_version']} acked="
                f"{case['acked_version']} identical="
                f"{case['byte_identical']})"
            )
            failed = True
    if not sweep["ok"]:
        print(
            f"FAIL: torn-tail offsets {sweep['failed_offsets']} did not "
            f"heal to the pre-torn version"
        )
        failed = True
    if fsync_loss > MAX_FSYNC_LOSS:
        print(
            f"FAIL: fsync costs {fsync_loss:.1%} of serving throughput "
            f"(gate {MAX_FSYNC_LOSS:.0%})"
        )
        failed = True
    if leaks:
        print(f"FAIL: leaked shared-memory segments: {leaks}")
        failed = True
    if failed:
        return 1
    print(
        f"OK: {len(harness['cases'])} kill points recovered "
        f"byte-identically (max recovery "
        f"{harness['max_recovery_seconds'] * 1e3:.0f}ms, "
        f"{harness['total_replayed_records']} records replayed); "
        f"{sweep['offsets_ok']}/{sweep['offsets_tested']} torn offsets "
        f"healed; fsync tax {fsync_loss:.1%}; zero leaks"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Script entry point; ``--smoke`` runs a seconds-scale CI check."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small deterministic run asserting the serving win",
    )
    # Default to None so --smoke only shrinks sizes the user left unset.
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--edges", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--sources", type=int, default=None)
    parser.add_argument("--zipf", type=float, default=1.2)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="also run N shard processes over a shared-memory graph "
        "image and gate process-vs-thread speedup, byte-identity, and "
        "zero leaked segments",
    )
    parser.add_argument(
        "--overload",
        action="store_true",
        help="open-loop overload run through the SLO-aware async front "
        "door: gates goodput-under-SLO, full request accounting, "
        "bounded p99, and byte-identity",
    )
    parser.add_argument(
        "--overload-factor",
        type=float,
        default=3.0,
        help="arrival rate as a multiple of the calibrated service rate",
    )
    parser.add_argument("--slo-ms", type=float, default=50.0)
    parser.add_argument("--deadline-ms", type=float, default=150.0)
    parser.add_argument("--max-inflight", type=int, default=64)
    parser.add_argument("--degrade-l1", type=float, default=1e-4)
    parser.add_argument(
        "--crash-restart",
        action="store_true",
        help="run the durability acceptance gates: scheduled process "
        "kills at every WAL/checkpoint point, exhaustive torn-tail "
        "sweep, and the fsync throughput tax",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run the sharded workload under a seeded fault schedule "
        "and gate full recovery (respawns, retries, byte-identity, "
        "zero hung futures)",
    )
    parser.add_argument(
        "--chaos-kills",
        type=int,
        default=1,
        help="SIGKILLed workers in the schedule",
    )
    parser.add_argument(
        "--chaos-stops",
        type=int,
        default=0,
        help="SIGSTOP/SIGCONT pairs in the schedule",
    )
    parser.add_argument(
        "--chaos-drops",
        type=int,
        default=1,
        help="worker replies swallowed (request timeout must recover)",
    )
    parser.add_argument(
        "--chaos-delays",
        type=int,
        default=1,
        help="worker replies delayed in the schedule",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="fault-schedule seed (defaults to --seed); replays the "
        "whole chaos run bit for bit",
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=3,
        help="per-worker respawn budget before permanent removal",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=2.0,
        help="per-request hang detector driving bounded retries (s)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_JSON,
        help=f"metrics JSON path (default {DEFAULT_JSON})",
    )
    args = parser.parse_args(argv)

    defaults = (9, 4_000, 240, 32) if args.smoke else (10, 8_000, 400, 48)
    scale, edges, requests, sources = (
        given if given is not None else fallback
        for given, fallback in zip(
            (args.scale, args.edges, args.requests, args.sources), defaults
        )
    )

    if args.chaos_seed is None:
        args.chaos_seed = args.seed

    if args.crash_restart:
        return _run_crash_restart(args, (scale, edges, requests, sources))

    if args.chaos:
        return _run_chaos(args, (scale, edges, requests, sources))

    if args.overload:
        return _run_overload(args, (scale, edges, requests, sources))

    if args.workers:
        return _run_process_comparison(
            args, (scale, edges, requests, sources)
        )

    report = run_serving_bench(
        scale=scale,
        edges=edges,
        requests=requests,
        sources=sources,
        zipf=args.zipf,
        concurrency=args.concurrency,
        seed=args.seed,
    )
    print(report.render())
    path = report.write_json(args.out)
    print(f"metrics written to {path}")

    if report.identical is not True:
        print("FAIL: served answers diverged from the serial baseline")
        return 1
    if report.speedup < MIN_SPEEDUP:
        print(
            f"FAIL: speedup {report.speedup:.2f}x below {MIN_SPEEDUP}x"
        )
        return 1
    print(
        f"OK: serving layer at {report.speedup:.2f}x serial throughput, "
        f"byte-identical answers, cache hit rate "
        f"{report.cache_hit_rate:.1%}, batching factor "
        f"{report.batching_factor:.2f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
