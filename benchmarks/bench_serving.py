"""Benchmark SV — the concurrent serving layer vs serial queries.

A Zipfian read-heavy workload replays twice over the same R-MAT graph:
once through :class:`~repro.serving.server.EngineServer` (micro-batch
scheduler + versioned result cache, a closed-loop worker pool) and
once through a bare engine answering one query at a time.  The claims
under test:

* batched/cached throughput is at least ``MIN_SPEEDUP`` x serial,
* every served answer is byte-identical to the serial baseline's,
* the metrics land in ``results/BENCH_serving.json`` — throughput,
  p50/p99 latency, cache hit rate, batching factor — the first entries
  of the serving bench trajectory.

Also runnable as a script (CI exercises this on every push)::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.generators.rmat import rmat_digraph
from repro.serving import WorkloadGenerator, run_loadtest

#: The scheduler+cache must beat one-query-at-a-time by at least this.
MIN_SPEEDUP = 2.0

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
DEFAULT_JSON = RESULTS_DIR / "BENCH_serving.json"


def run_serving_bench(
    *,
    scale: int = 10,
    edges: int = 8_000,
    requests: int = 400,
    sources: int = 48,
    zipf: float = 1.2,
    concurrency: int = 8,
    window: float = 0.002,
    seed: int = 2021,
):
    """One measured loadtest run; returns the LoadtestReport."""

    # Read-only workload: both runs can share one immutable graph.
    base = rmat_digraph(
        scale, edges, rng=np.random.default_rng(seed), name="serving-rmat"
    )

    def make_graph():
        return base

    workload = WorkloadGenerator(
        base.num_nodes,
        num_sources=sources,
        zipf_exponent=zipf,
        read_fraction=1.0,  # the read-heavy contract the cache serves
        seed=seed,
    ).generate(requests)
    return run_loadtest(
        make_graph,
        workload,
        method="powerpush",
        params={"l1_threshold": 1e-7},
        seed=seed,
        concurrency=concurrency,
        window=window,
    )


def test_serving_speedup_and_equivalence(benchmark, write_report):
    report = benchmark.pedantic(run_serving_bench, rounds=1, iterations=1)
    write_report("serving", report.render())
    report.write_json(DEFAULT_JSON)

    assert report.identical is True, (
        "served answers diverged from the serial baseline"
    )
    assert report.cache_hit_rate > 0.0, "Zipfian workload never hit cache"
    assert report.batching_factor >= 1.0
    assert report.speedup >= MIN_SPEEDUP, (
        f"serving layer at {report.speedup:.2f}x serial "
        f"(expected >= {MIN_SPEEDUP}x)"
    )


def main(argv: list[str] | None = None) -> int:
    """Script entry point; ``--smoke`` runs a seconds-scale CI check."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small deterministic run asserting the serving win",
    )
    # Default to None so --smoke only shrinks sizes the user left unset.
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--edges", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--sources", type=int, default=None)
    parser.add_argument("--zipf", type=float, default=1.2)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_JSON,
        help=f"metrics JSON path (default {DEFAULT_JSON})",
    )
    args = parser.parse_args(argv)

    defaults = (9, 4_000, 240, 32) if args.smoke else (10, 8_000, 400, 48)
    scale, edges, requests, sources = (
        given if given is not None else fallback
        for given, fallback in zip(
            (args.scale, args.edges, args.requests, args.sources), defaults
        )
    )

    report = run_serving_bench(
        scale=scale,
        edges=edges,
        requests=requests,
        sources=sources,
        zipf=args.zipf,
        concurrency=args.concurrency,
        seed=args.seed,
    )
    print(report.render())
    path = report.write_json(args.out)
    print(f"metrics written to {path}")

    if report.identical is not True:
        print("FAIL: served answers diverged from the serial baseline")
        return 1
    if report.speedup < MIN_SPEEDUP:
        print(
            f"FAIL: speedup {report.speedup:.2f}x below {MIN_SPEEDUP}x"
        )
        return 1
    print(
        f"OK: serving layer at {report.speedup:.2f}x serial throughput, "
        f"byte-identical answers, cache hit rate "
        f"{report.cache_hit_rate:.1%}, batching factor "
        f"{report.batching_factor:.2f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
