"""Benchmark T2 — Table 2: index size and construction time.

Times the three preprocessing pipelines the paper compares (BePI's
matrices, FORA+'s eps-dependent walk index, SpeedPPR's eps-independent
walk index) and asserts the paper's headline shape: SpeedPPR's index
is the smallest and cheapest to build, BePI's the heaviest.
"""

from __future__ import annotations

import pytest

from repro.bepi.blockelim import build_bepi_index
from repro.experiments.table2 import FORA_INDEX_EPSILON, run_table2
from repro.montecarlo.chernoff import chernoff_walk_count
from repro.walks.index import (
    build_walk_index,
    fora_plus_walk_counts,
    speedppr_walk_counts,
)


def test_build_bepi_index(benchmark, workspace):
    graph = workspace.graph(workspace.config.datasets[0])
    index = benchmark.pedantic(
        build_bepi_index, args=(graph,), rounds=1, iterations=1
    )
    benchmark.extra_info["size_bytes"] = index.size_bytes
    benchmark.extra_info["hubs"] = index.num_hubs


def test_build_speedppr_index(benchmark, workspace):
    graph = workspace.graph(workspace.config.datasets[0])
    index = benchmark.pedantic(
        build_walk_index,
        args=(graph, speedppr_walk_counts(graph)),
        kwargs={"rng": workspace.rng(salt=900), "policy": "speedppr"},
        rounds=1,
        iterations=1,
    )
    assert index.num_walks <= graph.num_edges
    benchmark.extra_info["size_bytes"] = index.size_bytes


def test_build_fora_index(benchmark, workspace):
    graph = workspace.graph(workspace.config.datasets[0])
    n = graph.num_nodes
    num_walks_w = chernoff_walk_count(
        FORA_INDEX_EPSILON, 1.0 / n, p_fail=1.0 / n
    )
    index = benchmark.pedantic(
        build_walk_index,
        args=(graph, fora_plus_walk_counts(graph, num_walks_w)),
        kwargs={"rng": workspace.rng(salt=901), "policy": "fora+"},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["size_bytes"] = index.size_bytes


def test_table2_report(benchmark, workspace, write_report):
    result = benchmark.pedantic(
        run_table2, args=(workspace,), rounds=1, iterations=1
    )
    write_report("table2", result.render())
    for dataset in workspace.config.datasets:
        speed = result.get(dataset, "SpeedPPR")
        fora_report = result.get(dataset, "FORA")
        bepi = result.get(dataset, "BePI")
        # Paper shapes: SpeedPPR index ~10x smaller than FORA+'s and
        # built faster; BePI's matrices the largest of all.
        assert speed.size_bytes < fora_report.size_bytes, dataset
        assert (
            speed.construction_seconds <= fora_report.construction_seconds
        ), dataset
        assert bepi.size_bytes > fora_report.size_bytes, dataset
