"""Benchmark DY — incremental PPR maintenance vs from-scratch solves.

An R-MAT graph evolves under random edge insertions/deletions while a
:class:`~repro.api.engine.PPREngine` keeps a tracked source fresh.
The claim under test: refreshing after a batch of updates via the push
invariant's residue corrections costs measurably fewer residue updates
than re-solving with PowerPush on the compacted graph, at the same
certified ``l1_threshold``.

Also runnable as a script (CI exercises this on every push)::

    PYTHONPATH=src python benchmarks/bench_dynamic_updates.py --smoke
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.dynamic import run_dynamic_updates

#: Incremental refresh must need at most this fraction of the
#: from-scratch residue updates, summed over all batches.
MAX_UPDATE_RATIO = 0.85


def test_dynamic_updates_report(benchmark, write_report):
    result = benchmark.pedantic(
        run_dynamic_updates, rounds=1, iterations=1
    )
    write_report("dynamic", result.render())

    assert result.rows, "no batches measured"
    for row in result.rows:
        # Both routes certify l1_threshold, so the answers agree within
        # the sum of the two certificates.
        assert row.l1_gap <= 2.0 * result.l1_threshold + 1e-12, row
        assert row.certified_bound <= result.l1_threshold + 1e-12, row
    assert result.overall_ratio <= MAX_UPDATE_RATIO, (
        f"incremental refresh used {result.overall_ratio:.3f}x the "
        f"from-scratch residue updates (expected <= {MAX_UPDATE_RATIO})"
    )


def main(argv: list[str] | None = None) -> int:
    """Script entry point; ``--smoke`` runs a seconds-scale CI check."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny deterministic run asserting the incremental win",
    )
    # Default to None so --smoke only shrinks sizes the user left unset.
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--edges", type=int, default=None)
    parser.add_argument("--batches", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--seed", type=int, default=2021)
    args = parser.parse_args(argv)

    defaults = (10, 8_000, 2, 20) if args.smoke else (11, 16_000, 4, 25)
    scale, edges, batches, batch_size = (
        given if given is not None else fallback
        for given, fallback in zip(
            (args.scale, args.edges, args.batches, args.batch_size), defaults
        )
    )

    result = run_dynamic_updates(
        scale=scale,
        num_edges=edges,
        num_batches=batches,
        batch_size=batch_size,
        seed=args.seed,
    )
    print(result.render())
    if not all(
        row.l1_gap <= 2.0 * result.l1_threshold + 1e-12 for row in result.rows
    ):
        print("FAIL: incremental and from-scratch answers diverged")
        return 1
    if result.overall_ratio > MAX_UPDATE_RATIO:
        print(
            f"FAIL: update ratio {result.overall_ratio:.3f} exceeds "
            f"{MAX_UPDATE_RATIO}"
        )
        return 1
    print(
        f"OK: incremental refresh at {result.overall_ratio:.3f}x the "
        f"from-scratch residue updates"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
