"""Micro-benchmarks of the computational kernels.

Not a paper artefact, but the substrate behind every figure: one
global sweep (a Power-Iteration step), one small frontier push (the
local path), a batch of random walks, and the block (multi-source)
variants.  These pin down the constants that the algorithm-level
benchmarks build on, and make kernel-level performance regressions
visible in isolation.

Also runnable as a script — the CI smoke step and the
``repro-ppr bench-kernels`` subcommand share its measurement body
(:func:`repro.perf.run_kernel_bench`)::

    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke

The smoke run times block vs per-source ``batch_query`` at B in
{8, 32} — plus every requested kernel backend (numpy reference, numba
when installed; warm-up runs excluded from the timings) on the same
workload — writes ``results/BENCH_kernels.json`` (speedup, ns/edge,
scratch-allocation counts, per-backend seconds and speedups — uploaded
as a CI artifact next to ``BENCH_serving.json``), and exits nonzero
only when an answer diverges: a block row from its per-source
baseline, or a backend beyond the 1e-9 L1 tolerance from the numpy
reference.  Correctness blocks, timing informs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.kernels import (
    block_global_sweep,
    frontier_push,
    global_sweep,
    sweep_active,
)
from repro.core.residues import BlockPushState, PushState
from repro.perf.kernels import run_kernel_bench
from repro.walks.engine import simulate_walk_stops

#: The block path should beat the per-source loop by at least this at
#: B=32 on the smoke graph; below it the smoke run warns (CI's summary
#: shows the number) without failing the job — only a correctness
#: mismatch is a hard failure.
TARGET_SPEEDUP = 3.0

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
DEFAULT_JSON = RESULTS_DIR / "BENCH_kernels.json"


@pytest.fixture(scope="module")
def kernel_graph(request):
    from repro.experiments.config import bench_config
    from repro.generators.datasets import load_dataset

    graph = load_dataset(bench_config().datasets[-1])
    graph.transition_matrix_transpose()
    return graph


def test_global_sweep(benchmark, kernel_graph):
    """One full mat-vec sweep (a PowItr iteration)."""

    def run():
        state = PushState(kernel_graph, 0)
        global_sweep(state)
        return state

    state = benchmark(run)
    assert state.r_sum < 1.0


def test_frontier_push_small(benchmark, kernel_graph):
    """Local push of a 64-node frontier (queue-phase workload)."""
    rng = np.random.default_rng(0)
    frontier = np.sort(
        rng.choice(kernel_graph.num_nodes, size=64, replace=False)
    ).astype(np.int64)

    def run():
        state = PushState(kernel_graph, 0)
        state.residue[:] = 1.0 / kernel_graph.num_nodes
        state.refresh_r_sum()
        frontier_push(state, frontier)
        return state

    state = benchmark(run)
    assert state.counters.pushes == 64


def test_sweep_active_mixed(benchmark, kernel_graph):
    """Auto-switching sweep at a mid-range threshold."""

    def run():
        state = PushState(kernel_graph, 0)
        for _ in range(3):
            sweep_active(state, 1e-5)
        return state

    state = benchmark(run)
    assert state.counters.pushes > 0


def test_walk_batch(benchmark, kernel_graph):
    """10k alpha-walks from random starts (Monte-Carlo workload)."""
    rng = np.random.default_rng(1)
    starts = rng.integers(
        0, kernel_graph.num_nodes, size=10_000, dtype=np.int64
    )

    def run():
        stops, steps = simulate_walk_stops(
            kernel_graph, starts, alpha=0.2, rng=rng, source=0
        )
        return stops

    stops = benchmark(run)
    assert stops.shape[0] == 10_000


def test_block_global_sweep(benchmark, kernel_graph):
    """One 16-row block mat-mat sweep vs state setup."""
    sources = list(range(16))

    def run():
        state = BlockPushState(kernel_graph, sources)
        block_global_sweep(state, np.arange(state.num_rows))
        return state

    state = benchmark(run)
    assert float(state.r_sum.max()) < 1.0


def test_block_batch_equivalence(benchmark, write_report):
    """The headline run: correctness blocks, timing only informs."""
    report = benchmark.pedantic(
        run_kernel_bench, kwargs={"repeats": 1}, rounds=1, iterations=1
    )
    write_report("kernels_block", report.render())
    assert report.identical, "block answers diverged from per-source solves"
    # Wall-clock ratios are machine-dependent — surfaced, not asserted.
    benchmark.extra_info["speedup_b32"] = report.speedup_at(32)


def main(argv: list[str] | None = None) -> int:
    """Script entry point; ``--smoke`` runs the seconds-scale CI check."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small deterministic run checking block == per-source",
    )
    # Default to None so --smoke only shrinks sizes the user left unset.
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--edges", type=int, default=None)
    parser.add_argument(
        "--batch-sizes",
        default="8,32",
        help="comma-separated batch sizes (default 8,32)",
    )
    parser.add_argument("--l1-threshold", type=float, default=1e-8)
    parser.add_argument("--alpha", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--backends",
        default="auto",
        help=(
            "comma-separated kernel backends to compare "
            "(default 'auto': numpy plus numba when importable)"
        ),
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_JSON,
        help=f"metrics JSON path (default {DEFAULT_JSON})",
    )
    args = parser.parse_args(argv)

    defaults = (8, 2_000) if args.smoke else (10, 16_000)
    scale, edges = (
        given if given is not None else fallback
        for given, fallback in zip((args.scale, args.edges), defaults)
    )
    batch_sizes = tuple(
        int(token) for token in args.batch_sizes.split(",") if token.strip()
    )
    if not batch_sizes:
        parser.error("--batch-sizes needs at least one integer")

    report = run_kernel_bench(
        scale=scale,
        edges=edges,
        batch_sizes=batch_sizes,
        l1_threshold=args.l1_threshold,
        alpha=args.alpha,
        seed=args.seed,
        repeats=args.repeats,
        backends=args.backends,
    )
    print(report.render())
    path = report.write_json(args.out)
    print(f"metrics written to {path}")

    # Timing is machine-dependent: WARN, don't fail (the CI contract
    # blocks on correctness only — a FAIL verdict means divergence).
    verdict = report.assessment(TARGET_SPEEDUP)
    print(verdict)
    return 1 if verdict.startswith("FAIL") else 0


if __name__ == "__main__":
    sys.exit(main())
