"""Micro-benchmarks of the computational kernels.

Not a paper artefact, but the substrate behind every figure: one
global sweep (a Power-Iteration step), one small frontier push (the
local path), and a batch of random walks.  These pin down the
constants that the algorithm-level benchmarks build on, and make
kernel-level performance regressions visible in isolation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import frontier_push, global_sweep, sweep_active
from repro.core.residues import PushState
from repro.walks.engine import simulate_walk_stops


@pytest.fixture(scope="module")
def kernel_graph(request):
    from repro.experiments.config import bench_config
    from repro.generators.datasets import load_dataset

    graph = load_dataset(bench_config().datasets[-1])
    graph.transition_matrix_transpose()
    return graph


def test_global_sweep(benchmark, kernel_graph):
    """One full mat-vec sweep (a PowItr iteration)."""

    def run():
        state = PushState(kernel_graph, 0)
        global_sweep(state)
        return state

    state = benchmark(run)
    assert state.r_sum < 1.0


def test_frontier_push_small(benchmark, kernel_graph):
    """Local push of a 64-node frontier (queue-phase workload)."""
    rng = np.random.default_rng(0)
    frontier = np.sort(
        rng.choice(kernel_graph.num_nodes, size=64, replace=False)
    ).astype(np.int64)

    def run():
        state = PushState(kernel_graph, 0)
        state.residue[:] = 1.0 / kernel_graph.num_nodes
        state.refresh_r_sum()
        frontier_push(state, frontier)
        return state

    state = benchmark(run)
    assert state.counters.pushes == 64


def test_sweep_active_mixed(benchmark, kernel_graph):
    """Auto-switching sweep at a mid-range threshold."""

    def run():
        state = PushState(kernel_graph, 0)
        for _ in range(3):
            sweep_active(state, 1e-5)
        return state

    state = benchmark(run)
    assert state.counters.pushes > 0


def test_walk_batch(benchmark, kernel_graph):
    """10k alpha-walks from random starts (Monte-Carlo workload)."""
    rng = np.random.default_rng(1)
    starts = rng.integers(
        0, kernel_graph.num_nodes, size=10_000, dtype=np.int64
    )

    def run():
        stops, steps = simulate_walk_stops(
            kernel_graph, starts, alpha=0.2, rng=rng, source=0
        )
        return stops

    stops = benchmark(run)
    assert stops.shape[0] == 10_000
