"""Benchmark A2 — ablation of FwdPush scheduling orders.

Compares FIFO (the analysed Algorithm 2 order), LIFO, and greedy
max-residue on the faithful scalar Forward Push, counting pushes and
residue updates to termination.  Theorem 4.3's message is that the
FIFO order achieves the O(m log(1/lambda)) bound; this ablation shows
it is also (near-)best in practice among simple orders.
"""

from __future__ import annotations

import pytest

from repro.core.fwdpush import forward_push
from repro.experiments.ablations import run_scheduling_ablation
from repro.experiments.config import query_sources

_R_MAX_SCALE = 1e-2  # scalar-loop friendly; relative ordering is the target


@pytest.mark.parametrize("scheduler", ["fifo", "lifo", "max-residue"])
def test_scheduler(benchmark, workspace, scheduler):
    dataset = workspace.config.datasets[0]
    graph = workspace.graph(dataset)
    source = int(query_sources(graph, 1, workspace.config.seed)[0])
    r_max = _R_MAX_SCALE / graph.num_edges

    result = benchmark.pedantic(
        forward_push,
        args=(graph, source),
        kwargs={"r_max": r_max, "scheduler": scheduler},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["pushes"] = result.counters.pushes
    benchmark.extra_info["residue_updates"] = result.counters.residue_updates


def test_scheduling_report(benchmark, workspace, write_report):
    result = benchmark.pedantic(
        run_scheduling_ablation, args=(workspace,), rounds=1, iterations=1
    )
    write_report("ablation_scheduling", result.render())
    for dataset, by_scheduler in result.updates.items():
        # FIFO should not lose badly to LIFO anywhere.
        assert (
            by_scheduler["fifo"] <= by_scheduler["lifo"] * 1.2
        ), dataset
