"""Benchmark F7 — Figure 7: approximate query time vs eps.

Per-(algorithm, eps) pytest-benchmark timings on one dataset plus the
full figure harness with the paper's shape assertions:

* SpeedPPR-Index is the fastest approximate method across eps;
* every sampling method slows down as eps shrinks, while the
  high-precision PowerPush baseline stays flat;
* SpeedPPR's own cost grows much slower than FORA's (log(1/eps) vs
  1/eps — the Theorem 6.1 improvement).
"""

from __future__ import annotations

import pytest

from repro.baselines.fora import fora
from repro.baselines.resacc import resacc
from repro.core.speedppr import speed_ppr
from repro.experiments.config import query_sources
from repro.experiments.fig7 import run_fig7

_METHODS = ("SpeedPPR", "SpeedPPR-Index", "FORA", "FORA-Index", "ResAcc")
_EPS_POINTS = (0.5, 0.1)


def _approx_query(workspace, dataset, method, epsilon, source, salt):
    graph = workspace.graph(dataset)
    rng = workspace.rng(salt=salt)
    if method == "SpeedPPR":
        return speed_ppr(graph, source, epsilon=epsilon, rng=rng)
    if method == "SpeedPPR-Index":
        return speed_ppr(
            graph,
            source,
            epsilon=epsilon,
            walk_index=workspace.speedppr_index(dataset),
        )
    if method == "FORA":
        return fora(graph, source, epsilon=epsilon, rng=rng)
    if method == "FORA-Index":
        return fora(
            graph,
            source,
            epsilon=epsilon,
            walk_index=workspace.fora_index(dataset, min(_EPS_POINTS)),
        )
    return resacc(graph, source, epsilon=epsilon, rng=rng)


@pytest.mark.parametrize("epsilon", _EPS_POINTS, ids=lambda e: f"eps{e}")
@pytest.mark.parametrize("method", _METHODS)
def test_approx_query(benchmark, workspace, method, epsilon):
    dataset = workspace.config.datasets[0]
    graph = workspace.graph(dataset)
    graph.transition_matrix_transpose()
    if method.endswith("Index"):
        _approx_query(workspace, dataset, method, epsilon, 0, 0)  # warm index
    source = int(query_sources(graph, 1, workspace.config.seed)[0])
    salt_holder = [0]

    def run():
        salt_holder[0] += 1
        return _approx_query(
            workspace, dataset, method, epsilon, source, salt_holder[0]
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.estimate.shape[0] == graph.num_nodes


def test_fig7_report(benchmark, workspace, write_report):
    result = benchmark.pedantic(
        run_fig7, args=(workspace,), rounds=1, iterations=1
    )
    write_report("fig7", result.render())

    eps = result.epsilons
    small, large = eps.index(min(eps)), eps.index(max(eps))
    for dataset, by_method in result.seconds.items():
        # SpeedPPR-Index fastest approximate method at the smallest eps.
        fastest = min(
            by_method[m][small]
            for m in ("SpeedPPR", "FORA", "FORA-Index", "ResAcc")
        )
        assert by_method["SpeedPPR-Index"][small] <= fastest * 1.25, dataset
        # Sampling cost grows as eps shrinks.
        assert (
            by_method["FORA"][small] > by_method["FORA"][large]
        ), dataset
        # SpeedPPR scales better than FORA from large to small eps.
        speed_growth = by_method["SpeedPPR"][small] / max(
            by_method["SpeedPPR"][large], 1e-9
        )
        fora_growth = by_method["FORA"][small] / max(
            by_method["FORA"][large], 1e-9
        )
        assert speed_growth <= fora_growth, dataset
