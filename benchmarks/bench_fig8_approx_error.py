"""Benchmark F8 — Figure 8: actual l1-error vs eps.

Runs the accuracy sweep and asserts the paper's quality shapes:

* every approximate method's error shrinks (or stays flat) as eps
  shrinks;
* SpeedPPR delivers the best (or tied-best) accuracy at the smallest
  eps on most datasets;
* the index-based variants are less accurate than their index-free
  counterparts (they leave more mass to the Monte-Carlo phase).
"""

from __future__ import annotations

import pytest

from repro.experiments.fig8 import run_fig8


def test_fig8_report(benchmark, workspace, write_report):
    result = benchmark.pedantic(
        run_fig8, args=(workspace,), rounds=1, iterations=1
    )
    write_report("fig8", result.render())

    eps = result.epsilons
    small, large = eps.index(min(eps)), eps.index(max(eps))
    speed_best = 0
    for dataset, by_method in result.errors.items():
        for method, errors in by_method.items():
            # Error improves from the loosest to the tightest eps
            # (allow sampling noise at one point).
            assert errors[small] <= errors[large] * 1.25, (dataset, method)
        # Index-free SpeedPPR at least as accurate as SpeedPPR-Index.
        assert (
            by_method["SpeedPPR"][small]
            <= by_method["SpeedPPR-Index"][small] * 1.25
        ), dataset
        if by_method["SpeedPPR"][small] <= 1.1 * min(
            by_method[m][small] for m in by_method
        ):
            speed_best += 1
    # SpeedPPR best-or-tied on most datasets (paper: all but one).
    assert speed_best >= max(1, len(result.errors) - 1)
