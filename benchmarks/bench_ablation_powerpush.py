"""Benchmark A1 — ablation of PowerPush's design choices.

Quantifies the two Section-5 optimisations by disabling them one at a
time (see DESIGN.md A1): dynamic-threshold epochs (epoch_num 8 vs 1)
and the queue-to-scan switch (scan threshold n/4 vs 0 vs infinity).
"""

from __future__ import annotations

import pytest

from repro.core.powerpush import PowerPushConfig, power_push
from repro.experiments.ablations import run_powerpush_ablation
from repro.experiments.config import query_sources

_VARIANTS = {
    "paper": PowerPushConfig(epoch_num=8, scan_threshold_fraction=0.25),
    "no-epochs": PowerPushConfig(epoch_num=1, scan_threshold_fraction=0.25),
    "scan-only": PowerPushConfig(epoch_num=8, scan_threshold_fraction=0.0),
    "queue-only": PowerPushConfig(
        epoch_num=8, scan_threshold_fraction=float("inf")
    ),
}


@pytest.mark.parametrize("variant", list(_VARIANTS))
def test_powerpush_variant(benchmark, workspace, variant):
    dataset = workspace.config.datasets[0]
    graph = workspace.graph(dataset)
    graph.transition_matrix_transpose()
    source = int(query_sources(graph, 1, workspace.config.seed)[0])
    l1_threshold = workspace.config.l1_threshold(graph)
    config = _VARIANTS[variant]

    result = benchmark(
        power_push,
        graph,
        source,
        l1_threshold=l1_threshold,
        config=config,
    )
    assert result.r_sum <= l1_threshold
    benchmark.extra_info["residue_updates"] = result.counters.residue_updates


def test_ablation_report(benchmark, workspace, write_report):
    result = benchmark.pedantic(
        run_powerpush_ablation, args=(workspace,), rounds=1, iterations=1
    )
    write_report("ablation_powerpush", result.render())
    for dataset, by_variant in result.updates.items():
        # The paper's design (epochs) should not need more updates than
        # the single-epoch variant.
        assert (
            by_variant["paper (8 epochs, n/4)"]
            <= by_variant["no-epochs (1 epoch, n/4)"] * 1.05
        ), dataset
