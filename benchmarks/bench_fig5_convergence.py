"""Benchmark F5 — Figure 5: actual l1-error vs execution time.

Runs the traced-convergence harness and asserts the paper's shape
claims: exponential error decay for the push methods (straight lines
in log-error — their O(m log(1/lambda)) bound) and PowerPush reaching
the target error at least as fast as FIFO-FwdPush.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.fig5 import run_fig5


def _log_linear_r_squared(xs, ys):
    """R^2 of a log-linear fit through a convergence curve."""
    pairs = [(x, y) for x, y in zip(xs, ys) if y > 0]
    if len(pairs) < 3:
        return 1.0
    n = len(pairs)
    mean_x = sum(p[0] for p in pairs) / n
    log_ys = [math.log(p[1]) for p in pairs]
    mean_y = sum(log_ys) / n
    var_x = sum((p[0] - mean_x) ** 2 for p in pairs)
    if var_x == 0:
        return 1.0
    cov = sum(
        (p[0] - mean_x) * (ly - mean_y) for p, ly in zip(pairs, log_ys)
    )
    slope = cov / var_x
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (ly - (slope * p[0] + intercept)) ** 2
        for p, ly in zip(pairs, log_ys)
    )
    ss_tot = sum((ly - mean_y) ** 2 for ly in log_ys)
    if ss_tot == 0:
        return 1.0
    return 1.0 - ss_res / ss_tot


def test_fig5_report(benchmark, workspace, write_report):
    result = benchmark.pedantic(
        run_fig5, args=(workspace,), rounds=1, iterations=1
    )
    write_report("fig5", result.render())

    for dataset, curves in result.series.items():
        graph = workspace.graph(dataset)
        target = workspace.config.l1_threshold(graph)
        # Push methods reach the target error.
        for method in ("PowerPush", "PowItr", "FIFO-FwdPush"):
            xs, ys = curves[method]
            assert min(ys) <= target * 1.01, (dataset, method)
            # Paper: "the curves are pretty straight with the log-scale
            # y-axis" — exponential convergence.
            assert _log_linear_r_squared(xs, ys) > 0.85, (dataset, method)
        # BePI's error decreases as Delta shrinks.
        bepi_xs, bepi_ys = curves["BePI"]
        assert bepi_ys[-1] <= bepi_ys[0], dataset
