"""Benchmark F6 — Figure 6: actual l1-error vs #residue updates.

The runtime-independent half of the reproduction: operation counts are
identical no matter the host language, so the paper's Figure 6 claims
must reproduce *exactly in shape*:

* PowerPush needs the fewest residue updates to reach the target error
  (dynamic-threshold epochs let residues accumulate before pushing);
* FIFO-FwdPush needs no more updates than PowItr (its pushes skip
  inactive nodes; PowItr always touches all m edges per iteration).
"""

from __future__ import annotations

import pytest

from repro.experiments.fig6 import run_fig6


def test_fig6_report(benchmark, workspace, write_report):
    result = benchmark.pedantic(
        run_fig6, args=(workspace,), rounds=1, iterations=1
    )
    write_report("fig6", result.render())

    for dataset in result.series:
        graph = workspace.graph(dataset)
        target = workspace.config.l1_threshold(graph) * 10
        reach = result.updates_to_reach(dataset, target)
        assert reach["PowerPush"] <= reach["PowItr"], dataset
        assert reach["FIFO-FwdPush"] <= reach["PowItr"] * 1.05, dataset
        assert reach["PowerPush"] <= reach["FIFO-FwdPush"] * 1.05, dataset
