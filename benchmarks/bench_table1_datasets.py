"""Benchmark T1 — Table 1: dataset generation and statistics.

Times the synthetic generators (the cost a user pays instead of
downloading SNAP data) and regenerates Table 1's statistics table.
"""

from __future__ import annotations

import pytest

from repro.experiments.table1 import run_table1
from repro.generators.datasets import DATASETS, generate_dataset
from repro.graph.stats import compute_stats


@pytest.mark.parametrize("name", list(DATASETS))
def test_generate_dataset(benchmark, name):
    """Generation time of each analog dataset (cold, no cache)."""
    graph = benchmark.pedantic(
        generate_dataset, args=(name,), kwargs={"scale": 1.0}, rounds=1, iterations=1
    )
    assert graph.num_nodes > 0
    assert not graph.has_dead_ends
    benchmark.extra_info["nodes"] = graph.num_nodes
    benchmark.extra_info["edges"] = graph.num_edges


def test_table1_report(benchmark, workspace, write_report):
    """Regenerate Table 1 and check the density match with the paper."""
    result = benchmark.pedantic(
        run_table1, args=(workspace,), rounds=1, iterations=1
    )
    path = write_report("table1", result.render())
    # Shape assertion: every generated density within 25% of Table 1.
    for name, stats in result.stats.items():
        paper_density = DATASETS[name].avg_degree
        assert stats.average_degree == pytest.approx(
            paper_density, rel=0.25
        ), name
    assert path.exists()
