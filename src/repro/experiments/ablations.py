"""Ablation experiments A1 and A2 (DESIGN.md).

The paper motivates PowerPush's two design choices qualitatively
(Section 5); these ablations quantify them on our substrate:

* **A1 — PowerPush design grid**: vary ``epoch_num`` (1 = no dynamic
  threshold vs the paper's 8) and ``scan_threshold`` (0 = always scan,
  n/4 = paper default, inf = never scan i.e. pure frontier pushes) and
  report time and residue updates to reach lambda.
* **A2 — FwdPush scheduling**: FIFO vs LIFO vs greedy max-residue on
  the faithful scalar implementation; reports pushes and residue
  updates to termination (the claim behind Theorem 4.3 is that FIFO's
  iteration structure is what yields the log(1/lambda) dependence).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.powerpush import PowerPushConfig
from repro.experiments.config import query_sources
from repro.experiments.report import format_seconds, format_table
from repro.experiments.workspace import Workspace

__all__ = [
    "PowerPushAblationResult",
    "run_powerpush_ablation",
    "SchedulingAblationResult",
    "run_scheduling_ablation",
]

#: (label, epoch_num, scan_threshold_fraction)
POWERPUSH_VARIANTS = (
    ("paper (8 epochs, n/4)", 8, 0.25),
    ("no-epochs (1 epoch, n/4)", 1, 0.25),
    ("scan-only (8 epochs, 0)", 8, 0.0),
    ("queue-only (8 epochs, inf)", 8, float("inf")),
)

SCHEDULERS = ("fifo", "lifo", "max-residue")


@dataclass
class PowerPushAblationResult:
    """(dataset, variant) -> average seconds and residue updates."""

    seconds: dict[str, dict[str, float]] = field(default_factory=dict)
    updates: dict[str, dict[str, float]] = field(default_factory=dict)

    def rows(self) -> list[list[str]]:
        rows = []
        for dataset in self.seconds:
            for label, _, _ in POWERPUSH_VARIANTS:
                rows.append(
                    [
                        dataset,
                        label,
                        format_seconds(self.seconds[dataset][label]),
                        f"{self.updates[dataset][label]:.3e}",
                    ]
                )
        return rows

    def render(self) -> str:
        return format_table(
            ["dataset", "variant", "avg time", "avg residue updates"],
            self.rows(),
            title="Ablation A1 — PowerPush design choices",
        )


def run_powerpush_ablation(
    workspace: Workspace | None = None,
) -> PowerPushAblationResult:
    """Run the PowerPush configuration grid."""
    workspace = workspace or Workspace()
    config = workspace.config
    result = PowerPushAblationResult()
    for name in config.datasets:
        graph = workspace.graph(name)
        engine = workspace.engine(name)
        l1_threshold = config.l1_threshold(graph)
        sources = query_sources(graph, config.num_sources, config.seed)
        result.seconds[name] = {}
        result.updates[name] = {}
        for label, epoch_num, scan_fraction in POWERPUSH_VARIANTS:
            pp_config = PowerPushConfig(
                epoch_num=epoch_num,
                scan_threshold_fraction=scan_fraction,
            )
            total_seconds = 0.0
            total_updates = 0
            for source in sources.tolist():
                started = time.perf_counter()
                answer = engine.query(
                    source,
                    method="powerpush",
                    l1_threshold=l1_threshold,
                    config=pp_config,
                )
                total_seconds += time.perf_counter() - started
                total_updates += answer.counters.residue_updates
            result.seconds[name][label] = total_seconds / len(sources)
            result.updates[name][label] = total_updates / len(sources)
    return result


@dataclass
class SchedulingAblationResult:
    """(dataset, scheduler) -> pushes / updates on the scalar FwdPush."""

    pushes: dict[str, dict[str, float]] = field(default_factory=dict)
    updates: dict[str, dict[str, float]] = field(default_factory=dict)

    def rows(self) -> list[list[str]]:
        rows = []
        for dataset in self.pushes:
            for scheduler in SCHEDULERS:
                rows.append(
                    [
                        dataset,
                        scheduler,
                        f"{self.pushes[dataset][scheduler]:.0f}",
                        f"{self.updates[dataset][scheduler]:.3e}",
                    ]
                )
        return rows

    def render(self) -> str:
        return format_table(
            ["dataset", "scheduler", "avg pushes", "avg residue updates"],
            self.rows(),
            title="Ablation A2 — FwdPush scheduling orders (scalar loop)",
        )


def run_scheduling_ablation(
    workspace: Workspace | None = None,
    *,
    r_max_scale: float = 1e-1,
) -> SchedulingAblationResult:
    """Compare push schedulers at ``r_max = r_max_scale / m``.

    The scalar loop is Python-speed — and LIFO/greedy orders only enjoy
    the ``O(1/r_max)`` bound, which is exactly what this ablation
    demonstrates — so it runs at a much milder threshold than the HP
    default.  The *relative* ordering of the schedulers is the target.
    """
    workspace = workspace or Workspace()
    config = workspace.config
    result = SchedulingAblationResult()
    for name in config.datasets:
        graph = workspace.graph(name)
        engine = workspace.engine(name)
        r_max = r_max_scale / max(graph.num_edges, 1)
        sources = query_sources(
            graph, min(config.num_sources, 2), config.seed
        )
        result.pushes[name] = {}
        result.updates[name] = {}
        for scheduler in SCHEDULERS:
            total_pushes = 0
            total_updates = 0
            for source in sources.tolist():
                answer = engine.query(
                    source,
                    method="fwdpush-scheduled",
                    r_max=r_max,
                    scheduler=scheduler,
                )
                total_pushes += answer.counters.pushes
                total_updates += answer.counters.residue_updates
            result.pushes[name][scheduler] = total_pushes / len(sources)
            result.updates[name][scheduler] = total_updates / len(sources)
    return result
