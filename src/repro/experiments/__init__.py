"""Experiment harness: one runner per paper table/figure plus ablations.

See DESIGN.md's per-experiment index for the id <-> artifact mapping.
"""

from repro.experiments.ablations import (
    run_powerpush_ablation,
    run_scheduling_ablation,
)
from repro.experiments.config import (
    ExperimentConfig,
    bench_config,
    full_config,
    query_sources,
)
from repro.experiments.dynamic import run_dynamic, run_dynamic_updates
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.runner import EXPERIMENTS, experiment_ids, run_experiment
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.workspace import Workspace

__all__ = [
    "ExperimentConfig",
    "bench_config",
    "full_config",
    "query_sources",
    "Workspace",
    "run_table1",
    "run_table2",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_powerpush_ablation",
    "run_scheduling_ablation",
    "run_dynamic",
    "run_dynamic_updates",
    "EXPERIMENTS",
    "experiment_ids",
    "run_experiment",
]
