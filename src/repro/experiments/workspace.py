"""Shared artifact cache for the experiment runners.

Several experiments need the same expensive artifacts — generated
datasets, BePI indexes, walk indexes, ground-truth vectors.  A
:class:`Workspace` memoises them per process so e.g. Figure 7 and
Figure 8 share one FORA+ index per dataset, exactly as the paper
re-uses indexes across queries.
"""

from __future__ import annotations

import numpy as np

from repro.bepi.blockelim import BePIIndex, build_bepi_index
from repro.experiments.config import ExperimentConfig
from repro.generators.datasets import load_dataset
from repro.graph.digraph import DiGraph
from repro.metrics.ground_truth import ground_truth_ppr
from repro.montecarlo.chernoff import chernoff_walk_count
from repro.walks.index import (
    WalkIndex,
    build_walk_index,
    fora_plus_walk_counts,
    speedppr_walk_counts,
)

__all__ = ["Workspace"]


class Workspace:
    """Per-process cache of datasets, indexes and ground truths."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config if config is not None else ExperimentConfig()
        self._graphs: dict[str, DiGraph] = {}
        self._bepi: dict[str, BePIIndex] = {}
        self._speedppr_index: dict[str, WalkIndex] = {}
        self._fora_index: dict[tuple[str, float], WalkIndex] = {}
        self._truth: dict[tuple[str, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    def graph(self, name: str) -> DiGraph:
        """The analog dataset ``name`` (generated once per process)."""
        if name not in self._graphs:
            self._graphs[name] = load_dataset(name)
        return self._graphs[name]

    def rng(self, salt: int = 0) -> np.random.Generator:
        """A fresh deterministic generator derived from the config seed."""
        return np.random.default_rng(self.config.seed * 1_000_003 + salt)

    # ------------------------------------------------------------------
    def bepi_index(self, name: str) -> BePIIndex:
        """BePI preprocessing output for dataset ``name`` (cached)."""
        if name not in self._bepi:
            self._bepi[name] = build_bepi_index(
                self.graph(name), alpha=self.config.alpha
            )
        return self._bepi[name]

    def speedppr_index(self, name: str) -> WalkIndex:
        """SpeedPPR's eps-independent walk index (``K_v = d_v``)."""
        if name not in self._speedppr_index:
            graph = self.graph(name)
            self._speedppr_index[name] = build_walk_index(
                graph,
                speedppr_walk_counts(graph),
                alpha=self.config.alpha,
                policy="speedppr",
                rng=self.rng(salt=1),
            )
        return self._speedppr_index[name]

    def fora_index(self, name: str, epsilon: float) -> WalkIndex:
        """FORA+'s eps-dependent walk index, built for ``epsilon``.

        The paper builds FORA+'s index at the smallest eps in play and
        re-uses it for larger ones — callers should do the same.
        """
        key = (name, epsilon)
        if key not in self._fora_index:
            graph = self.graph(name)
            num_walks_w = chernoff_walk_count(
                epsilon,
                1.0 / graph.num_nodes,
                p_fail=1.0 / graph.num_nodes,
            )
            self._fora_index[key] = build_walk_index(
                graph,
                fora_plus_walk_counts(graph, num_walks_w),
                alpha=self.config.alpha,
                policy="fora+",
                rng=self.rng(salt=2),
            )
        return self._fora_index[key]

    def ground_truth(self, name: str, source: int) -> np.ndarray:
        """High-precision ground truth ``pi_s`` for error reporting."""
        key = (name, source)
        if key not in self._truth:
            self._truth[key] = ground_truth_ppr(
                self.graph(name),
                source,
                alpha=self.config.alpha,
                l1_threshold=1e-14,
            )
        return self._truth[key]
