"""Shared artifact cache for the experiment runners.

Several experiments need the same expensive artifacts — generated
datasets, BePI indexes, walk indexes, ground-truth vectors.  A
:class:`Workspace` holds one :class:`~repro.api.engine.PPREngine` per
dataset, and the engine's lazy caches are the single home of every
per-graph index, so e.g. Figure 7 and Figure 8 share one FORA+ index
per dataset — exactly the serving pattern the production deployment
uses, and exactly how the paper re-uses indexes across queries.
"""

from __future__ import annotations

import numpy as np

from repro.api.engine import PPREngine
from repro.bepi.blockelim import BePIIndex
from repro.experiments.config import ExperimentConfig
from repro.generators.datasets import load_dataset
from repro.graph.digraph import DiGraph
from repro.metrics.ground_truth import ground_truth_ppr
from repro.walks.index import WalkIndex

__all__ = ["Workspace"]


class Workspace:
    """Per-process cache of datasets, engines and ground truths."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config if config is not None else ExperimentConfig()
        self._graphs: dict[str, DiGraph] = {}
        self._engines: dict[str, PPREngine] = {}
        self._truth: dict[tuple[str, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    def graph(self, name: str) -> DiGraph:
        """The analog dataset ``name`` (generated once per process)."""
        if name not in self._graphs:
            self._graphs[name] = load_dataset(name)
        return self._graphs[name]

    def engine(self, name: str) -> PPREngine:
        """The query engine for dataset ``name`` (one per process).

        All experiments answer queries through this engine, so its
        index caches and instrumentation aggregate across experiments.
        """
        if name not in self._engines:
            self._engines[name] = PPREngine(
                self.graph(name),
                alpha=self.config.alpha,
                seed=self.config.seed,
            )
        return self._engines[name]

    def rng(self, salt: int = 0) -> np.random.Generator:
        """A fresh deterministic generator derived from the config seed."""
        return np.random.default_rng(self.config.seed * 1_000_003 + salt)

    # ------------------------------------------------------------------
    def bepi_index(self, name: str) -> BePIIndex:
        """BePI preprocessing output for dataset ``name`` (cached)."""
        return self.engine(name).bepi_index()

    def speedppr_index(self, name: str) -> WalkIndex:
        """SpeedPPR's eps-independent walk index (``K_v = d_v``)."""
        return self.engine(name).walk_index()

    def fora_index(
        self, name: str, epsilon: float, *, exact: bool = False
    ) -> WalkIndex:
        """FORA+'s eps-dependent walk index, built for ``epsilon``.

        The paper builds FORA+'s index at the smallest eps in play and
        re-uses it for larger ones; the engine's cache implements that
        policy.  Pass ``exact=True`` when the index itself is the
        measurement (Table 2 reports size/build time *for this eps*).
        """
        return self.engine(name).fora_index(
            epsilon,
            mu=1.0 / self.graph(name).num_nodes,
            p_fail=1.0 / self.graph(name).num_nodes,
            exact=exact,
        )

    def ground_truth(self, name: str, source: int) -> np.ndarray:
        """High-precision ground truth ``pi_s`` for error reporting."""
        key = (name, source)
        if key not in self._truth:
            self._truth[key] = ground_truth_ppr(
                self.graph(name),
                source,
                alpha=self.config.alpha,
                l1_threshold=1e-14,
            )
        return self._truth[key]
