"""Experiment T1 — Table 1: dataset statistics.

Regenerates the six analog datasets and prints their statistics next
to the paper's originals, so the density match (the property the
substitution preserves — see DESIGN.md) is visible at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table
from repro.experiments.workspace import Workspace
from repro.generators.datasets import DATASETS
from repro.graph.stats import GraphStats, compute_stats

__all__ = ["Table1Result", "run_table1"]


@dataclass
class Table1Result:
    """Computed statistics for every analog dataset."""

    stats: dict[str, GraphStats]

    def rows(self) -> list[list[str]]:
        rows = []
        for name, stat in self.stats.items():
            spec = DATASETS[name]
            rows.append(
                [
                    name,
                    spec.paper_name,
                    str(stat.num_nodes),
                    str(stat.num_edges),
                    f"{stat.average_degree:.2f}",
                    f"{spec.avg_degree:.2f}",
                    stat.graph_type,
                    f"{stat.power_law_alpha:.2f}",
                    str(stat.max_out_degree),
                ]
            )
        return rows

    def render(self) -> str:
        return format_table(
            [
                "dataset",
                "paper",
                "n",
                "m",
                "m/n",
                "paper m/n",
                "type",
                "pl-alpha",
                "max-deg",
            ],
            self.rows(),
            title="Table 1 — synthetic analog dataset statistics",
        )


def run_table1(workspace: Workspace | None = None) -> Table1Result:
    """Generate every configured dataset and compute its statistics."""
    workspace = workspace or Workspace()
    stats = {
        name: compute_stats(workspace.graph(name))
        for name in workspace.config.datasets
    }
    return Table1Result(stats=stats)
