"""Experiment F6 — Figure 6: actual l1-error vs number of residue updates.

Identical protocol to Figure 5 but with the *operation count* on the
x-axis: every increment of one out-neighbour's residue is one update
("edge pushing").  BePI is excluded, as in the paper — its MATLAB
black box exposed no operation counts, and the metric is only defined
for push algorithms anyway.

Expected shape (paper): FIFO-FwdPush's pushes are more effective than
PowItr's (asynchrony), and PowerPush needs the fewest updates overall
(the dynamic-threshold epochs let residues accumulate before pushing).
This counter-based view is the runtime-independent half of the
reproduction — it is unaffected by interpreter constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.fig5 import reference_source
from repro.experiments.report import ascii_chart, format_series
from repro.experiments.workspace import Workspace
from repro.instrumentation.tracing import ConvergenceTrace

__all__ = ["Fig6Result", "run_fig6"]


@dataclass
class Fig6Result:
    """Per-dataset series: method -> (residue_updates, l1_error)."""

    series: dict[str, dict[str, tuple[list[float], list[float]]]] = field(
        default_factory=dict
    )
    sources: dict[str, int] = field(default_factory=dict)

    def updates_to_reach(self, dataset: str, threshold: float) -> dict[str, float]:
        """Updates each method needed to reach ``r_sum <= threshold``."""
        answer: dict[str, float] = {}
        for method, (xs, ys) in self.series[dataset].items():
            answer[method] = float("inf")
            for x, y in zip(xs, ys):
                if y <= threshold:
                    answer[method] = float(x)
                    break
        return answer

    def render(self) -> str:
        blocks = []
        for dataset, curves in self.series.items():
            blocks.append(
                ascii_chart(
                    curves,
                    title=(
                        f"Figure 6 [{dataset}] — l1-error vs #residue "
                        f"updates (source {self.sources[dataset]})"
                    ),
                    log_y=True,
                    x_label="#updates",
                    y_label="l1-error",
                )
            )
            blocks.append(
                format_series(curves, x_name="#updates", y_name="l1")
            )
        return "\n\n".join(blocks)


def run_fig6(workspace: Workspace | None = None) -> Fig6Result:
    """Trace update-efficiency of the push methods on every dataset."""
    workspace = workspace or Workspace()
    config = workspace.config
    result = Fig6Result()
    for name in config.datasets:
        graph = workspace.graph(name)
        engine = workspace.engine(name)
        source = reference_source(workspace, name)
        result.sources[name] = source
        l1_threshold = config.l1_threshold(graph)
        stride = config.trace_stride_edges * graph.num_edges
        curves: dict[str, tuple[list[float], list[float]]] = {}

        for label, method in (
            ("PowerPush", "powerpush"),
            ("PowItr", "powitr"),
            ("FIFO-FwdPush", "fifo-fwdpush"),
        ):
            trace = ConvergenceTrace(stride=stride)
            engine.query(
                source,
                method=method,
                l1_threshold=l1_threshold,
                trace=trace,
            )
            xs, ys = trace.series_vs_updates()
            curves[label] = ([float(x) for x in xs], ys)

        result.series[name] = curves
    return result
