"""Experiment configuration, with environment overrides for CI scaling.

The paper's full protocol (six datasets, 30 random sources, five eps
values) runs in minutes at our default synthetic scales, but the
benchmark suite must also stay quick under ``pytest --benchmark-only``.
:func:`bench_config` therefore honours three environment variables:

* ``REPRO_BENCH_FULL=1``   — run the full protocol,
* ``REPRO_BENCH_DATASETS`` — comma-separated dataset subset,
* ``REPRO_BENCH_SOURCES``  — number of random query sources.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError
from repro.generators.datasets import dataset_names
from repro.graph.digraph import DiGraph

__all__ = ["ExperimentConfig", "bench_config", "full_config", "query_sources"]

#: eps values of Figures 7-8, in the paper's order (large to small).
EPSILONS = (0.5, 0.4, 0.3, 0.2, 0.1)

#: alpha used everywhere in the paper.
ALPHA = 0.2


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment runner."""

    datasets: tuple[str, ...] = tuple(dataset_names())
    num_sources: int = 5
    alpha: float = ALPHA
    epsilons: tuple[float, ...] = EPSILONS
    seed: int = 2021
    trace_stride_edges: int = 4  # paper: sample every 4*m edge pushes
    extras: dict[str, object] = field(default_factory=dict)

    def l1_threshold(self, graph: DiGraph) -> float:
        """The paper's HP default ``lambda = min(1e-8, 1/m)``."""
        return min(1e-8, 1.0 / max(graph.num_edges, 1))


def full_config() -> ExperimentConfig:
    """The paper's full protocol (30 sources, all datasets, all eps)."""
    return ExperimentConfig(num_sources=30)


def bench_config() -> ExperimentConfig:
    """Configuration for ``pytest --benchmark-only`` runs.

    Defaults to a representative 3-dataset subset and 3 sources so the
    whole benchmark suite finishes in a few minutes; see the module
    docstring for the environment overrides.
    """
    if os.environ.get("REPRO_BENCH_FULL", "") == "1":
        return full_config()
    names = os.environ.get("REPRO_BENCH_DATASETS", "")
    if names:
        datasets = tuple(part.strip() for part in names.split(",") if part.strip())
        known = set(dataset_names())
        unknown = [d for d in datasets if d not in known]
        if unknown:
            raise ParameterError(
                f"unknown datasets in REPRO_BENCH_DATASETS: {unknown}; "
                f"available: {sorted(known)}"
            )
    else:
        datasets = ("dblp-s", "pokec-s", "orkut-s")
    sources_raw = os.environ.get("REPRO_BENCH_SOURCES", "3")
    try:
        num_sources = int(sources_raw)
    except ValueError as exc:
        raise ParameterError(
            f"REPRO_BENCH_SOURCES={sources_raw!r} is not an integer"
        ) from exc
    if num_sources < 1:
        raise ParameterError("REPRO_BENCH_SOURCES must be >= 1")
    return ExperimentConfig(datasets=datasets, num_sources=num_sources)


def query_sources(
    graph: DiGraph, count: int, seed: int = 2021
) -> np.ndarray:
    """The paper's protocol: ``count`` sources uniformly at random.

    Deterministic given ``(graph size, seed)`` so all algorithms answer
    the same queries.
    """
    if count < 1:
        raise ParameterError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed + graph.num_nodes)
    return rng.integers(0, graph.num_nodes, size=count, dtype=np.int64)
