"""Experiment F4 — Figure 4: high-precision query time per dataset.

For every dataset, answer the same random queries with the four
high-precision competitors (PowerPush, BePI, FIFO-FwdPush, PowItr) at
``lambda = min(1e-8, 1/m)`` and report the average wall-clock time plus
the paper's ``c.cx`` annotation (each competitor's time as a multiple
of PowerPush's).  A fifth row, **PowerPush-Block**, answers the whole
source set in one multi-source block solve (element-wise identical
answers) — the sweep's own workload batched, isolating what the block
kernels buy on top of the paper's winner.

Expected shape (paper): PowerPush smallest everywhere except possibly
the smallest dataset where BePI's precomputation lets it tie; BePI's
query time *excludes* its construction time, as in the paper;
PowerPush-Block under PowerPush by roughly the batching factor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.experiments.config import query_sources
from repro.experiments.report import format_ratio, format_seconds, format_table
from repro.experiments.workspace import Workspace

__all__ = ["Fig4Result", "run_fig4", "HP_METHODS"]

#: display labels; all but the block row resolve directly as registry
#: method names (PowerPush-Block is PowerPush through batch_query)
HP_METHODS = ("PowerPush", "BePI", "FIFO-FwdPush", "PowItr", "PowerPush-Block")


@dataclass
class Fig4Result:
    """Average query seconds per (dataset, method)."""

    seconds: dict[str, dict[str, float]] = field(default_factory=dict)

    def ratios(self, dataset: str) -> dict[str, str]:
        base = self.seconds[dataset]["PowerPush"]
        return {
            method: format_ratio(value, base)
            for method, value in self.seconds[dataset].items()
        }

    def rows(self) -> list[list[str]]:
        rows = []
        for dataset, by_method in self.seconds.items():
            ratios = self.ratios(dataset)
            row = [dataset]
            for method in HP_METHODS:
                row.append(
                    f"{format_seconds(by_method[method])} ({ratios[method]})"
                )
            rows.append(row)
        return rows

    def render(self) -> str:
        return format_table(
            ["dataset", *HP_METHODS],
            self.rows(),
            title=(
                "Figure 4 — average high-precision query time "
                "(multiple of PowerPush in parentheses)"
            ),
        )


def run_fig4(workspace: Workspace | None = None) -> Fig4Result:
    """Run the Figure 4 protocol on every configured dataset."""
    workspace = workspace or Workspace()
    config = workspace.config
    result = Fig4Result()
    for name in config.datasets:
        graph = workspace.graph(name)
        engine = workspace.engine(name)
        l1_threshold = config.l1_threshold(graph)
        # BePI's query time excludes construction (as in the paper):
        # warm the engine's cache before the timed loop.
        engine.bepi_index()
        sources = query_sources(graph, config.num_sources, config.seed)

        totals = {method: 0.0 for method in HP_METHODS}
        for source in sources.tolist():
            for method in HP_METHODS:
                if method == "PowerPush-Block":
                    continue  # measured once per dataset, below
                started = time.perf_counter()
                engine.query(source, method=method, l1_threshold=l1_threshold)
                totals[method] += time.perf_counter() - started
        # The block row: all sources in one multi-source solve.
        started = time.perf_counter()
        engine.batch_query(
            sources.tolist(), "powerpush", l1_threshold=l1_threshold
        )
        totals["PowerPush-Block"] = time.perf_counter() - started

        result.seconds[name] = {
            method: total / len(sources) for method, total in totals.items()
        }
    return result
