"""Registry and dispatcher for the reproduction experiments.

Maps experiment ids (T1, T2, F4-F8, A1, A2 — the ids used in
DESIGN.md's per-experiment index — plus DY, the dynamic-graph
workload) to their runners, so the CLI and the benchmark suite share
one entry point:

>>> from repro.experiments import run_experiment
>>> text = run_experiment("T1").render()  # doctest: +SKIP
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.errors import ParameterError
from repro.experiments.ablations import (
    run_powerpush_ablation,
    run_scheduling_ablation,
)
from repro.experiments.dynamic import run_dynamic
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.workspace import Workspace

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]


class Renderable(Protocol):
    """Every experiment result can render itself as plain text."""

    def render(self) -> str: ...


EXPERIMENTS: dict[str, tuple[str, Callable[[Workspace], Renderable]]] = {
    "T1": ("Table 1 — dataset statistics", run_table1),
    "T2": ("Table 2 — index size and construction time", run_table2),
    "F4": ("Figure 4 — high-precision query time", run_fig4),
    "F5": ("Figure 5 — l1-error vs execution time", run_fig5),
    "F6": ("Figure 6 — l1-error vs #residue updates", run_fig6),
    "F7": ("Figure 7 — approximate query time vs eps", run_fig7),
    "F8": ("Figure 8 — approximate l1-error vs eps", run_fig8),
    "A1": ("Ablation — PowerPush design choices", run_powerpush_ablation),
    "A2": ("Ablation — FwdPush scheduling orders", run_scheduling_ablation),
    "DY": (
        "Dynamic — incremental PPR maintenance vs from-scratch",
        run_dynamic,
    ),
}


def experiment_ids() -> list[str]:
    """All experiment ids, in DESIGN.md order."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str, workspace: Workspace | None = None
) -> Renderable:
    """Run one experiment by id and return its (renderable) result."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise ParameterError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(EXPERIMENTS)}"
        )
    _, runner = EXPERIMENTS[key]
    return runner(workspace if workspace is not None else Workspace())
