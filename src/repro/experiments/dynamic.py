"""Experiment DY — incremental PPR maintenance on an evolving graph.

Beyond the paper's static workloads: an R-MAT graph evolves under a
stream of random edge insertions/deletions while one
:class:`~repro.api.engine.PPREngine` keeps serving.  After every batch
of updates the engine's tracked source is refreshed two ways:

* **incremental** — replay the update journal (degree-scaled residue
  corrections from the push invariant) and re-certify with
  dynamic-threshold sweeps (:class:`~repro.core.incremental.IncrementalPPR`);
* **from scratch** — a fresh PowerPush solve on the compacted graph.

Both certify the same ``l1_threshold`` contract, so the interesting
columns are the *residue updates* each route pays — the same
runtime-independent currency as Figure 6 — and the realised l1 gap
between the two answers (bounded by the sum of the two certificates).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.engine import PPREngine
from repro.core.powerpush import power_push
from repro.experiments.workspace import Workspace
from repro.generators.rmat import rmat_digraph
from repro.graph.dynamic import DynamicGraph, sample_edge_update

__all__ = ["DynamicRow", "DynamicResult", "run_dynamic_updates", "run_dynamic"]


@dataclass(frozen=True)
class DynamicRow:
    """Measurements for one batch of streamed updates."""

    batch: int
    version: int
    num_edges: int
    incremental_updates: int
    scratch_updates: int
    incremental_seconds: float
    scratch_seconds: float
    l1_gap: float
    certified_bound: float

    @property
    def update_ratio(self) -> float:
        """Incremental residue updates as a fraction of from-scratch."""
        if self.scratch_updates == 0:
            return float("nan")
        return self.incremental_updates / self.scratch_updates


@dataclass
class DynamicResult:
    """The DY experiment output: one row per update batch."""

    graph_name: str
    num_nodes: int
    source: int
    alpha: float
    l1_threshold: float
    batch_size: int
    rows: list[DynamicRow] = field(default_factory=list)

    @property
    def total_incremental_updates(self) -> int:
        return sum(row.incremental_updates for row in self.rows)

    @property
    def total_scratch_updates(self) -> int:
        return sum(row.scratch_updates for row in self.rows)

    @property
    def overall_ratio(self) -> float:
        scratch = self.total_scratch_updates
        if scratch == 0:
            return float("nan")
        return self.total_incremental_updates / scratch

    def render(self) -> str:
        lines = [
            (
                f"Dynamic updates [{self.graph_name}] — incremental refresh "
                f"vs from-scratch PowerPush"
            ),
            (
                f"n={self.num_nodes}, source={self.source}, "
                f"alpha={self.alpha}, lambda={self.l1_threshold:.0e}, "
                f"{self.batch_size} updates/batch"
            ),
            "",
            (
                f"{'batch':>5} {'m':>8} {'inc updates':>12} "
                f"{'scratch updates':>16} {'ratio':>6} {'l1 gap':>9} "
                f"{'bound':>9}"
            ),
        ]
        for row in self.rows:
            lines.append(
                f"{row.batch:>5d} {row.num_edges:>8d} "
                f"{row.incremental_updates:>12d} {row.scratch_updates:>16d} "
                f"{row.update_ratio:>6.3f} {row.l1_gap:>9.2e} "
                f"{row.certified_bound:>9.2e}"
            )
        lines.append("")
        lines.append(
            f"total: incremental {self.total_incremental_updates} vs "
            f"from-scratch {self.total_scratch_updates} residue updates "
            f"(ratio {self.overall_ratio:.3f})"
        )
        return "\n".join(lines)


def run_dynamic_updates(
    *,
    scale: int = 11,
    num_edges: int = 16_000,
    num_batches: int = 4,
    batch_size: int = 25,
    alpha: float = 0.2,
    l1_threshold: float = 1e-8,
    seed: int = 2021,
    source: int | None = None,
    compact_every_batch: bool = False,
) -> DynamicResult:
    """Stream update batches into an engine and measure both refresh routes.

    All randomness (graph, update stream) derives from ``seed``; the
    update stream is the canonical
    :func:`~repro.graph.dynamic.sample_edge_update` workload, which
    keeps the graph dead-end-free.  ``compact_every_batch=True``
    additionally exercises :meth:`DynamicGraph.compact` between
    batches (the logical graph, and thus every measurement, is
    unchanged by compaction).
    """
    rng = np.random.default_rng(seed)
    base = rmat_digraph(scale, num_edges, rng=rng, name=f"rmat-{scale}")
    dynamic = DynamicGraph(base)
    engine = PPREngine(dynamic, alpha=alpha, seed=seed)
    if source is None:
        source = int(rng.integers(0, base.num_nodes))
    tracker = engine.track(source, l1_threshold=l1_threshold)

    result = DynamicResult(
        graph_name=base.name,
        num_nodes=base.num_nodes,
        source=source,
        alpha=alpha,
        l1_threshold=l1_threshold,
        batch_size=batch_size,
    )
    for batch in range(num_batches):
        for _ in range(batch_size):
            engine.apply_updates([sample_edge_update(dynamic, rng)])

        incremental = engine.query(source, method="incremental")
        snapshot = dynamic.snapshot()
        scratch = power_push(
            snapshot, source, alpha=alpha, l1_threshold=l1_threshold
        )
        assert scratch.residue is not None
        result.rows.append(
            DynamicRow(
                batch=batch,
                version=dynamic.version,
                num_edges=snapshot.num_edges,
                incremental_updates=incremental.counters.residue_updates,
                scratch_updates=scratch.counters.residue_updates,
                incremental_seconds=incremental.seconds,
                scratch_seconds=scratch.seconds,
                l1_gap=float(
                    np.abs(incremental.estimate - scratch.estimate).sum()
                ),
                certified_bound=tracker.error_bound,
            )
        )
        if compact_every_batch:
            dynamic.compact()
    return result


def run_dynamic(workspace: Workspace | None = None) -> DynamicResult:
    """The registered DY experiment: config-seeded default protocol."""
    workspace = workspace or Workspace()
    config = workspace.config
    return run_dynamic_updates(
        alpha=config.alpha,
        seed=config.seed,
    )
