"""Experiment F7 — Figure 7: approximate query time vs eps.

For each dataset, sweep ``eps`` over Figure 7's grid and measure the
average query time of the six competitors: SpeedPPR, SpeedPPR-Index,
FORA, FORA-Index, ResAcc, and — deliberately, as the paper does — the
*high-precision* PowerPush as a baseline.

FORA-Index uses one index built at the smallest eps (0.1) and re-used
for all larger eps values, reproducing the paper's protocol (and the
eps-dependence weakness it highlights).  SpeedPPR-Index uses the one
eps-independent index.

Beyond the paper's competitors, the sweep also measures
**PowerPush-Block**: the same high-precision contract answered for the
*whole source set at once* by the multi-source block solver
(one ``engine.batch_query`` per eps point, reported as per-query
time).  Its answers are element-wise identical to PowerPush's, so the
row isolates exactly what batching the sweep's sources buys.

Expected shape (paper): SpeedPPR-Index fastest across the board;
index-free SpeedPPR between FORA and FORA-Index, approaching
FORA-Index at small eps; every approximate method's time grows as eps
shrinks while PowerPush stays flat and becomes competitive at small
eps on some datasets.  PowerPush-Block sits below PowerPush by roughly
the batching factor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.experiments.config import query_sources
from repro.experiments.report import ascii_chart, format_seconds, format_table
from repro.experiments.table2 import FORA_INDEX_EPSILON
from repro.experiments.workspace import Workspace

__all__ = ["Fig7Result", "run_fig7", "APPROX_METHODS"]

APPROX_METHODS = (
    "SpeedPPR",
    "SpeedPPR-Index",
    "FORA",
    "FORA-Index",
    "ResAcc",
    "PowerPush",
    "PowerPush-Block",
)


@dataclass
class Fig7Result:
    """seconds[dataset][method] -> list aligned with ``epsilons``."""

    epsilons: tuple[float, ...]
    seconds: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def rows(self, dataset: str) -> list[list[str]]:
        rows = []
        for method in APPROX_METHODS:
            row = [method] + [
                format_seconds(s) for s in self.seconds[dataset][method]
            ]
            rows.append(row)
        return rows

    def render(self) -> str:
        blocks = []
        for dataset in self.seconds:
            blocks.append(
                format_table(
                    ["method", *[f"eps={e}" for e in self.epsilons]],
                    self.rows(dataset),
                    title=f"Figure 7 [{dataset}] — query time vs eps",
                )
            )
            curves = {
                method: (
                    [float(e) for e in self.epsilons],
                    self.seconds[dataset][method],
                )
                for method in APPROX_METHODS
            }
            blocks.append(
                ascii_chart(
                    curves,
                    title=f"Figure 7 [{dataset}] — chart",
                    log_y=True,
                    x_label="eps",
                    y_label="seconds",
                )
            )
        return "\n\n".join(blocks)


def run_fig7(workspace: Workspace | None = None) -> Fig7Result:
    """Run the Figure 7 sweep on every configured dataset."""
    workspace = workspace or Workspace()
    config = workspace.config
    result = Fig7Result(epsilons=config.epsilons)
    smallest_eps = min(min(config.epsilons), FORA_INDEX_EPSILON)

    for name in config.datasets:
        graph = workspace.graph(name)
        engine = workspace.engine(name)
        sources = query_sources(graph, config.num_sources, config.seed)
        # Warm the engine caches so construction stays out of query time.
        speed_index = workspace.speedppr_index(name)
        fora_index = workspace.fora_index(name, smallest_eps)
        by_method: dict[str, list[float]] = {m: [] for m in APPROX_METHODS}

        for epsilon in config.epsilons:
            totals = {m: 0.0 for m in APPROX_METHODS}
            for salt, source in enumerate(sources.tolist()):
                # One generator shared (in order) by the index-free
                # stochastic methods, as in the paper's protocol.
                rng = workspace.rng(salt=100 + salt)
                runs = (
                    ("SpeedPPR", "speedppr", {"epsilon": epsilon, "rng": rng, "use_index": False}),
                    ("SpeedPPR-Index", "speedppr", {"epsilon": epsilon, "walk_index": speed_index}),
                    ("FORA", "fora", {"epsilon": epsilon, "rng": rng}),
                    ("FORA-Index", "fora", {"epsilon": epsilon, "walk_index": fora_index}),
                    ("ResAcc", "resacc", {"epsilon": epsilon, "rng": rng}),
                    ("PowerPush", "powerpush", {"l1_threshold": config.l1_threshold(graph)}),
                )
                for label, method, params in runs:
                    started = time.perf_counter()
                    engine.query(source, method=method, **params)
                    totals[label] += time.perf_counter() - started
            # The whole source set in one block solve — the multi-source
            # sweep itself is the workload the block kernels batch.
            started = time.perf_counter()
            engine.batch_query(
                sources.tolist(),
                "powerpush",
                l1_threshold=config.l1_threshold(graph),
            )
            totals["PowerPush-Block"] = time.perf_counter() - started
            for method in APPROX_METHODS:
                by_method[method].append(totals[method] / len(sources))
        result.seconds[name] = by_method
    return result
