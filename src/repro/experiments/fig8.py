"""Experiment F8 — Figure 8: actual l1-error vs eps.

Same sweep as Figure 7, but measuring solution quality: the l1-error of
each returned estimate against the PowItr ground truth (the paper uses
PowerPush at ``lambda = 1e-17``; we use PowItr at ``1e-14`` — see
DESIGN.md, Substitutions).  Errors are averaged over the query sources.

Expected shape (paper): all approximate methods improve as eps shrinks;
SpeedPPR gives the best quality on most datasets (up to an order of
magnitude at small eps); the index-based variants are *less* accurate
than their index-free versions, because they leave more mass to the
Monte-Carlo phase (larger ``r_sum`` ⇒ larger variance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.config import query_sources
from repro.experiments.report import ascii_chart, format_table
from repro.experiments.table2 import FORA_INDEX_EPSILON
from repro.experiments.workspace import Workspace
from repro.metrics.errors import l1_error

__all__ = ["Fig8Result", "run_fig8", "ERROR_METHODS"]

ERROR_METHODS = (
    "SpeedPPR",
    "SpeedPPR-Index",
    "FORA",
    "FORA-Index",
    "ResAcc",
)


@dataclass
class Fig8Result:
    """errors[dataset][method] -> mean l1-errors aligned with epsilons."""

    epsilons: tuple[float, ...]
    errors: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def rows(self, dataset: str) -> list[list[str]]:
        rows = []
        for method in ERROR_METHODS:
            rows.append(
                [method]
                + [f"{e:.3e}" for e in self.errors[dataset][method]]
            )
        return rows

    def render(self) -> str:
        blocks = []
        for dataset in self.errors:
            blocks.append(
                format_table(
                    ["method", *[f"eps={e}" for e in self.epsilons]],
                    self.rows(dataset),
                    title=f"Figure 8 [{dataset}] — l1-error vs eps",
                )
            )
            curves = {
                method: (
                    [float(e) for e in self.epsilons],
                    self.errors[dataset][method],
                )
                for method in ERROR_METHODS
            }
            blocks.append(
                ascii_chart(
                    curves,
                    title=f"Figure 8 [{dataset}] — chart",
                    log_y=True,
                    x_label="eps",
                    y_label="l1-error",
                )
            )
        return "\n\n".join(blocks)


def run_fig8(workspace: Workspace | None = None) -> Fig8Result:
    """Run the Figure 8 sweep on every configured dataset."""
    workspace = workspace or Workspace()
    config = workspace.config
    result = Fig8Result(epsilons=config.epsilons)
    smallest_eps = min(min(config.epsilons), FORA_INDEX_EPSILON)

    for name in config.datasets:
        engine = workspace.engine(name)
        graph = workspace.graph(name)
        sources = query_sources(graph, config.num_sources, config.seed)
        speed_index = workspace.speedppr_index(name)
        fora_index = workspace.fora_index(name, smallest_eps)
        by_method: dict[str, list[float]] = {m: [] for m in ERROR_METHODS}

        for epsilon in config.epsilons:
            totals = {m: 0.0 for m in ERROR_METHODS}
            for salt, source in enumerate(sources.tolist()):
                truth = np.asarray(workspace.ground_truth(name, source))
                rng = workspace.rng(salt=200 + salt)
                runs = (
                    ("SpeedPPR", "speedppr", {"rng": rng, "use_index": False}),
                    ("SpeedPPR-Index", "speedppr", {"walk_index": speed_index}),
                    ("FORA", "fora", {"rng": rng}),
                    ("FORA-Index", "fora", {"walk_index": fora_index}),
                    ("ResAcc", "resacc", {"rng": rng}),
                )
                for label, method, params in runs:
                    answer = engine.query(
                        source, method=method, epsilon=epsilon, **params
                    )
                    totals[label] += l1_error(answer.estimate, truth)
            for method in ERROR_METHODS:
                by_method[method].append(totals[method] / len(sources))
        result.errors[name] = by_method
    return result
