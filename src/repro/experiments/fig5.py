"""Experiment F5 — Figure 5: actual l1-error vs execution time.

For one reference source per dataset (the paper uses the source with
the median PowerPush time among its 30 queries), trace ``r_sum`` — the
*exact* l1-error for push algorithms — as a function of wall-clock
time, sampling every ``4m`` residue updates as the paper does.  BePI
has no residue; as in the paper it is run to a decreasing sequence of
convergence parameters ``Delta`` and each run contributes one
``(time, post-hoc l1-error)`` point.

Expected shape (paper): straight lines on the log-error axis for the
push methods (exponential convergence — their O(m log 1/lambda)
bound), PowerPush's line the steepest/leftmost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.experiments.config import query_sources
from repro.experiments.report import ascii_chart, format_series
from repro.experiments.workspace import Workspace
from repro.instrumentation.tracing import ConvergenceTrace
from repro.metrics.errors import l1_error

__all__ = ["Fig5Result", "run_fig5", "reference_source", "BEPI_DELTAS"]

#: decreasing Delta sequence for BePI's error/time curve.
BEPI_DELTAS = (1e-2, 1e-4, 1e-6, 1e-8)


@dataclass
class Fig5Result:
    """Per-dataset series: method -> (seconds, l1_error)."""

    series: dict[str, dict[str, tuple[list[float], list[float]]]] = field(
        default_factory=dict
    )
    sources: dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        blocks = []
        for dataset, curves in self.series.items():
            blocks.append(
                ascii_chart(
                    curves,
                    title=(
                        f"Figure 5 [{dataset}] — l1-error vs time "
                        f"(source {self.sources[dataset]})"
                    ),
                    log_y=True,
                    x_label="seconds",
                    y_label="l1-error",
                )
            )
            blocks.append(
                format_series(curves, x_name="seconds", y_name="l1")
            )
        return "\n\n".join(blocks)


def reference_source(workspace: Workspace, dataset: str) -> int:
    """The source with the median PowerPush time among the query set."""
    config = workspace.config
    graph = workspace.graph(dataset)
    sources = query_sources(graph, config.num_sources, config.seed)
    engine = workspace.engine(dataset)
    timings: list[tuple[float, int]] = []
    for source in sources.tolist():
        started = time.perf_counter()
        engine.query(
            source,
            method="powerpush",
            l1_threshold=config.l1_threshold(graph),
        )
        timings.append((time.perf_counter() - started, source))
    timings.sort()
    return timings[len(timings) // 2][1]


def run_fig5(workspace: Workspace | None = None) -> Fig5Result:
    """Trace convergence of all HP methods on every configured dataset."""
    workspace = workspace or Workspace()
    config = workspace.config
    result = Fig5Result()
    for name in config.datasets:
        graph = workspace.graph(name)
        engine = workspace.engine(name)
        source = reference_source(workspace, name)
        result.sources[name] = source
        l1_threshold = config.l1_threshold(graph)
        stride = config.trace_stride_edges * graph.num_edges
        curves: dict[str, tuple[list[float], list[float]]] = {}

        for label, method in (
            ("PowerPush", "powerpush"),
            ("PowItr", "powitr"),
            ("FIFO-FwdPush", "fifo-fwdpush"),
        ):
            trace = ConvergenceTrace(stride=stride)
            engine.query(
                source,
                method=method,
                l1_threshold=l1_threshold,
                trace=trace,
            )
            curves[label] = trace.series_vs_time()

        curves["BePI"] = _bepi_curve(workspace, name, source, l1_threshold)
        result.series[name] = curves
    return result


def _bepi_curve(
    workspace: Workspace,
    dataset: str,
    source: int,
    l1_threshold: float,
) -> tuple[list[float], list[float]]:
    """One (time, l1-error) point per Delta in the decreasing sequence."""
    engine = workspace.engine(dataset)
    engine.bepi_index()  # exclude construction from the timed queries
    truth = workspace.ground_truth(dataset, source)
    deltas = [d for d in BEPI_DELTAS if d >= l1_threshold] + [l1_threshold]
    times: list[float] = []
    errors: list[float] = []
    for delta in deltas:
        started = time.perf_counter()
        answer = engine.query(source, method="bepi", delta=delta)
        times.append(time.perf_counter() - started)
        errors.append(l1_error(answer.estimate, np.asarray(truth)))
    return times, errors
