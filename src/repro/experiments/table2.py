"""Experiment T2 — Table 2: index size and construction time.

For every dataset, build the three indexes the paper compares:

* **BePI** (high-precision): SlashBurn + block elimination matrices,
* **FORA+** (approximate): eps-dependent walk index, built at the
  smallest eps of the sweep (0.1), exactly as the paper does,
* **SpeedPPR** (approximate): eps-independent ``K_v = d_v`` walk index.

Expected shape (paper): SpeedPPR's index is ~an order of magnitude
smaller and faster to build than FORA+'s; BePI's is the largest and by
far the slowest to build, especially on the dense Orkut analog.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_bytes, format_seconds, format_table
from repro.experiments.workspace import Workspace

__all__ = ["IndexReport", "Table2Result", "run_table2"]

#: the smallest eps of Figures 7-8; FORA+'s index is built for it.
FORA_INDEX_EPSILON = 0.1


@dataclass(frozen=True)
class IndexReport:
    """Size and construction time of one index on one dataset."""

    dataset: str
    method: str
    size_bytes: int
    construction_seconds: float


@dataclass
class Table2Result:
    """All index reports, keyed by (dataset, method)."""

    reports: list[IndexReport]

    def get(self, dataset: str, method: str) -> IndexReport:
        for report in self.reports:
            if report.dataset == dataset and report.method == method:
                return report
        raise KeyError((dataset, method))

    def rows(self) -> list[list[str]]:
        datasets = sorted({r.dataset for r in self.reports})
        rows = []
        for dataset in datasets:
            row = [dataset]
            for method in ("BePI", "FORA", "SpeedPPR"):
                report = self.get(dataset, method)
                row.append(format_bytes(report.size_bytes))
            for method in ("BePI", "FORA", "SpeedPPR"):
                report = self.get(dataset, method)
                row.append(format_seconds(report.construction_seconds))
            rows.append(row)
        return rows

    def render(self) -> str:
        return format_table(
            [
                "dataset",
                "BePI size",
                "FORA size",
                "SpeedPPR size",
                "BePI build",
                "FORA build",
                "SpeedPPR build",
            ],
            self.rows(),
            title=(
                "Table 2 — index size and construction time "
                f"(FORA+ index built at eps={FORA_INDEX_EPSILON})"
            ),
        )


def run_table2(workspace: Workspace | None = None) -> Table2Result:
    """Build all three indexes on every configured dataset."""
    workspace = workspace or Workspace()
    reports: list[IndexReport] = []
    for name in workspace.config.datasets:
        bepi = workspace.bepi_index(name)
        reports.append(
            IndexReport(
                dataset=name,
                method="BePI",
                size_bytes=bepi.size_bytes,
                construction_seconds=bepi.construction_seconds,
            )
        )
        fora_index = workspace.fora_index(name, FORA_INDEX_EPSILON, exact=True)
        reports.append(
            IndexReport(
                dataset=name,
                method="FORA",
                size_bytes=fora_index.size_bytes,
                construction_seconds=fora_index.construction_seconds,
            )
        )
        speed_index = workspace.speedppr_index(name)
        reports.append(
            IndexReport(
                dataset=name,
                method="SpeedPPR",
                size_bytes=speed_index.size_bytes,
                construction_seconds=speed_index.construction_seconds,
            )
        )
    return Table2Result(reports=reports)
