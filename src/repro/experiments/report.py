"""Plain-text rendering of experiment results (tables and ASCII charts).

The benchmark harness prints every reproduced table/figure in a form
directly comparable with the paper: tables mirror the paper's rows and
columns; figures are rendered as log-scale ASCII charts plus the raw
series, since the *shape* of the curves (straight lines in log-error,
crossovers in the eps sweeps) is the reproduction target.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = [
    "format_table",
    "format_ratio",
    "format_seconds",
    "format_bytes",
    "ascii_chart",
    "format_series",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_ratio(value: float, base: float) -> str:
    """Figure 4's ``c.cx`` annotation: ``value`` as a multiple of ``base``."""
    if base <= 0:
        return "n/a"
    ratio = value / base
    if ratio >= 100:
        return f"{ratio:.0f}x"
    if ratio >= 10:
        return f"{ratio:.0f}x"
    return f"{ratio:.1f}x"


def format_seconds(seconds: float) -> str:
    """Human-readable seconds with 3 significant digits."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 100.0:
        return f"{seconds:.2f}s"
    return f"{seconds:.0f}s"


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte counts (Table 2 style)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{value:.0f}{unit}"
            return f"{value:.2f}{unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def ascii_chart(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    *,
    title: str = "",
    width: int = 64,
    height: int = 16,
    log_y: bool = True,
    log_x: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render multiple (x, y) series as an ASCII scatter chart.

    Each series gets a distinct marker; the legend maps markers to
    names.  Zero/negative values are clipped to the smallest positive
    value when a log scale is requested.
    """
    markers = "*o+x#@%&"
    all_x: list[float] = []
    all_y: list[float] = []
    for xs, ys in series.values():
        all_x.extend(float(v) for v in xs)
        all_y.extend(float(v) for v in ys)
    if not all_x:
        return f"{title}\n(no data)"

    def _scale(values: list[float], log: bool) -> tuple[float, float]:
        positive = [v for v in values if v > 0]
        floor = min(positive) if positive else 1e-12
        lo = min(values) if not log else min(positive or [floor])
        hi = max(values)
        if log:
            lo, hi = math.log10(max(lo, 1e-300)), math.log10(max(hi, 1e-300))
        if hi <= lo:
            hi = lo + 1.0
        return lo, hi

    x_lo, x_hi = _scale(all_x, log_x)
    y_lo, y_hi = _scale(all_y, log_y)

    grid = [[" "] * width for _ in range(height)]
    for index, (name, (xs, ys)) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            x, y = float(x), float(y)
            if log_x:
                if x <= 0:
                    continue
                x = math.log10(x)
            if log_y:
                if y <= 0:
                    continue
                y = math.log10(y)
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            row = height - 1 - row
            if 0 <= row < height and 0 <= col < width:
                grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_hi_label = f"1e{y_hi:.1f}" if log_y else f"{y_hi:.3g}"
    y_lo_label = f"1e{y_lo:.1f}" if log_y else f"{y_lo:.3g}"
    lines.append(f"{y_label} (top={y_hi_label}, bottom={y_lo_label})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    x_lo_label = f"1e{x_lo:.1f}" if log_x else f"{x_lo:.3g}"
    x_hi_label = f"1e{x_hi:.1f}" if log_x else f"{x_hi:.3g}"
    lines.append(f" {x_label}: {x_lo_label} .. {x_hi_label}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def format_series(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    *,
    x_name: str = "x",
    y_name: str = "y",
    max_points: int = 12,
) -> str:
    """Tabulate series values (down-sampled) for exact inspection."""
    lines = []
    for name, (xs, ys) in series.items():
        stride = max(1, len(xs) // max_points)
        points = ", ".join(
            f"({float(x):.3g}, {float(y):.3g})"
            for x, y in list(zip(xs, ys))[::stride]
        )
        lines.append(f"{name}: [{x_name}, {y_name}] {points}")
    return "\n".join(lines)
