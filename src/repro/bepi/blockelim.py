"""BePI's precomputation: block elimination of the PPR linear system.

The SSPPR vector solves ``(I - (1 - alpha) P^T) x = alpha e_s``
(Eq. 1 transposed).  After the SlashBurn permutation the coefficient
matrix partitions as::

    H = | H11  H12 |   spokes (n1, block diagonal)
        | H21  H22 |   hubs   (n2, small)

BePI pre-computes everything that does not depend on the query:

* a sparse LU factorisation of the block-diagonal ``H11`` (natural
  ordering keeps all fill-in inside the blocks),
* the coupling blocks ``H12``, ``H21``,
* the dense Schur complement ``S = H22 - H21 H11^{-1} H12``.

A query then costs two ``H11`` triangular solves, two sparse mat-vecs
and one iterative solve on the small ``S`` system (see
:mod:`repro.bepi.solver`).  The pre-computed matrices *are* the index;
their byte size is what Table 2 reports — and why BePI's index dwarfs
the graph on dense datasets like Orkut.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy.sparse import csc_matrix, eye as sparse_eye
from scipy.sparse.linalg import splu

from repro.bepi.slashburn import SlashBurnResult, slashburn
from repro.core.validation import check_alpha
from repro.errors import IndexBuildError
from repro.graph.digraph import DiGraph

__all__ = ["BePIIndex", "build_bepi_index"]


@dataclass
class BePIIndex:
    """The pre-computed matrices BePI needs at query time."""

    ordering: SlashBurnResult
    inverse_order: np.ndarray
    h11_lu: object  # scipy SuperLU
    h12: object  # csr_matrix (n1 x n2)
    h21: object  # csr_matrix (n2 x n1)
    schur: np.ndarray  # dense (n2 x n2)
    alpha: float
    num_nodes: int
    num_edges: int
    construction_seconds: float

    @property
    def num_spokes(self) -> int:
        return self.ordering.num_spokes

    @property
    def num_hubs(self) -> int:
        return self.ordering.num_hubs

    @property
    def size_bytes(self) -> int:
        """Approximate index footprint (Table 2's index-size column).

        Counts the LU factors (values + indices), the coupling blocks,
        the dense Schur complement, and the permutation arrays.
        """
        lu = self.h11_lu
        lu_bytes = 0
        for factor in (getattr(lu, "L", None), getattr(lu, "U", None)):
            if factor is not None:
                lu_bytes += int(factor.data.nbytes)
                lu_bytes += int(factor.indices.nbytes)
                lu_bytes += int(factor.indptr.nbytes)
        coupling = 0
        for block in (self.h12, self.h21):
            coupling += int(block.data.nbytes)
            coupling += int(block.indices.nbytes)
            coupling += int(block.indptr.nbytes)
        return (
            lu_bytes
            + coupling
            + int(self.schur.nbytes)
            + int(self.ordering.order.nbytes)
            + int(self.inverse_order.nbytes)
        )

    def check_graph(self, graph: DiGraph) -> None:
        """Raise unless the index matches ``graph``'s dimensions."""
        if (
            graph.num_nodes != self.num_nodes
            or graph.num_edges != self.num_edges
        ):
            raise IndexBuildError(
                f"BePI index built for n={self.num_nodes}, "
                f"m={self.num_edges}; got n={graph.num_nodes}, "
                f"m={graph.num_edges}"
            )


def build_bepi_index(
    graph: DiGraph,
    *,
    alpha: float = 0.2,
    wing_width: int | None = None,
    hub_fraction: float = 0.02,
) -> BePIIndex:
    """Run BePI's full preprocessing pipeline on ``graph``.

    Raises
    ------
    IndexBuildError
        If the graph has dead ends (the linear system needs a proper
        row-stochastic ``P``; apply
        ``repro.graph.apply_dead_end_rule(graph, "self-loop")`` first).
    """
    check_alpha(alpha)
    if graph.num_nodes == 0:
        raise IndexBuildError("cannot index an empty graph")
    if graph.has_dead_ends:
        raise IndexBuildError(
            "BePI preprocessing requires a dead-end-free graph; apply a "
            "structural dead-end rule first"
        )

    started = time.perf_counter()
    ordering = slashburn(
        graph, wing_width=wing_width, hub_fraction=hub_fraction
    )
    order = ordering.order
    n = graph.num_nodes
    n1 = ordering.num_spokes

    h = (
        sparse_eye(n, format="csr")
        - (1.0 - alpha) * graph.transition_matrix_transpose()
    ).tocsr()
    h_perm = h[order, :][:, order].tocsr()

    h11 = csc_matrix(h_perm[:n1, :n1])
    h12 = h_perm[:n1, n1:].tocsr()
    h21 = h_perm[n1:, :n1].tocsr()
    h22 = h_perm[n1:, n1:].toarray()

    if n1 > 0:
        # NATURAL ordering preserves the block-diagonal structure, so
        # all fill-in stays inside the (small) spoke blocks.
        h11_lu = splu(h11, permc_spec="NATURAL")
        schur = h22
        # Solve H11 X = H12 in column batches to bound peak memory
        # (H12 densified all at once can dwarf the graph itself).
        num_hubs = ordering.num_hubs
        batch = max(1, min(num_hubs, 256))
        for begin in range(0, num_hubs, batch):
            cols = h12[:, begin : begin + batch].toarray()
            schur[:, begin : begin + batch] -= h21 @ h11_lu.solve(cols)
    else:
        h11_lu = _EmptyLU()
        schur = h22

    return BePIIndex(
        ordering=ordering,
        inverse_order=ordering.inverse_order(),
        h11_lu=h11_lu,
        h12=h12,
        h21=h21,
        schur=np.asarray(schur, dtype=np.float64),
        alpha=alpha,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        construction_seconds=time.perf_counter() - started,
    )


class _EmptyLU:
    """Stand-in LU factor for the degenerate no-spokes partition."""

    L = None
    U = None

    def solve(self, b: np.ndarray) -> np.ndarray:
        if b.shape[0] != 0:
            raise IndexBuildError("empty LU cannot solve a non-empty system")
        return b
