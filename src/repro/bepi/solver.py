"""BePI's query-time solver (Jung et al., SIGMOD'17).

With the :class:`~repro.bepi.blockelim.BePIIndex` in hand, a query for
source ``s`` solves ``H x = alpha * e_s`` by block elimination::

    y1  = H11^{-1} b1                  (sparse LU solves)
    b2' = b2 - H21 y1
    S x2 = b2'                         (iterative solve, see below)
    x1  = H11^{-1} (b1 - H12 x2)

The Schur system is solved with the same fixed-point iteration BePI
uses instead of inverting ``S``: writing ``S = I - M``,

    ``x2 <- b2' + M x2``

until the l2 distance between consecutive iterates drops below the
convergence parameter ``Delta`` — the paper's Section 8 notes BePI
measures exactly this quantity, *not* the true l1-error, which is why
the harness computes BePI's actual l1-error post-hoc against ground
truth.  If the fixed point stalls, we fall back to a direct dense
solve (the Schur block is small by construction).
"""

from __future__ import annotations

import time

import numpy as np

from repro.bepi.blockelim import BePIIndex
from repro.core.result import PPRResult
from repro.core.validation import check_source
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.instrumentation.counters import PushCounters

__all__ = ["bepi_query"]


def bepi_query(
    graph: DiGraph,
    index: BePIIndex,
    source: int,
    *,
    delta: float = 1e-8,
    max_inner_iterations: int = 10_000,
) -> PPRResult:
    """Answer a high-precision SSPPR query from a BePI index.

    Parameters
    ----------
    delta:
        BePI's convergence parameter: the iterative Schur solve stops
        when ``||x2^(j+1) - x2^(j)||_2 <= delta``.
    """
    index.check_graph(graph)
    check_source(graph, source)
    if delta <= 0:
        raise ParameterError(f"delta must be positive, got {delta}")

    started = time.perf_counter()
    n = index.num_nodes
    n1 = index.num_spokes
    alpha = index.alpha

    b = np.zeros(n, dtype=np.float64)
    b[index.inverse_order[source]] = alpha
    b1, b2 = b[:n1], b[n1:]

    counters = PushCounters()
    y1 = index.h11_lu.solve(b1) if n1 else b1
    b2_eff = b2 - (index.h21 @ y1 if n1 else 0.0)

    x2, inner_iterations = _solve_schur_fixed_point(
        index.schur, b2_eff, delta, max_inner_iterations
    )
    counters.iterations = inner_iterations

    if n1:
        rhs1 = b1 - (index.h12 @ x2 if x2.shape[0] else 0.0)
        x1 = index.h11_lu.solve(rhs1)
    else:
        x1 = b1

    x_perm = np.concatenate([x1, x2])
    estimate = np.empty(n, dtype=np.float64)
    estimate[index.ordering.order] = x_perm

    return PPRResult(
        estimate=estimate,
        residue=None,
        source=source,
        alpha=alpha,
        counters=counters,
        seconds=time.perf_counter() - started,
        method="BePI",
    )


def _solve_schur_fixed_point(
    schur: np.ndarray,
    rhs: np.ndarray,
    delta: float,
    max_iterations: int,
) -> tuple[np.ndarray, int]:
    """Iterate ``x <- rhs + (I - S) x`` until the l2 step is <= delta."""
    n2 = rhs.shape[0]
    if n2 == 0:
        return rhs.copy(), 0
    iteration_matrix = np.eye(n2) - schur
    x = rhs.copy()
    for iteration in range(1, max_iterations + 1):
        x_next = rhs + iteration_matrix @ x
        step = float(np.linalg.norm(x_next - x))
        x = x_next
        if step <= delta:
            return x, iteration
    # The fixed point stalled (possible when the hub block is close to
    # reducible); the Schur block is small, so solve directly.
    return np.linalg.solve(schur, rhs), max_iterations
