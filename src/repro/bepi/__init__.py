"""BePI-style high-precision comparator (SlashBurn + block elimination).

This is the reproduction's stand-in for the paper's BePI baseline
(released only as MATLAB P-code): the same pipeline — SlashBurn
hub-and-spoke reordering, block elimination with a pre-factorised
block-diagonal ``H11``, and an iterative solve on the hub Schur
complement — reimplemented openly.  See DESIGN.md, "Substitutions".
"""

from repro.bepi.bear import BEARIndex, bear_query, build_bear_index
from repro.bepi.blockelim import BePIIndex, build_bepi_index
from repro.bepi.slashburn import SlashBurnResult, slashburn
from repro.bepi.solver import bepi_query

__all__ = [
    "slashburn",
    "SlashBurnResult",
    "BePIIndex",
    "build_bepi_index",
    "bepi_query",
    "BEARIndex",
    "build_bear_index",
    "bear_query",
]
