"""BEAR — Block Elimination Approach for RWR (Shin et al., SIGMOD'15).

BePI's predecessor in the paper's related work (Section 7): the same
SlashBurn + block-elimination pipeline, but instead of *iterating* on
the hub system at query time, BEAR pre-computes **explicit inverses**
— ``H11^{-1}`` (block-diagonal, inverted block by block) and the dense
``S^{-1}`` of the Schur complement — so a query is just two sparse
mat-vecs and two dense mat-vecs:

    ``x2 = S^{-1} (b2 - H21 H11^{-1} b1)``
    ``x1 = H11^{-1} (b1 - H12 x2)``

The trade-off the paper describes is exactly what this implementation
exhibits: queries are direct (exact to machine precision) and fast,
but the pre-computed inverses are *denser* than BePI's LU factors —
``H11^{-1}`` fills each spoke block completely — which is why "the
index size of BePI and BEAR could exceed the graph size by orders of
magnitude" and why BEAR scales worse than BePI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy.sparse import block_diag, csr_matrix, eye as sparse_eye

from repro.bepi.slashburn import SlashBurnResult, slashburn
from repro.core.result import PPRResult
from repro.core.validation import check_alpha, check_source
from repro.errors import IndexBuildError
from repro.graph.digraph import DiGraph
from repro.instrumentation.counters import PushCounters

__all__ = ["BEARIndex", "build_bear_index", "bear_query"]


@dataclass
class BEARIndex:
    """BEAR's pre-computed matrices (all inverses explicit)."""

    ordering: SlashBurnResult
    inverse_order: np.ndarray
    h11_inv: object  # csr_matrix, block-diagonal (n1 x n1)
    h12: object  # csr_matrix (n1 x n2)
    h21: object  # csr_matrix (n2 x n1)
    schur_inv: np.ndarray  # dense (n2 x n2)
    alpha: float
    num_nodes: int
    num_edges: int
    construction_seconds: float

    @property
    def num_spokes(self) -> int:
        return self.ordering.num_spokes

    @property
    def num_hubs(self) -> int:
        return self.ordering.num_hubs

    @property
    def size_bytes(self) -> int:
        """Index footprint: the explicit inverses plus coupling blocks."""
        total = int(self.schur_inv.nbytes)
        for block in (self.h11_inv, self.h12, self.h21):
            total += int(block.data.nbytes)
            total += int(block.indices.nbytes)
            total += int(block.indptr.nbytes)
        total += int(self.ordering.order.nbytes)
        total += int(self.inverse_order.nbytes)
        return total

    def check_graph(self, graph: DiGraph) -> None:
        if (
            graph.num_nodes != self.num_nodes
            or graph.num_edges != self.num_edges
        ):
            raise IndexBuildError(
                f"BEAR index built for n={self.num_nodes}, "
                f"m={self.num_edges}; got n={graph.num_nodes}, "
                f"m={graph.num_edges}"
            )


def build_bear_index(
    graph: DiGraph,
    *,
    alpha: float = 0.2,
    wing_width: int | None = None,
    hub_fraction: float = 0.02,
    max_block_size: int = 4096,
) -> BEARIndex:
    """Run BEAR's preprocessing: SlashBurn + explicit block inverses.

    Raises
    ------
    IndexBuildError
        On graphs with dead ends, or when SlashBurn leaves a spoke
        block larger than ``max_block_size`` (dense inversion of such
        a block would be the O(n^3) blow-up BEAR is known for; BePI is
        the right tool there).
    """
    check_alpha(alpha)
    if graph.num_nodes == 0:
        raise IndexBuildError("cannot index an empty graph")
    if graph.has_dead_ends:
        raise IndexBuildError(
            "BEAR preprocessing requires a dead-end-free graph"
        )

    started = time.perf_counter()
    ordering = slashburn(
        graph, wing_width=wing_width, hub_fraction=hub_fraction
    )
    order = ordering.order
    n = graph.num_nodes
    n1 = ordering.num_spokes

    h = (
        sparse_eye(n, format="csr")
        - (1.0 - alpha) * graph.transition_matrix_transpose()
    ).tocsr()
    h_perm = h[order, :][:, order].tocsr()

    h12 = h_perm[:n1, n1:].tocsr()
    h21 = h_perm[n1:, :n1].tocsr()
    h22 = h_perm[n1:, n1:].toarray()

    # Invert every spoke block densely (BEAR's defining step).
    inverse_blocks = []
    h11 = h_perm[:n1, :n1].tocsc()
    for start, size in ordering.spoke_blocks:
        if size > max_block_size:
            raise IndexBuildError(
                f"spoke block of size {size} exceeds max_block_size="
                f"{max_block_size}; use BePI for this graph"
            )
        block = h11[start : start + size, start : start + size].toarray()
        inverse_blocks.append(np.linalg.inv(block))
    if inverse_blocks:
        h11_inv = csr_matrix(block_diag(inverse_blocks, format="csr"))
    else:
        h11_inv = csr_matrix((0, 0))

    if ordering.num_hubs:
        x = h11_inv @ h12.toarray() if n1 else np.empty((0, ordering.num_hubs))
        schur = h22 - (h21 @ x if n1 else 0.0)
        schur_inv = np.linalg.inv(schur)
    else:
        schur_inv = np.empty((0, 0))

    return BEARIndex(
        ordering=ordering,
        inverse_order=ordering.inverse_order(),
        h11_inv=h11_inv,
        h12=h12,
        h21=h21,
        schur_inv=np.asarray(schur_inv, dtype=np.float64),
        alpha=alpha,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        construction_seconds=time.perf_counter() - started,
    )


def bear_query(
    graph: DiGraph,
    index: BEARIndex,
    source: int,
) -> PPRResult:
    """Answer a high-precision SSPPR query directly from BEAR's inverses.

    No convergence parameter: the solve is direct, so the answer is
    exact up to floating-point error.
    """
    index.check_graph(graph)
    check_source(graph, source)

    started = time.perf_counter()
    n = index.num_nodes
    n1 = index.num_spokes

    b = np.zeros(n, dtype=np.float64)
    b[index.inverse_order[source]] = index.alpha
    b1, b2 = b[:n1], b[n1:]

    y1 = index.h11_inv @ b1 if n1 else b1
    b2_eff = b2 - (index.h21 @ y1 if n1 else 0.0)
    x2 = index.schur_inv @ b2_eff if b2.shape[0] else b2
    if n1:
        x1 = index.h11_inv @ (b1 - (index.h12 @ x2 if x2.shape[0] else 0.0))
    else:
        x1 = b1

    estimate = np.empty(n, dtype=np.float64)
    estimate[index.ordering.order] = np.concatenate([x1, x2])

    counters = PushCounters()
    counters.bump("direct_solves", 1)
    return PPRResult(
        estimate=estimate,
        residue=None,
        source=source,
        alpha=index.alpha,
        counters=counters,
        seconds=time.perf_counter() - started,
        method="BEAR",
    )
