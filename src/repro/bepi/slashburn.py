"""SlashBurn hub-and-spoke node reordering (Kang & Faloutsos, ICDM'11).

BePI's preprocessing step.  SlashBurn exploits the fact that real
graphs have no balanced separators but *do* shatter when a few hubs are
removed: repeatedly

1. remove the ``k`` highest-degree nodes of the current giant
   component ("hubs"),
2. the remainder splits into connected components; all non-giant
   components ("spokes") are set aside,
3. recurse on the giant component until it is at most ``k`` nodes.

Ordering the spokes first (grouped by component) and the hubs last
makes the spoke-spoke block ``H11`` of the permuted linear system
*block diagonal* — each spoke component only touches itself and hubs —
which is what lets BePI invert ``H11`` cheaply (see
:mod:`repro.bepi.blockelim`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components

from repro.errors import ParameterError
from repro.graph.digraph import DiGraph

__all__ = ["SlashBurnResult", "slashburn"]


@dataclass(frozen=True)
class SlashBurnResult:
    """Output of the SlashBurn ordering.

    Attributes
    ----------
    order:
        Permutation: ``order[new_position] = old_node_id``.  Spokes
        occupy positions ``0..num_spokes-1`` (grouped by block), hubs
        the rest.
    spoke_blocks:
        ``(start, size)`` pairs delimiting each diagonal block of the
        spoke region, in permuted coordinates.
    num_spokes:
        ``n1`` — size of the block-diagonal region.
    wing_width:
        The ``k`` used per iteration.
    iterations:
        Number of slash-and-burn rounds performed.
    """

    order: np.ndarray
    spoke_blocks: tuple[tuple[int, int], ...]
    num_spokes: int
    wing_width: int
    iterations: int

    @property
    def num_hubs(self) -> int:
        """``n2`` — number of hub nodes (the Schur-complement region)."""
        return int(self.order.shape[0] - self.num_spokes)

    def inverse_order(self) -> np.ndarray:
        """Permutation: ``inverse[old_node_id] = new_position``."""
        inverse = np.empty_like(self.order)
        inverse[self.order] = np.arange(self.order.shape[0])
        return inverse


def slashburn(
    graph: DiGraph,
    *,
    wing_width: int | None = None,
    hub_fraction: float = 0.02,
    max_hub_fraction: float = 0.2,
    max_iterations: int = 10_000,
) -> SlashBurnResult:
    """Compute the SlashBurn ordering of ``graph``.

    Parameters
    ----------
    wing_width:
        Hubs removed per round (``k``).  Defaults to
        ``max(1, hub_fraction * n)``, BePI's recommended parameterisation.
    max_hub_fraction:
        Stop slashing once hubs exceed this fraction of ``n`` and fold
        the remaining giant component into one final spoke block.
        Bounds the Schur complement's size on graphs that shatter
        slowly (synthetic Chung-Lu graphs lack the strong community
        structure that makes real graphs shatter quickly).
    """
    n = graph.num_nodes
    if n == 0:
        raise ParameterError("cannot reorder an empty graph")
    if wing_width is None:
        wing_width = max(1, int(hub_fraction * n))
    if wing_width < 1:
        raise ParameterError(f"wing_width must be >= 1, got {wing_width}")
    if not 0.0 < max_hub_fraction <= 1.0:
        raise ParameterError(
            f"max_hub_fraction must be in (0, 1], got {max_hub_fraction}"
        )
    hub_budget = max(int(max_hub_fraction * n), wing_width)

    # Undirected adjacency for the component analysis; degrees for hub
    # selection are total (in + out) degrees, recomputed per subgraph.
    sources, targets = graph.edge_array()
    sym = csr_matrix(
        (
            np.ones(2 * sources.shape[0], dtype=np.int8),
            (
                np.concatenate([sources, targets]),
                np.concatenate([targets, sources]),
            ),
        ),
        shape=(n, n),
    )
    sym.sum_duplicates()

    hubs: list[np.ndarray] = []
    spoke_groups: list[np.ndarray] = []  # old ids, grouped by component
    working = np.arange(n)  # old ids of the current giant component

    iterations = 0
    hubs_total = 0
    while working.shape[0] > wing_width and hubs_total < hub_budget:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - safety net
            break
        sub = sym[working][:, working]
        degrees = np.asarray(sub.sum(axis=1)).ravel()
        # Top-k by degree; ties broken by node id for determinism.
        k = min(wing_width, working.shape[0])
        hub_local = np.argsort(-degrees, kind="stable")[:k]
        hubs.append(working[hub_local])
        hubs_total += k

        keep_mask = np.ones(working.shape[0], dtype=bool)
        keep_mask[hub_local] = False
        remaining = working[keep_mask]
        if remaining.shape[0] == 0:
            working = remaining
            break
        sub_rem = sub[keep_mask][:, keep_mask]
        num_comp, labels = connected_components(sub_rem, directed=False)
        if num_comp == 1:
            working = remaining
            continue
        sizes = np.bincount(labels)
        giant = int(np.argmax(sizes))
        for comp in range(num_comp):
            if comp == giant:
                continue
            spoke_groups.append(remaining[labels == comp])
        working = remaining[labels == giant]

    # The final giant remainder becomes one last spoke block (BePI
    # stops once it is small enough to treat as an ordinary block).
    if working.shape[0]:
        spoke_groups.append(working)

    order_parts: list[np.ndarray] = []
    blocks: list[tuple[int, int]] = []
    cursor = 0
    for group in spoke_groups:
        blocks.append((cursor, int(group.shape[0])))
        order_parts.append(group)
        cursor += int(group.shape[0])
    num_spokes = cursor
    # Hubs in reverse removal order: the earliest (highest-degree) hubs
    # sit at the very end, as in the SlashBurn paper's layout.
    for hub_group in reversed(hubs):
        order_parts.append(hub_group)

    order = (
        np.concatenate(order_parts)
        if order_parts
        else np.empty(0, dtype=np.int64)
    )
    if order.shape[0] != n:  # pragma: no cover - internal consistency
        raise AssertionError("SlashBurn dropped or duplicated nodes")
    return SlashBurnResult(
        order=order.astype(np.int64),
        spoke_blocks=tuple(blocks),
        num_spokes=num_spokes,
        wing_width=wing_width,
        iterations=iterations,
    )
