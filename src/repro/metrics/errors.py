"""Error measures used throughout the paper's evaluation (Section 8)."""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "l1_error",
    "l2_error",
    "max_absolute_error",
    "max_relative_error",
    "relative_error_violations",
]


def _check_pair(estimate: np.ndarray, truth: np.ndarray) -> None:
    if estimate.shape != truth.shape:
        raise ParameterError(
            f"shape mismatch: estimate {estimate.shape} vs truth {truth.shape}"
        )


def l1_error(estimate: np.ndarray, truth: np.ndarray) -> float:
    """``||estimate - truth||_1`` — the paper's headline error metric."""
    _check_pair(estimate, truth)
    return float(np.abs(estimate - truth).sum())


def l2_error(estimate: np.ndarray, truth: np.ndarray) -> float:
    """``||estimate - truth||_2`` — BePI's convergence measure."""
    _check_pair(estimate, truth)
    return float(np.linalg.norm(estimate - truth))


def max_absolute_error(estimate: np.ndarray, truth: np.ndarray) -> float:
    """``max_v |estimate_v - truth_v|``."""
    _check_pair(estimate, truth)
    if estimate.size == 0:
        return 0.0
    return float(np.abs(estimate - truth).max())


def max_relative_error(
    estimate: np.ndarray,
    truth: np.ndarray,
    *,
    mu: float,
) -> float:
    """Largest relative error over nodes with ``truth >= mu``.

    This is the quantity the Approx-SSPPR contract bounds by ``eps``
    (Section 2).  Returns 0 when no node passes the threshold.
    """
    _check_pair(estimate, truth)
    mask = truth >= mu
    if not np.any(mask):
        return 0.0
    return float(
        (np.abs(estimate[mask] - truth[mask]) / truth[mask]).max()
    )


def relative_error_violations(
    estimate: np.ndarray,
    truth: np.ndarray,
    *,
    mu: float,
    epsilon: float,
) -> int:
    """Number of nodes with ``truth >= mu`` whose relative error exceeds eps."""
    _check_pair(estimate, truth)
    mask = truth >= mu
    if not np.any(mask):
        return 0
    rel = np.abs(estimate[mask] - truth[mask]) / truth[mask]
    return int((rel > epsilon).sum())
