"""Evaluation metrics: error norms, ranking quality, ground truth."""

from repro.metrics.errors import (
    l1_error,
    l2_error,
    max_absolute_error,
    max_relative_error,
    relative_error_violations,
)
from repro.metrics.ground_truth import (
    clear_ground_truth_cache,
    exact_ppr_dense,
    ground_truth_ppr,
)
from repro.metrics.ranking import (
    kendall_tau_at_k,
    ndcg_at_k,
    precision_at_k,
    top_k_nodes,
)

__all__ = [
    "l1_error",
    "l2_error",
    "max_absolute_error",
    "max_relative_error",
    "relative_error_violations",
    "exact_ppr_dense",
    "ground_truth_ppr",
    "clear_ground_truth_cache",
    "top_k_nodes",
    "precision_at_k",
    "ndcg_at_k",
    "kendall_tau_at_k",
]
