"""Ground-truth PPR computation.

Two routes:

* :func:`exact_ppr_dense` — direct dense solve of Eq. 1, feasible for
  small graphs only; the oracle for unit tests.
* :func:`ground_truth_ppr` — Power Iteration pushed to a very small
  threshold (default ``1e-14``; the paper uses ``1e-17`` with C++
  doubles — see DESIGN.md, Substitutions), cached per
  ``(graph, source, alpha)`` for the experiment harness, which
  evaluates every approximate algorithm against the same truth.
"""

from __future__ import annotations

import numpy as np

from repro.core.power_iteration import power_iteration
from repro.core.residues import DeadEndPolicy
from repro.core.validation import check_alpha, check_source
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph

__all__ = ["exact_ppr_dense", "ground_truth_ppr", "clear_ground_truth_cache"]

_GT_CACHE: dict[tuple[int, int, float, str], np.ndarray] = {}


def exact_ppr_dense(
    graph: DiGraph,
    source: int,
    *,
    alpha: float = 0.2,
    dead_end_policy: DeadEndPolicy = "redirect-to-source",
    max_nodes: int = 2000,
) -> np.ndarray:
    """Solve ``pi = alpha e_s + (1 - alpha) pi P`` exactly (dense).

    Dead ends are patched into ``P`` according to ``dead_end_policy``
    (row = ``e_s`` for redirect-to-source, uniform row for teleport),
    which makes this the exact semantics every algorithm targets.
    """
    check_alpha(alpha)
    check_source(graph, source)
    n = graph.num_nodes
    if n == 0:
        raise ParameterError("cannot solve on an empty graph")
    if n > max_nodes:
        raise ParameterError(
            f"dense solve capped at {max_nodes} nodes (got {n}); "
            "use ground_truth_ppr instead"
        )

    transition = np.zeros((n, n), dtype=np.float64)
    for v in range(n):
        neighbors = graph.out_neighbors(v)
        if neighbors.shape[0]:
            np.add.at(
                transition[v], neighbors, 1.0 / neighbors.shape[0]
            )
        elif dead_end_policy == "redirect-to-source":
            transition[v, source] = 1.0
        elif dead_end_policy == "uniform-teleport":
            transition[v, :] = 1.0 / n
        else:
            raise ParameterError(
                "self-loop policy must be applied structurally before "
                "calling exact_ppr_dense"
            )

    e_s = np.zeros(n, dtype=np.float64)
    e_s[source] = 1.0
    # pi (I - (1 - alpha) P) = alpha e_s   =>   solve the transpose.
    coefficient = np.eye(n) - (1.0 - alpha) * transition.T
    return np.linalg.solve(coefficient, alpha * e_s)


def ground_truth_ppr(
    graph: DiGraph,
    source: int,
    *,
    alpha: float = 0.2,
    l1_threshold: float = 1e-14,
    dead_end_policy: DeadEndPolicy = "redirect-to-source",
    use_cache: bool = True,
) -> np.ndarray:
    """High-precision PPR via PowItr, cached for reuse across metrics."""
    key = (id(graph), source, alpha, dead_end_policy)
    if use_cache and key in _GT_CACHE:
        return _GT_CACHE[key]
    result = power_iteration(
        graph,
        source,
        alpha=alpha,
        l1_threshold=l1_threshold,
        dead_end_policy=dead_end_policy,
    )
    truth = result.estimate
    truth.flags.writeable = False
    if use_cache:
        _GT_CACHE[key] = truth
    return truth


def clear_ground_truth_cache() -> None:
    """Drop all cached ground-truth vectors."""
    _GT_CACHE.clear()
