"""Ranking-quality metrics for top-k use cases (who-to-follow etc.).

The paper's evaluation reports l1-errors; downstream applications
(recommendation, embedding features) care about ranking agreement, so
the examples and extension benchmarks also report precision@k and NDCG
against the ground-truth PPR ordering.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

__all__ = ["top_k_nodes", "precision_at_k", "ndcg_at_k", "kendall_tau_at_k"]


def top_k_nodes(scores: np.ndarray, k: int) -> np.ndarray:
    """Ids of the ``k`` largest scores, descending, ties by node id."""
    if k < 0:
        raise ParameterError(f"k must be >= 0, got {k}")
    k = min(k, scores.shape[0])
    return np.argsort(-scores, kind="stable")[:k]


def precision_at_k(
    estimate: np.ndarray, truth: np.ndarray, k: int
) -> float:
    """Fraction of the true top-k found in the estimated top-k."""
    if estimate.shape != truth.shape:
        raise ParameterError("shape mismatch between estimate and truth")
    if k <= 0 or estimate.shape[0] == 0:
        return 1.0
    top_est = set(top_k_nodes(estimate, k).tolist())
    top_true = set(top_k_nodes(truth, k).tolist())
    return len(top_est & top_true) / min(k, estimate.shape[0])


def ndcg_at_k(estimate: np.ndarray, truth: np.ndarray, k: int) -> float:
    """Normalised Discounted Cumulative Gain of the estimated ordering.

    Gains are the true PPR values; discounts are ``1 / log2(rank + 1)``.
    """
    if estimate.shape != truth.shape:
        raise ParameterError("shape mismatch between estimate and truth")
    if k <= 0 or estimate.shape[0] == 0:
        return 1.0
    k = min(k, estimate.shape[0])
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    dcg = float((truth[top_k_nodes(estimate, k)] * discounts).sum())
    ideal = float((truth[top_k_nodes(truth, k)] * discounts).sum())
    if ideal == 0.0:
        return 1.0
    return dcg / ideal


def kendall_tau_at_k(
    estimate: np.ndarray, truth: np.ndarray, k: int
) -> float:
    """Kendall rank correlation restricted to the true top-k nodes.

    Returns a value in ``[-1, 1]``; 1 means the estimate orders the true
    top-k identically.
    """
    if estimate.shape != truth.shape:
        raise ParameterError("shape mismatch between estimate and truth")
    nodes = top_k_nodes(truth, k)
    if nodes.shape[0] < 2:
        return 1.0
    est = estimate[nodes]
    tru = truth[nodes]
    concordant = 0
    discordant = 0
    for i in range(nodes.shape[0]):
        for j in range(i + 1, nodes.shape[0]):
            sign_est = np.sign(est[i] - est[j])
            sign_tru = np.sign(tru[i] - tru[j])
            if sign_est == 0 or sign_tru == 0:
                continue
            if sign_est == sign_tru:
                concordant += 1
            else:
                discordant += 1
    total = concordant + discordant
    if total == 0:
        return 1.0
    return (concordant - discordant) / total
