"""Block-kernel benchmark: batched PowerPush vs the per-source loop.

Measures the tentpole claim of the multi-source kernel layer on one
serving-sized R-MAT graph: answering ``B`` high-precision queries with
one :func:`~repro.core.powerpush.power_push_block` solve versus looping
:meth:`~repro.api.engine.PPREngine.batch_query` one source at a time.
For every batch size it reports

* wall seconds of both paths and their ratio (the headline speedup),
* nanoseconds per residue update on the block path (the ns/edge cost
  the paper's operation counting normalises by),
* scratch-buffer reuse from the threaded
  :class:`~repro.core.workspace.Workspace` (allocation churn next to
  the timing numbers, so regressions in either show up together), and
* whether every block row is element-wise identical to its independent
  solve — the correctness half, which CI treats as blocking while the
  timing half is informational.

Backend comparison
------------------
The same run also times every requested **kernel backend**
(:mod:`repro.backends`) on the identical workload — single-source
PowerPush and the block solve at each batch size — with an untimed
warm-up per backend first, so JIT compilation (the numba backend's
``@njit(cache=True)`` first call) never lands inside a timed region.
Per backend the report carries best-of-``repeats`` seconds, the
speedup over the ``numpy`` reference, and the max L1 deviation from
the reference answers (compiled loops re-associate float sums, so the
gate is a tolerance — :data:`DEVIATION_TOLERANCE` — not bitwise
equality, which only the reference itself must satisfy).  Backends
requested but not importable (numba without the optional extra) are
recorded in ``skipped_backends`` rather than silently measured as
numpy-in-disguise.

Consumed by ``benchmarks/bench_kernels.py --smoke`` (the CI artifact
``results/BENCH_kernels.json``) and ``repro-ppr bench-kernels``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.api.engine import PPREngine
from repro.backends import (
    available_backends,
    get_backend,
    registered_backends,
)
from repro.core.powerpush import power_push, power_push_block
from repro.core.workspace import Workspace
from repro.durability.atomic import atomic_write_json
from repro.errors import ParameterError
from repro.generators.rmat import rmat_digraph

__all__ = [
    "DEVIATION_TOLERANCE",
    "BackendMetrics",
    "KernelBatchMetrics",
    "KernelBenchReport",
    "run_kernel_bench",
]

#: Max L1 deviation a non-reference backend may show against the numpy
#: answers before the bench verdict is a FAIL (compiled sequential sums
#: vs NumPy pairwise sums re-associate floats; beyond this is a bug).
DEVIATION_TOLERANCE = 1e-9


@dataclass
class KernelBatchMetrics:
    """Measurements for one batch size ``B``."""

    batch_size: int
    seconds_loop: float
    seconds_block: float
    identical: bool
    residue_updates: int
    workspace: dict[str, int]

    @property
    def speedup(self) -> float:
        """Per-source loop seconds over block seconds."""
        if self.seconds_block == 0.0:
            return 0.0
        return self.seconds_loop / self.seconds_block

    @property
    def ns_per_edge(self) -> float:
        """Block nanoseconds per residue update (edge pushing)."""
        if not self.residue_updates:
            return 0.0
        return self.seconds_block * 1e9 / self.residue_updates

    def as_dict(self) -> dict[str, Any]:
        return {
            "batch_size": self.batch_size,
            "seconds_loop": self.seconds_loop,
            "seconds_block": self.seconds_block,
            "speedup": self.speedup,
            "ns_per_edge_block": self.ns_per_edge,
            "residue_updates": self.residue_updates,
            "identical": self.identical,
            "workspace": dict(self.workspace),
        }


@dataclass
class BackendMetrics:
    """Timings of one kernel backend on the shared workload."""

    backend: str
    compiled: bool
    seconds_single: float
    #: batch size -> best block-solve seconds
    seconds_block: dict[int, float]
    #: max L1 distance of any answer from the numpy reference's
    max_l1_deviation: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "compiled": self.compiled,
            "seconds_single": self.seconds_single,
            "seconds_block": {
                str(size): seconds
                for size, seconds in sorted(self.seconds_block.items())
            },
            "max_l1_deviation": self.max_l1_deviation,
        }


@dataclass
class KernelBenchReport:
    """Everything one kernel bench run measured."""

    graph_name: str
    num_nodes: int
    num_edges: int
    l1_threshold: float
    alpha: float
    seed: int
    batches: list[KernelBatchMetrics] = field(default_factory=list)
    backends: list[BackendMetrics] = field(default_factory=list)
    skipped_backends: list[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        """True when every batch matched its per-source baseline."""
        return all(batch.identical for batch in self.batches)

    @property
    def backends_within_tolerance(self) -> bool:
        """True when every measured backend stayed within the L1 gate."""
        return all(
            metrics.max_l1_deviation <= DEVIATION_TOLERANCE
            for metrics in self.backends
        )

    def speedup_at(self, batch_size: int) -> float:
        for batch in self.batches:
            if batch.batch_size == batch_size:
                return batch.speedup
        raise KeyError(f"no batch of size {batch_size} was measured")

    def backend_metrics(self, name: str) -> BackendMetrics:
        for metrics in self.backends:
            if metrics.backend == name:
                return metrics
        raise KeyError(f"backend {name!r} was not measured")

    def backend_speedup(
        self, name: str, batch_size: int | None = None
    ) -> float:
        """``name``'s speedup over the numpy reference on this workload.

        ``batch_size=None`` compares the single-source solve; a batch
        size compares the block solve of that width.
        """
        reference = self.backend_metrics("numpy")
        candidate = self.backend_metrics(name)
        if batch_size is None:
            base, other = reference.seconds_single, candidate.seconds_single
        else:
            base = reference.seconds_block[batch_size]
            other = candidate.seconds_block[batch_size]
        return base / other if other else 0.0

    def _backend_speedups(self) -> dict[str, Any]:
        """Per-backend speedups over numpy, for the JSON artifact."""
        if not any(m.backend != "numpy" for m in self.backends):
            return {}
        speedups: dict[str, Any] = {}
        for metrics in self.backends:
            if metrics.backend == "numpy":
                continue
            speedups[metrics.backend] = {
                "single_source": self.backend_speedup(metrics.backend),
                "block": {
                    str(size): self.backend_speedup(metrics.backend, size)
                    for size in sorted(metrics.seconds_block)
                },
            }
        return speedups

    def to_dict(self) -> dict[str, Any]:
        return {
            "graph": {
                "name": self.graph_name,
                "num_nodes": self.num_nodes,
                "num_edges": self.num_edges,
            },
            "l1_threshold": self.l1_threshold,
            "alpha": self.alpha,
            "seed": self.seed,
            "identical": self.identical,
            "batches": [batch.as_dict() for batch in self.batches],
            "backends": [metrics.as_dict() for metrics in self.backends],
            "backend_speedups": self._backend_speedups(),
            "skipped_backends": list(self.skipped_backends),
        }

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(path, self.to_dict())
        return path

    def assessment(self, target_speedup: float) -> str:
        """One-line verdict shared by every wrapper (script, CLI, CI).

        Correctness blocks, timing informs: a divergence is a FAIL, a
        speedup below ``target_speedup`` at the largest batch size only
        a WARN — keeping the wording in one place so the entry points
        cannot drift.
        """
        if not self.identical:
            return "FAIL: block answers diverged from the per-source baseline"
        if not self.backends_within_tolerance:
            worst = max(self.backends, key=lambda m: m.max_l1_deviation)
            return (
                f"FAIL: backend {worst.backend!r} deviated "
                f"{worst.max_l1_deviation:.3e} L1 from the numpy reference "
                f"(tolerance {DEVIATION_TOLERANCE:g})"
            )
        largest = max(batch.batch_size for batch in self.batches)
        speedup = self.speedup_at(largest)
        if speedup < target_speedup:
            best = max(batch.speedup for batch in self.batches)
            return (
                f"WARN: block speedup {speedup:.2f}x at B={largest} below "
                f"the {target_speedup:.1f}x target (best {best:.2f}x)"
            )
        # Compiled backends should clear 2x over the reference on both
        # the single-source and widest-block paths; like all timing
        # here this WARNs rather than fails.
        for metrics in self.backends:
            if not metrics.compiled:
                continue
            single = self.backend_speedup(metrics.backend)
            block = self.backend_speedup(metrics.backend, largest)
            if min(single, block) < 2.0:
                return (
                    f"WARN: backend {metrics.backend!r} speedup over numpy "
                    f"below the 2.0x target (single {single:.2f}x, "
                    f"B={largest} {block:.2f}x); answers within tolerance"
                )
        return (
            f"OK: block batch_query {speedup:.2f}x faster than the "
            f"per-source loop at B={largest}, element-wise identical answers"
        )

    def render(self) -> str:
        lines = [
            f"kernel bench [{self.graph_name}] n={self.num_nodes} "
            f"m={self.num_edges} l1={self.l1_threshold:g} alpha={self.alpha}",
        ]
        for batch in self.batches:
            ws = batch.workspace
            lines.append(
                f"  B={batch.batch_size:<3d} loop {batch.seconds_loop * 1e3:8.1f} ms   "
                f"block {batch.seconds_block * 1e3:8.1f} ms   "
                f"speedup {batch.speedup:5.2f}x   "
                f"{batch.ns_per_edge:6.1f} ns/edge   "
                f"identical={batch.identical}   "
                f"scratch {ws.get('reused', 0)}/{ws.get('requests', 0)} reused"
            )
        for metrics in self.backends:
            blocks = "   ".join(
                f"B={size} {seconds * 1e3:8.1f} ms"
                + (
                    f" ({self.backend_speedup(metrics.backend, size):.2f}x)"
                    if metrics.backend != "numpy"
                    else ""
                )
                for size, seconds in sorted(metrics.seconds_block.items())
            )
            single = f"single {metrics.seconds_single * 1e3:8.1f} ms"
            if metrics.backend != "numpy":
                single += f" ({self.backend_speedup(metrics.backend):.2f}x)"
            lines.append(
                f"  backend {metrics.backend:<6s} {single}   {blocks}   "
                f"max|dev|={metrics.max_l1_deviation:.1e}"
            )
        for name in self.skipped_backends:
            lines.append(f"  backend {name:<6s} skipped (not installed)")
        return "\n".join(lines)


def run_kernel_bench(
    *,
    scale: int = 8,
    edges: int = 2_000,
    batch_sizes: tuple[int, ...] = (8, 32),
    l1_threshold: float = 1e-8,
    alpha: float = 0.2,
    seed: int = 2021,
    repeats: int = 3,
    backends: tuple[str, ...] | str | None = None,
) -> KernelBenchReport:
    """Measure block vs per-source ``batch_query`` on one R-MAT graph.

    Both timed paths run through one :class:`PPREngine`
    (``block=True`` / ``block=False``), so the comparison is exactly
    the dispatch the serving scheduler performs — engine overhead on
    both sides.  One additional *untimed* :func:`power_push_block` run
    with a shared :class:`Workspace` reports scratch-buffer reuse and
    cross-checks the direct kernel entry point.  Timings take the best
    of ``repeats`` runs; the graph's push caches are warmed first so
    both sides time queries, not construction.

    ``backends`` names the kernel backends to compare on the same
    workload — a tuple of names, or the CLI's raw string form
    (``"auto"`` or a comma-separated list, parsed here so every entry
    point shares one parser).  The default (``None``/``"auto"``) is
    ``numpy`` plus ``numba`` when importable; the reference ``numpy``
    is always measured first.  Each backend gets one untimed warm-up
    solve before its timed runs so JIT compilation stays out of the
    numbers; unavailable backends are skipped and listed in the
    report.
    """
    if not batch_sizes:
        raise ParameterError("batch_sizes must name at least one batch size")
    backends = _parse_backends(backends)
    graph = rmat_digraph(
        scale, edges, rng=np.random.default_rng(seed), name="kernel-rmat"
    ).warm_push_caches()
    engine = PPREngine(graph, alpha=alpha, seed=seed)
    rng = np.random.default_rng(seed + 1)
    pool = rng.choice(
        graph.num_nodes, size=max(batch_sizes), replace=False
    ).tolist()

    report = KernelBenchReport(
        graph_name=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        l1_threshold=l1_threshold,
        alpha=alpha,
        seed=seed,
    )
    for batch_size in batch_sizes:
        sources = pool[:batch_size]
        loop_best = float("inf")
        loop_results = None
        for _ in range(repeats):
            loop_results, elapsed = _timed(
                engine.batch_query,
                sources,
                "powerpush",
                l1_threshold=l1_threshold,
                block=False,
            )
            loop_best = min(loop_best, elapsed)

        block_best = float("inf")
        block_results = None
        for _ in range(repeats):
            block_results, elapsed = _timed(
                engine.batch_query,
                sources,
                "powerpush",
                l1_threshold=l1_threshold,
                block=True,
            )
            block_best = min(block_best, elapsed)
        # Untimed direct-kernel run: collects the scratch-buffer stats
        # and cross-checks the raw entry point against the engine path.
        workspace = Workspace()
        direct_results = power_push_block(
            graph,
            sources,
            alpha=alpha,
            l1_threshold=l1_threshold,
            workspace=workspace,
        )

        identical = all(
            np.array_equal(loop.estimate, block.estimate)
            and np.array_equal(loop.residue, block.residue)
            and np.array_equal(loop.estimate, direct.estimate)
            for loop, block, direct in zip(
                loop_results, block_results, direct_results
            )
        )
        updates = sum(
            result.counters.residue_updates for result in block_results
        )
        report.batches.append(
            KernelBatchMetrics(
                batch_size=batch_size,
                seconds_loop=loop_best,
                seconds_block=block_best,
                identical=identical,
                residue_updates=updates,
                workspace=workspace.stats(),
            )
        )

    _measure_backends(
        report,
        graph,
        pool,
        batch_sizes,
        l1_threshold=l1_threshold,
        alpha=alpha,
        repeats=repeats,
        backends=backends,
    )
    return report


def _parse_backends(
    backends: tuple[str, ...] | str | None,
) -> tuple[str, ...] | None:
    """Normalise the backends request; ``None`` means auto-detect."""
    if backends is None:
        return None
    if isinstance(backends, str):
        if backends.strip().lower() == "auto":
            return None
        backends = tuple(
            token.strip() for token in backends.split(",") if token.strip()
        )
    return tuple(backends)


def _measure_backends(
    report: KernelBenchReport,
    graph,
    pool: list[int],
    batch_sizes: tuple[int, ...],
    *,
    l1_threshold: float,
    alpha: float,
    repeats: int,
    backends: tuple[str, ...] | None,
) -> None:
    """Time each requested backend on the shared workload (see caller)."""
    if backends is None:
        # Auto: always consider numba so a numba-free environment shows
        # it explicitly under skipped_backends instead of omitting it.
        names = ["numpy", "numba"]
    else:
        # The reference is the denominator of every speedup: always
        # measure it, first, exactly once.
        names = ["numpy"] + [
            name for name in dict.fromkeys(backends) if name != "numpy"
        ]
    usable = set(available_backends())

    single_source = pool[0]
    #: per batch size, the numpy reference answers for the deviation gate
    reference: dict[int, list] = {}
    reference_single = None
    for name in names:
        if name not in usable:
            if name in registered_backends():
                report.skipped_backends.append(name)
                continue
            # Unknown spelling: let the registry raise its listing error.
            get_backend(name)
        backend = get_backend(name)
        # Untimed warm-up covering both code paths: first calls trigger
        # JIT compilation on compiled backends.
        power_push(
            graph,
            single_source,
            alpha=alpha,
            l1_threshold=l1_threshold,
            backend=backend,
        )
        warm = power_push_block(
            graph,
            pool[: max(batch_sizes)],
            alpha=alpha,
            l1_threshold=l1_threshold,
            backend=backend,
            workspace=Workspace(),
        )
        del warm

        single_best = float("inf")
        single_result = None
        for _ in range(repeats):
            single_result, elapsed = _timed(
                power_push,
                graph,
                single_source,
                alpha=alpha,
                l1_threshold=l1_threshold,
                backend=backend,
            )
            single_best = min(single_best, elapsed)

        block_seconds: dict[int, float] = {}
        deviation = 0.0
        for batch_size in batch_sizes:
            sources = pool[:batch_size]
            workspace = Workspace()
            block_best = float("inf")
            block_results = None
            for _ in range(repeats):
                block_results, elapsed = _timed(
                    power_push_block,
                    graph,
                    sources,
                    alpha=alpha,
                    l1_threshold=l1_threshold,
                    backend=backend,
                    workspace=workspace,
                )
                block_best = min(block_best, elapsed)
            block_seconds[batch_size] = block_best
            if name == "numpy":
                reference[batch_size] = block_results
            else:
                deviation = max(
                    deviation,
                    max(
                        float(
                            np.abs(ours.estimate - ref.estimate).sum()
                        )
                        for ours, ref in zip(
                            block_results, reference[batch_size]
                        )
                    ),
                )
        if name == "numpy":
            reference_single = single_result
        else:
            deviation = max(
                deviation,
                float(
                    np.abs(
                        single_result.estimate - reference_single.estimate
                    ).sum()
                ),
            )
        report.backends.append(
            BackendMetrics(
                backend=name,
                compiled=backend.compiled,
                seconds_single=single_best,
                seconds_block=block_seconds,
                max_l1_deviation=deviation,
            )
        )


def _timed(fn, *args, **kwargs):
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started
