"""Block-kernel benchmark: batched PowerPush vs the per-source loop.

Measures the tentpole claim of the multi-source kernel layer on one
serving-sized R-MAT graph: answering ``B`` high-precision queries with
one :func:`~repro.core.powerpush.power_push_block` solve versus looping
:meth:`~repro.api.engine.PPREngine.batch_query` one source at a time.
For every batch size it reports

* wall seconds of both paths and their ratio (the headline speedup),
* nanoseconds per residue update on the block path (the ns/edge cost
  the paper's operation counting normalises by),
* scratch-buffer reuse from the threaded
  :class:`~repro.core.workspace.Workspace` (allocation churn next to
  the timing numbers, so regressions in either show up together), and
* whether every block row is element-wise identical to its independent
  solve — the correctness half, which CI treats as blocking while the
  timing half is informational.

Consumed by ``benchmarks/bench_kernels.py --smoke`` (the CI artifact
``results/BENCH_kernels.json``) and ``repro-ppr bench-kernels``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.api.engine import PPREngine
from repro.core.powerpush import power_push_block
from repro.core.workspace import Workspace
from repro.errors import ParameterError
from repro.generators.rmat import rmat_digraph

__all__ = ["KernelBatchMetrics", "KernelBenchReport", "run_kernel_bench"]


@dataclass
class KernelBatchMetrics:
    """Measurements for one batch size ``B``."""

    batch_size: int
    seconds_loop: float
    seconds_block: float
    identical: bool
    residue_updates: int
    workspace: dict[str, int]

    @property
    def speedup(self) -> float:
        """Per-source loop seconds over block seconds."""
        if self.seconds_block == 0.0:
            return 0.0
        return self.seconds_loop / self.seconds_block

    @property
    def ns_per_edge(self) -> float:
        """Block nanoseconds per residue update (edge pushing)."""
        if not self.residue_updates:
            return 0.0
        return self.seconds_block * 1e9 / self.residue_updates

    def as_dict(self) -> dict[str, Any]:
        return {
            "batch_size": self.batch_size,
            "seconds_loop": self.seconds_loop,
            "seconds_block": self.seconds_block,
            "speedup": self.speedup,
            "ns_per_edge_block": self.ns_per_edge,
            "residue_updates": self.residue_updates,
            "identical": self.identical,
            "workspace": dict(self.workspace),
        }


@dataclass
class KernelBenchReport:
    """Everything one kernel bench run measured."""

    graph_name: str
    num_nodes: int
    num_edges: int
    l1_threshold: float
    alpha: float
    seed: int
    batches: list[KernelBatchMetrics] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        """True when every batch matched its per-source baseline."""
        return all(batch.identical for batch in self.batches)

    def speedup_at(self, batch_size: int) -> float:
        for batch in self.batches:
            if batch.batch_size == batch_size:
                return batch.speedup
        raise KeyError(f"no batch of size {batch_size} was measured")

    def to_dict(self) -> dict[str, Any]:
        return {
            "graph": {
                "name": self.graph_name,
                "num_nodes": self.num_nodes,
                "num_edges": self.num_edges,
            },
            "l1_threshold": self.l1_threshold,
            "alpha": self.alpha,
            "seed": self.seed,
            "identical": self.identical,
            "batches": [batch.as_dict() for batch in self.batches],
        }

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def assessment(self, target_speedup: float) -> str:
        """One-line verdict shared by every wrapper (script, CLI, CI).

        Correctness blocks, timing informs: a divergence is a FAIL, a
        speedup below ``target_speedup`` at the largest batch size only
        a WARN — keeping the wording in one place so the entry points
        cannot drift.
        """
        if not self.identical:
            return "FAIL: block answers diverged from the per-source baseline"
        largest = max(batch.batch_size for batch in self.batches)
        speedup = self.speedup_at(largest)
        if speedup < target_speedup:
            best = max(batch.speedup for batch in self.batches)
            return (
                f"WARN: block speedup {speedup:.2f}x at B={largest} below "
                f"the {target_speedup:.1f}x target (best {best:.2f}x)"
            )
        return (
            f"OK: block batch_query {speedup:.2f}x faster than the "
            f"per-source loop at B={largest}, element-wise identical answers"
        )

    def render(self) -> str:
        lines = [
            f"kernel bench [{self.graph_name}] n={self.num_nodes} "
            f"m={self.num_edges} l1={self.l1_threshold:g} alpha={self.alpha}",
        ]
        for batch in self.batches:
            ws = batch.workspace
            lines.append(
                f"  B={batch.batch_size:<3d} loop {batch.seconds_loop * 1e3:8.1f} ms   "
                f"block {batch.seconds_block * 1e3:8.1f} ms   "
                f"speedup {batch.speedup:5.2f}x   "
                f"{batch.ns_per_edge:6.1f} ns/edge   "
                f"identical={batch.identical}   "
                f"scratch {ws.get('reused', 0)}/{ws.get('requests', 0)} reused"
            )
        return "\n".join(lines)


def run_kernel_bench(
    *,
    scale: int = 8,
    edges: int = 2_000,
    batch_sizes: tuple[int, ...] = (8, 32),
    l1_threshold: float = 1e-8,
    alpha: float = 0.2,
    seed: int = 2021,
    repeats: int = 3,
) -> KernelBenchReport:
    """Measure block vs per-source ``batch_query`` on one R-MAT graph.

    Both timed paths run through one :class:`PPREngine`
    (``block=True`` / ``block=False``), so the comparison is exactly
    the dispatch the serving scheduler performs — engine overhead on
    both sides.  One additional *untimed* :func:`power_push_block` run
    with a shared :class:`Workspace` reports scratch-buffer reuse and
    cross-checks the direct kernel entry point.  Timings take the best
    of ``repeats`` runs; the graph's push caches are warmed first so
    both sides time queries, not construction.
    """
    if not batch_sizes:
        raise ParameterError("batch_sizes must name at least one batch size")
    graph = rmat_digraph(
        scale, edges, rng=np.random.default_rng(seed), name="kernel-rmat"
    ).warm_push_caches()
    engine = PPREngine(graph, alpha=alpha, seed=seed)
    rng = np.random.default_rng(seed + 1)
    pool = rng.choice(
        graph.num_nodes, size=max(batch_sizes), replace=False
    ).tolist()

    report = KernelBenchReport(
        graph_name=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        l1_threshold=l1_threshold,
        alpha=alpha,
        seed=seed,
    )
    for batch_size in batch_sizes:
        sources = pool[:batch_size]
        loop_best = float("inf")
        loop_results = None
        for _ in range(repeats):
            loop_results, elapsed = _timed(
                engine.batch_query,
                sources,
                "powerpush",
                l1_threshold=l1_threshold,
                block=False,
            )
            loop_best = min(loop_best, elapsed)

        block_best = float("inf")
        block_results = None
        for _ in range(repeats):
            block_results, elapsed = _timed(
                engine.batch_query,
                sources,
                "powerpush",
                l1_threshold=l1_threshold,
                block=True,
            )
            block_best = min(block_best, elapsed)
        # Untimed direct-kernel run: collects the scratch-buffer stats
        # and cross-checks the raw entry point against the engine path.
        workspace = Workspace()
        direct_results = power_push_block(
            graph,
            sources,
            alpha=alpha,
            l1_threshold=l1_threshold,
            workspace=workspace,
        )

        identical = all(
            np.array_equal(loop.estimate, block.estimate)
            and np.array_equal(loop.residue, block.residue)
            and np.array_equal(loop.estimate, direct.estimate)
            for loop, block, direct in zip(
                loop_results, block_results, direct_results
            )
        )
        updates = sum(
            result.counters.residue_updates for result in block_results
        )
        report.batches.append(
            KernelBatchMetrics(
                batch_size=batch_size,
                seconds_loop=loop_best,
                seconds_block=block_best,
                identical=identical,
                residue_updates=updates,
                workspace=workspace.stats(),
            )
        )
    return report


def _timed(fn, *args, **kwargs):
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started
