"""Reusable performance-measurement harnesses.

Home of the benchmark bodies shared by the ``benchmarks/`` scripts and
the CLI subcommands, so a CI smoke step and a developer at a shell run
exactly the same measurement.
"""

from repro.perf.kernels import (
    KernelBatchMetrics,
    KernelBenchReport,
    run_kernel_bench,
)

__all__ = [
    "KernelBatchMetrics",
    "KernelBenchReport",
    "run_kernel_bench",
]
