"""Whole-process crash harness for the durability layer.

:mod:`repro.serving.faults` injects faults *inside* a live serving
tier (killed workers, dropped replies); this module extends that
discipline to the failure the supervision tree cannot absorb — the
death of the serving process itself.  A :class:`CrashSchedule` is
threaded through :class:`~repro.durability.manager.DurabilityManager`
into the WAL and checkpoint store and ``os._exit``\\ s the process at a
named protocol point (the schedule-driven analogue of SIGKILL:
no atexit handlers, no flushes, nothing graceful):

* ``wal-pre-append``   — before the batch reaches the log (the ack
  never happened; recovery must *not* see the batch);
* ``wal-mid-append``   — half the frame is written (a real torn tail;
  recovery must truncate it);
* ``wal-post-append``  — durable but not yet acknowledged (recovery
  may legitimately be *ahead* of the last ack, never behind);
* ``checkpoint-pre-rename`` / ``checkpoint-post-rename`` /
  ``checkpoint-post-pointer`` — the three windows of the atomic
  checkpoint dance.

:func:`run_crash_harness` runs a victim
:class:`~repro.serving.server.EngineServer` under each schedule in a
forked child, lets it die, then recovers in the parent and verifies
the contract: recovered version ≥ last acknowledged version, equal to
the WAL head, and answers byte-identical to an uninterrupted reference
run (the ``per_source_rng`` purity contract makes equality exact, not
approximate).  :func:`torn_tail_sweep` complements the schedules with
exhaustive torn-write simulation: the WAL's final record is truncated
at *every* byte offset and each truncation must recover cleanly.
"""

from __future__ import annotations

import os
import shutil
import struct
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from ..errors import ReproError
from ..generators.rmat import rmat_digraph
from ..graph.dynamic import DynamicGraph, sample_edge_update
from .manager import open_durable_graph

__all__ = [
    "CRASH_POINTS",
    "CrashSchedule",
    "HarnessConfig",
    "run_crash_harness",
    "scripted_updates",
    "torn_tail_sweep",
]

#: Protocol points a :class:`CrashSchedule` can target.
CRASH_POINTS = frozenset(
    {
        "wal-pre-append",
        "wal-mid-append",
        "wal-post-append",
        "checkpoint-pre-rename",
        "checkpoint-post-rename",
        "checkpoint-post-pointer",
    }
)

#: Exit status of a schedule-driven crash (SIGKILL's 128+9, so logs
#: read like a real kill -9).
CRASH_EXIT_CODE = 137


@dataclass
class CrashSchedule:
    """Die at occurrence ``at`` (0-based) of protocol point ``point``.

    Implements the ``CrashHook`` protocol consumed by the WAL and the
    checkpoint store.  ``point=None`` never fires (a convenient
    no-fault sentinel).
    """

    point: str | None
    at: int = 0
    exit_code: int = CRASH_EXIT_CODE
    _counts: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.point is not None and self.point not in CRASH_POINTS:
            raise ReproError(
                f"unknown crash point {self.point!r}; expected one of "
                f"{sorted(CRASH_POINTS)}"
            )

    def should(self, point: str) -> bool:
        if point != self.point:
            return False
        ordinal = self._counts.get(point, 0)
        self._counts[point] = ordinal + 1
        return ordinal == self.at

    def crash(self, point: str) -> None:
        # The whole point: no flushes, no cleanup, no goodbye — the
        # durability layer must not depend on any of them.
        sys.stderr.flush()
        os._exit(self.exit_code)


@dataclass(frozen=True)
class HarnessConfig:
    """Deterministic victim workload (all sizes smoke-scale)."""

    scale: int = 7
    edges: int = 500
    graph_seed: int = 29
    update_seed: int = 41
    batches: int = 8
    batch_size: int = 4
    checkpoint_every: int | None = 12
    alpha: float = 0.2
    engine_seed: int = 11
    query_sources: tuple[int, ...] = (0, 3, 17)
    epsilon: float = 0.5


def _base_graph(config: HarnessConfig):
    return rmat_digraph(
        config.scale,
        config.edges,
        rng=np.random.default_rng(config.graph_seed),
        name="crash-harness",
    )


def scripted_updates(config: HarnessConfig) -> list[tuple[str, int, int]]:
    """The deterministic update stream both victim and reference apply.

    One mutation per version: update ``i`` (0-based) moves the graph
    from version ``i`` to ``i + 1``, so "recovered version V" means
    exactly ``updates[:V]`` were applied.
    """
    scratch = DynamicGraph(_base_graph(config))
    rng = np.random.default_rng(config.update_seed)
    updates: list[tuple[str, int, int]] = []
    for _ in range(config.batches * config.batch_size):
        update = sample_edge_update(scratch, rng)
        scratch.apply_updates([update])
        updates.append(update)
    return updates


def _reference_answers(
    config: HarnessConfig, version: int
) -> dict[int, np.ndarray]:
    """Uninterrupted run to ``version``: apply, compact, query."""
    from ..api.engine import PPREngine

    graph = DynamicGraph(_base_graph(config))
    graph.apply_updates(scripted_updates(config)[:version])
    engine = PPREngine(graph, alpha=config.alpha, seed=config.engine_seed)
    return {
        source: engine.query(
            source, method="speedppr", epsilon=config.epsilon, seed=5
        ).estimate
        for source in config.query_sources
    }


def _victim_main(
    wal_dir: str, point: str, at: int, config: HarnessConfig, acks_path: str
) -> None:
    """Child body: serve scripted updates until the schedule kills us.

    Every acknowledged version is appended + fsynced to ``acks_path``
    so the parent knows the exact durability floor the recovery must
    respect.  Runs through a real :class:`EngineServer` so the ack
    being tested is the one production callers see.
    """
    from ..serving.server import EngineServer

    schedule = CrashSchedule(point, at=at)
    manager, graph = open_durable_graph(
        wal_dir,
        DynamicGraph(_base_graph(config)),
        checkpoint_every=config.checkpoint_every,
        crash_hook=schedule,
    )
    server = EngineServer(
        graph,
        alpha=config.alpha,
        seed=config.engine_seed,
        durability=manager,
    )
    updates = scripted_updates(config)
    with open(acks_path, "ab", buffering=0) as acks:
        for start in range(0, len(updates), config.batch_size):
            batch = updates[start : start + config.batch_size]
            version = server.apply_updates(batch)
            acks.write(f"{version}\n".encode("ascii"))
            os.fsync(acks.fileno())
    server.close()
    os._exit(0)


def _last_ack(acks_path: Path) -> int:
    if not acks_path.exists():
        return 0
    lines = [line for line in acks_path.read_bytes().splitlines() if line.strip()]
    return int(lines[-1]) if lines else 0


def default_kill_schedule(config: HarnessConfig) -> list[tuple[str, int]]:
    """One schedule per crash point, timed to fire mid-workload.

    WAL points target a mid-run append; checkpoint points use ordinal
    1 — ordinal 0 is the bootstrap checkpoint, which is covered too
    (dying during bootstrap must leave a recoverable-or-virgin
    directory), so both ordinals appear for the pre-rename window.
    """
    mid = max(1, config.batches // 2)
    return [
        ("wal-pre-append", mid),
        ("wal-mid-append", mid),
        ("wal-post-append", mid),
        ("checkpoint-pre-rename", 0),
        ("checkpoint-pre-rename", 1),
        ("checkpoint-post-rename", 1),
        ("checkpoint-post-pointer", 1),
    ]


def run_crash_harness(
    config: HarnessConfig | None = None,
    *,
    schedules: Sequence[tuple[str, int]] | None = None,
    workdir: str | Path | None = None,
) -> dict:
    """SIGKILL-equivalent crashes at every scheduled point, then recover.

    For each ``(point, ordinal)`` schedule a forked victim server runs
    the scripted workload until the schedule kills it; the parent then
    recovers the directory cold and checks, per the acceptance
    contract:

    * recovered version ≥ last acknowledged version (nothing acked is
      lost) and == the WAL head (nothing durable is dropped),
    * answers at the recovered version are byte-identical to an
      uninterrupted run (``per_source_rng`` purity),
    * a second recovery of the same directory is idempotent.

    Returns a metrics dict (per-point results, recovery timings,
    replayed record counts); raises nothing on gate failure — callers
    inspect ``result["ok"]`` so benchmarks can report before exiting
    nonzero.
    """
    from multiprocessing import get_context

    from ..api.engine import PPREngine

    config = config or HarnessConfig()
    schedules = list(schedules or default_kill_schedule(config))
    context = get_context("fork")
    own_workdir = workdir is None
    root = Path(workdir) if workdir is not None else Path(tempfile.mkdtemp(prefix="crash-harness-"))
    root.mkdir(parents=True, exist_ok=True)
    results = []
    reference_cache: dict[int, dict[int, np.ndarray]] = {}
    for index, (point, at) in enumerate(schedules):
        case_dir = root / f"case-{index:02d}-{point}-{at}"
        wal_dir = case_dir / "durable"
        acks_path = case_dir / "acks.txt"
        case_dir.mkdir(parents=True)
        child = context.Process(
            target=_victim_main,
            args=(str(wal_dir), point, at, config, str(acks_path)),
        )
        child.start()
        child.join(timeout=120)
        if child.is_alive():  # pragma: no cover - hang guard
            child.kill()
            child.join()
        exitcode = child.exitcode
        acked = _last_ack(acks_path)
        started = time.perf_counter()
        manager, graph = open_durable_graph(
            wal_dir, DynamicGraph(_base_graph(config)), checkpoint_every=None
        )
        recovery_seconds = time.perf_counter() - started
        recovered = graph.version
        replayed = manager.replayed_records
        wal_head = manager.wal.head_version
        manager.close()
        # Idempotence: recovering the same directory again lands on
        # the same version.
        manager2, graph2 = open_durable_graph(wal_dir)
        second = graph2.version
        manager2.close()
        version = recovered
        if version not in reference_cache:
            reference_cache[version] = _reference_answers(config, version)
        expected = reference_cache[version]
        engine = PPREngine(
            _recovered_graph(wal_dir),
            alpha=config.alpha,
            seed=config.engine_seed,
        )
        identical = all(
            np.array_equal(
                engine.query(
                    source, method="speedppr", epsilon=config.epsilon, seed=5
                ).estimate,
                expected[source],
            )
            for source in config.query_sources
        )
        ok = (
            exitcode in (0, CRASH_EXIT_CODE)
            and recovered >= acked
            and (wal_head is None or recovered == wal_head)
            and second == recovered
            and identical
        )
        results.append(
            {
                "point": point,
                "at": at,
                "exitcode": exitcode,
                "acked_version": acked,
                "recovered_version": recovered,
                "wal_head_version": wal_head,
                "replayed_records": replayed,
                "recovery_seconds": recovery_seconds,
                "byte_identical": identical,
                "ok": ok,
            }
        )
    if own_workdir:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "cases": results,
        "ok": all(case["ok"] for case in results),
        "total_replayed_records": sum(c["replayed_records"] for c in results),
        "max_recovery_seconds": max(c["recovery_seconds"] for c in results),
    }


def _recovered_graph(wal_dir: Path) -> DynamicGraph:
    manager, graph = open_durable_graph(wal_dir)
    manager.close()
    return graph


def _last_frame_extent(segment: Path) -> tuple[int, int] | None:
    """(start offset, frame length) of the final record, or None."""
    data = segment.read_bytes()
    header = struct.Struct("<II")
    pos = 0
    last: tuple[int, int] | None = None
    while pos + header.size <= len(data):
        length, _crc = header.unpack_from(data, pos)
        end = pos + header.size + length
        if end > len(data):
            break
        last = (pos, header.size + length)
        pos = end
    return last


def torn_tail_sweep(
    config: HarnessConfig | None = None, *, workdir: str | Path | None = None
) -> dict:
    """Truncate the WAL at every byte offset of its final record.

    Builds an uninterrupted durable run, then for each truncation
    length ``0 < k < frame bytes`` copies the state, chops the active
    segment to ``start + k``, and recovers: every cut must yield the
    pre-final version with a CSR byte-identical to the reference, and
    the log must accept a fresh append afterwards (the tail really was
    healed, not just skipped).
    """
    config = config or HarnessConfig(batches=4, batch_size=3, checkpoint_every=None)
    own_workdir = workdir is None
    root = Path(workdir) if workdir is not None else Path(tempfile.mkdtemp(prefix="torn-tail-"))
    root.mkdir(parents=True, exist_ok=True)
    golden = root / "golden"
    manager, graph = open_durable_graph(
        golden, DynamicGraph(_base_graph(config)), checkpoint_every=None
    )
    updates = scripted_updates(config)
    batches = [
        updates[start : start + config.batch_size]
        for start in range(0, len(updates), config.batch_size)
    ]
    for batch in batches:
        graph.apply_updates(batch)
        manager.flush()
    manager.close()

    pre_final_version = (len(batches) - 1) * config.batch_size
    reference = DynamicGraph(_base_graph(config))
    reference.apply_updates(updates[:pre_final_version])
    ref_snap = reference.snapshot()

    active = sorted((golden / "wal").glob("wal-*.log"))[-1]
    extent = _last_frame_extent(active)
    assert extent is not None, "sweep needs at least one full record"
    start, frame_bytes = extent
    offsets_ok = 0
    failures: list[int] = []
    for cut in range(1, frame_bytes):
        case = root / f"cut-{cut:04d}"
        shutil.copytree(golden, case)
        segment = case / "wal" / active.name
        with open(segment, "r+b") as handle:
            handle.truncate(start + cut)
        manager, recovered = open_durable_graph(case)
        snap = recovered.snapshot()
        healed = (
            recovered.version == pre_final_version
            and np.array_equal(snap.out_indptr, ref_snap.out_indptr)
            and np.array_equal(snap.out_indices, ref_snap.out_indices)
        )
        # The healed log must remain writable: re-append the batch the
        # torn write lost.
        recovered.apply_updates(batches[-1])
        manager.flush()
        reappended = manager.wal.head_version == pre_final_version + config.batch_size
        manager.close()
        if healed and reappended:
            offsets_ok += 1
        else:  # pragma: no cover - failure accounting
            failures.append(cut)
        shutil.rmtree(case, ignore_errors=True)
    if own_workdir:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "frame_bytes": frame_bytes,
        "offsets_tested": frame_bytes - 1,
        "offsets_ok": offsets_ok,
        "failed_offsets": failures,
        "ok": not failures,
    }
