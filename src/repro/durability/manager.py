"""Orchestration: WAL + checkpoints + cold-restart recovery.

:class:`DurabilityManager` glues a :class:`~repro.durability.wal.WriteAheadLog`
and a :class:`~repro.durability.checkpoint.CheckpointStore` to one
:class:`~repro.graph.dynamic.DynamicGraph`:

* it attaches itself as the graph's WAL hook, buffering every
  journalled mutation;
* :meth:`flush` drains the buffer into one fsynced WAL record — the
  serving tier calls it *before* acknowledging a version
  (fsync-before-ack);
* every ``checkpoint_every`` logged updates (or on demand, or on
  :meth:`~repro.graph.dynamic.DynamicGraph.compact`) it writes an
  atomic checkpoint, rotates the WAL, and prunes segments the
  checkpoint covers;
* :meth:`recover` rebuilds the graph on a cold restart — load the
  latest checkpoint, replay the WAL suffix, and verify the result
  matches the log head version exactly.

Directory layout under the manager's root::

    wal/               wal-<seq>.log segments
    checkpoints/       ckpt-<version>/ directories + CHECKPOINT pointer
"""

from __future__ import annotations

from pathlib import Path

from ..errors import RecoveryError
from ..graph.digraph import DiGraph
from ..graph.dynamic import DynamicGraph, EdgeUpdate
from .checkpoint import CheckpointStore
from .wal import CrashHook, WalPosition, WriteAheadLog

__all__ = ["DurabilityManager", "open_durable_graph"]


class DurabilityManager:
    """Crash-consistent persistence for one :class:`DynamicGraph`.

    Parameters
    ----------
    directory:
        Root of the durable state (``wal/`` + ``checkpoints/``),
        created if missing.
    fsync:
        False skips the fsyncs (atomic-but-not-durable; benchmarks
        measuring the durability tax only).
    checkpoint_every:
        Write a checkpoint automatically once this many updates have
        been logged since the last one; None disables the automatic
        trigger (checkpoints still happen on demand and on compact).
    crash_hook:
        Fault-injection hook threaded through to the WAL and the
        checkpoint store (see :mod:`repro.durability.crash`).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: bool = True,
        checkpoint_every: int | None = None,
        crash_hook: CrashHook | None = None,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise RecoveryError(
                f"checkpoint_every must be >= 1 or None, got {checkpoint_every}"
            )
        self._root = Path(directory)
        self._root.mkdir(parents=True, exist_ok=True)
        self._fsync = bool(fsync)
        self._checkpoint_every = checkpoint_every
        self._wal = WriteAheadLog(
            self._root / "wal", fsync=fsync, crash_hook=crash_hook
        )
        self._store = CheckpointStore(
            self._root / "checkpoints", fsync=fsync, crash_hook=crash_hook
        )
        self._graph: DynamicGraph | None = None
        self._engine: object | None = None
        self._pending: list[tuple[str, int, int]] = []
        self._updates_since_checkpoint = 0
        self._last_checkpoint_version: int | None = None
        self._in_checkpoint = False
        self._replayed_records = 0
        self._closed = False

    # ------------------------------------------------------------------
    # introspection

    @property
    def directory(self) -> Path:
        return self._root

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    @property
    def store(self) -> CheckpointStore:
        return self._store

    @property
    def graph(self) -> DynamicGraph | None:
        return self._graph

    @property
    def has_state(self) -> bool:
        """True when the directory holds recoverable durable state."""
        return self._store.latest() is not None

    @property
    def replayed_records(self) -> int:
        """WAL records replayed by the last :meth:`recover` call."""
        return self._replayed_records

    @property
    def pending_updates(self) -> int:
        """Buffered mutations not yet flushed to the WAL."""
        return len(self._pending)

    def stats(self) -> dict[str, int | None]:
        return {
            "wal_records": self._wal.record_count,
            "wal_head_version": self._wal.head_version,
            "wal_segments": len(self._wal.segments),
            "replayed_records": self._replayed_records,
            "pending_updates": len(self._pending),
            "last_checkpoint_version": self._last_checkpoint_version,
        }

    # ------------------------------------------------------------------
    # lifecycle

    def bootstrap(self, graph: DynamicGraph) -> DynamicGraph:
        """Adopt ``graph`` as the durable state of a virgin directory.

        Writes the initial covering checkpoint *before* any WAL record
        exists, so recovery is self-contained from the first update.
        """
        if self._store.latest() is not None:
            raise RecoveryError(
                f"{self._root} already holds durable state — recover() it "
                "instead of bootstrapping over it"
            )
        if self._wal.record_count:
            raise RecoveryError(
                f"{self._root} has WAL records but no covering checkpoint — "
                "refusing to bootstrap over an inconsistent directory"
            )
        info = self._store.write(graph, self._wal.position, engine=self._engine)
        self._last_checkpoint_version = info.version
        graph.attach_wal_hook(self)
        self._graph = graph
        return graph

    def recover(self) -> DynamicGraph:
        """Rebuild the graph from checkpoint + WAL suffix.

        Verifies record contiguity against the recovering graph's
        version and, at the end, that the recovered version equals the
        WAL head — any gap raises
        :class:`~repro.errors.RecoveryError`.
        """
        info = self._store.latest()
        if info is None:
            raise RecoveryError(
                f"{self._root} holds no durable state to recover "
                "(bootstrap() a graph first)"
            )
        graph = self._store.load(info)
        replayed = 0
        for record in self._wal.replay(after_version=info.version):
            start = record.version - len(record.updates)
            if start != graph.version:
                raise RecoveryError(
                    f"WAL record spans versions {start}..{record.version} "
                    f"but the recovering graph is at {graph.version} — "
                    "checkpoint and log disagree"
                )
            graph.apply_updates(record.updates)
            replayed += 1
        head = self._wal.head_version
        if head is not None and graph.version != head:
            raise RecoveryError(
                f"recovery replayed to version {graph.version} but the WAL "
                f"head is {head} — durable state is inconsistent"
            )
        self._replayed_records = replayed
        self._last_checkpoint_version = info.version
        graph.attach_wal_hook(self)
        self._graph = graph
        return graph

    def attach_engine(self, engine: object) -> None:
        """Include ``engine``'s built indexes in future checkpoints
        (duck-typed ``save_indexes``; avoids the api import cycle)."""
        self._engine = engine

    def close(self) -> None:
        """Flush pending updates and release the WAL file handle."""
        if self._closed:
            return
        if self._graph is not None and self._pending:
            self.flush()
        self._closed = True
        if self._graph is not None:
            self._graph.detach_wal_hook()
            self._graph = None
        self._wal.close()

    def __enter__(self) -> "DurabilityManager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # DynamicGraph WAL-hook protocol

    def on_commit(self, entry: EdgeUpdate) -> None:
        self._pending.append((entry.op, entry.source, entry.target))

    def on_compact(self, graph: DynamicGraph) -> None:
        """Cover a CSR rebase with a checkpoint (unless one already
        covers this exact version)."""
        if self._in_checkpoint:
            return
        self._flush_records()
        if self._last_checkpoint_version != graph.version:
            self.checkpoint()

    # ------------------------------------------------------------------
    # durability operations

    def flush(self) -> WalPosition | None:
        """Drain buffered mutations into one fsynced WAL record.

        The serving tier calls this before acknowledging a version —
        after it returns, the acknowledged state survives a crash.
        Returns the durable WAL position, or None if nothing was
        pending.  May trigger an automatic checkpoint.
        """
        position = self._flush_records()
        if (
            self._checkpoint_every is not None
            and self._updates_since_checkpoint >= self._checkpoint_every
            and not self._in_checkpoint
        ):
            self.checkpoint()
        return position

    def _flush_records(self) -> WalPosition | None:
        if not self._pending:
            return None
        if self._graph is None:
            raise RecoveryError("no graph attached to this DurabilityManager")
        batch = self._pending
        self._pending = []
        position = self._wal.append(self._graph.version, batch)
        self._updates_since_checkpoint += len(batch)
        return position

    def checkpoint(self) -> WalPosition:
        """Write an atomic covering checkpoint now.

        Flushes pending updates, rotates the WAL so the checkpoint
        covers every sealed segment, writes the checkpoint (including
        the attached engine's indexes, when any), and prunes covered
        segments only after the new pointer is durable.
        """
        if self._graph is None:
            raise RecoveryError("no graph attached to this DurabilityManager")
        self._in_checkpoint = True
        try:
            self._flush_records()
            self._wal.rotate()
            position = WalPosition(self._wal.segments[-1], 0)
            self._store.write(self._graph, position, engine=self._engine)
            # Pointer is durable: history before the new segment is
            # covered and can go.
            self._wal.prune_upto(position.segment)
            self._store.cleanup()
            self._updates_since_checkpoint = 0
            self._last_checkpoint_version = self._graph.version
        finally:
            self._in_checkpoint = False
        return position


def open_durable_graph(
    directory: str | Path,
    base: DiGraph | DynamicGraph | None = None,
    *,
    fsync: bool = True,
    checkpoint_every: int | None = None,
    crash_hook: CrashHook | None = None,
) -> tuple[DurabilityManager, DynamicGraph]:
    """Open (or create) durable state under ``directory``.

    When the directory already holds a checkpoint, the stored state is
    recovered and ``base`` is ignored — the disk is the source of
    truth.  Otherwise ``base`` (a :class:`DiGraph`, wrapped, or a
    :class:`DynamicGraph`, adopted as-is) seeds a fresh bootstrap;
    omitting it on a virgin directory raises
    :class:`~repro.errors.RecoveryError`.
    """
    manager = DurabilityManager(
        directory,
        fsync=fsync,
        checkpoint_every=checkpoint_every,
        crash_hook=crash_hook,
    )
    if manager.has_state:
        graph = manager.recover()
        return manager, graph
    if base is None:
        manager.close()
        raise RecoveryError(
            f"{directory} holds no durable state and no base graph was "
            "given to bootstrap from"
        )
    graph = base if isinstance(base, DynamicGraph) else DynamicGraph(base)
    manager.bootstrap(graph)
    return manager, graph
