"""Crash-atomic file writes: tmp + fsync + ``os.replace`` + dir fsync.

Every persistent artefact in this project (index manifests, loadtest
reports, benchmark payloads, WAL checkpoints) must reach disk through
these helpers.  A bare ``path.write_text(...)`` can be interrupted
half-way, leaving a truncated file that downstream readers choke on;
the sequence here guarantees that at every instant the destination
path either holds the complete old contents or the complete new
contents:

1. write the payload to a temporary file *in the destination
   directory* (same filesystem, so the rename is atomic),
2. flush and ``os.fsync`` the temporary file (contents durable),
3. ``os.replace`` it over the destination (atomic on POSIX),
4. ``os.fsync`` the directory (the rename itself durable).

The ``durability-discipline`` lint rule (see
:mod:`repro.analysis.checks_durability`) enforces that modules in the
persistence-bearing packages do not bypass this module.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_write_json", "fsync_dir"]


def fsync_dir(directory: str | Path) -> None:
    """fsync a directory so renames/creates inside it are durable.

    Silently skips platforms whose filesystems refuse ``open`` on
    directories (notably Windows); on POSIX this is the step that
    makes an ``os.replace`` survive power loss.
    """
    try:
        fd = os.open(os.fspath(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX platforms
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes, *, fsync: bool = True) -> Path:
    """Atomically replace ``path`` with ``data``.

    ``fsync=False`` keeps the write atomic against *process* crashes
    (readers never observe a partial file) but skips the durability
    syncs — useful for throwaway artefacts and benchmarks measuring
    the fsync delta.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(path.parent)
    return path


def atomic_write_text(
    path: str | Path, text: str, *, encoding: str = "utf-8", fsync: bool = True
) -> Path:
    """Atomically replace ``path`` with ``text``."""
    return atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def atomic_write_json(
    path: str | Path, payload: Any, *, indent: int | None = 2, fsync: bool = True
) -> Path:
    """Atomically replace ``path`` with ``payload`` serialised as JSON."""
    text = json.dumps(payload, indent=indent, sort_keys=False)
    return atomic_write_text(path, text + "\n", fsync=fsync)
