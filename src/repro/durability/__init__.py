"""Crash-consistent persistence for dynamic graphs and serving.

The durability layer has four pieces, one per module:

* :mod:`~repro.durability.atomic` — crash-atomic file replacement
  (tmp + fsync + ``os.replace`` + dir fsync), the only sanctioned way
  to write persistent artefacts (enforced by the
  ``durability-discipline`` lint rule);
* :mod:`~repro.durability.wal` — a CRC32C-framed, segmented
  write-ahead log of ``apply_updates`` batches, fsynced before the
  version ack, healing torn tails and refusing mid-log corruption;
* :mod:`~repro.durability.checkpoint` — atomic directory checkpoints
  of the :class:`~repro.graph.dynamic.DynamicGraph` snapshot (+ saved
  engine indexes) recording the WAL position they cover;
* :mod:`~repro.durability.manager` — the orchestrator: recovery =
  latest checkpoint + WAL-suffix replay, verified against the log
  head; plus :mod:`~repro.durability.crash`, the whole-process crash
  harness that proves it.

Entry point for most callers::

    manager, graph = open_durable_graph(path, base_graph)
    ...
    graph.apply_updates(batch)
    manager.flush()        # fsynced before you ack the version
"""

from .atomic import atomic_write_bytes, atomic_write_json, atomic_write_text, fsync_dir
from .checkpoint import CheckpointInfo, CheckpointStore, graph_fingerprint
from .crash import CRASH_POINTS, CrashSchedule, HarnessConfig, run_crash_harness, torn_tail_sweep
from .manager import DurabilityManager, open_durable_graph
from .wal import WalPosition, WalRecord, WriteAheadLog, crc32c

__all__ = [
    "CRASH_POINTS",
    "CheckpointInfo",
    "CheckpointStore",
    "CrashSchedule",
    "DurabilityManager",
    "HarnessConfig",
    "WalPosition",
    "WalRecord",
    "WriteAheadLog",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "crc32c",
    "fsync_dir",
    "graph_fingerprint",
    "open_durable_graph",
    "run_crash_harness",
    "torn_tail_sweep",
]
