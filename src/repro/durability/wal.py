"""Write-ahead log for :class:`~repro.graph.dynamic.DynamicGraph` updates.

Each acknowledged ``apply_updates`` batch becomes one *record*, framed
as::

    [u32 payload length][u32 CRC32C of payload][payload bytes]

(little-endian header, CRC32C/Castagnoli over the payload only).  The
payload is canonical JSON ``{"version": V, "updates": [[op, u, v],
...]}`` where ``V`` is the graph version *after* the batch.  Records
are appended to numbered segment files ``wal-<seq>.log`` and fsynced
**before** the version is acknowledged to the caller, so the set of
acknowledged batches is always a prefix of the log.

Open-time scan semantics (the crash contract):

* a partial frame at the very end of the **last** segment is a *torn
  tail* — the signature of a crash mid-append.  It was never
  acknowledged (fsync-before-ack), so it is truncated away and the log
  stays writable;
* a fully present frame whose CRC32C does not match, a partial frame
  in a non-final segment, or non-contiguous record versions are
  *mid-log corruption* and raise :class:`~repro.errors.WalCorruptionError`
  — acknowledged history is damaged and silent repair would be a lie.

Segments exist so checkpoints can prune durable history:
:meth:`WriteAheadLog.rotate` seals the active segment and
:meth:`WriteAheadLog.prune_upto` removes sealed segments once a
checkpoint covering them is durable (see
:mod:`repro.durability.checkpoint`).
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Protocol, Sequence

from ..errors import WalCorruptionError

__all__ = ["WalPosition", "WalRecord", "WriteAheadLog", "crc32c"]

_HEADER = struct.Struct("<II")
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"
# Sanity bound on a single record; a "longer" length field inside a
# fully-present region can only come from corruption.
_MAX_RECORD_BYTES = 1 << 30


def _build_crc32c_table() -> tuple[int, ...]:
    # Reflected CRC32C (Castagnoli), polynomial 0x1EDC6F41 -> 0x82F63B78.
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ 0x82F63B78 if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_CRC32C_TABLE = _build_crc32c_table()


def crc32c(data: bytes, value: int = 0) -> int:
    """CRC32C (Castagnoli) of ``data``; pure Python, table-driven.

    ``crc32c(b"123456789") == 0xE3069283`` (the standard check value).
    Distinct from :func:`zlib.crc32`, which uses the CRC32/ISO-HDLC
    polynomial — the Castagnoli polynomial has better error-detection
    properties for storage framing and matches what real WAL formats
    (e.g. RocksDB, LevelDB) use.
    """
    crc = value ^ 0xFFFFFFFF
    table = _CRC32C_TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


class CrashHook(Protocol):  # pragma: no cover - typing only
    """Fault-injection hook (see :mod:`repro.durability.crash`)."""

    def should(self, point: str) -> bool:
        """Consume one occurrence of ``point``; True when scheduled."""
        ...

    def crash(self, point: str) -> None:
        """Kill the process immediately (``os._exit``); never returns."""
        ...


@dataclass(frozen=True)
class WalPosition:
    """A durable position in the log: ``offset`` bytes into ``segment``."""

    segment: int
    offset: int

    def as_dict(self) -> dict[str, int]:
        return {"segment": self.segment, "offset": self.offset}


@dataclass(frozen=True)
class WalRecord:
    """One acknowledged batch: graph ``version`` *after* ``updates``."""

    version: int
    updates: tuple[tuple[str, int, int], ...]
    position: WalPosition


def _encode_payload(version: int, updates: Sequence[tuple[str, int, int]]) -> bytes:
    doc = {
        "version": int(version),
        "updates": [[op, int(u), int(v)] for op, u, v in updates],
    }
    return json.dumps(doc, separators=(",", ":"), sort_keys=True).encode("ascii")


def _decode_payload(payload: bytes, *, context: str) -> tuple[int, tuple[tuple[str, int, int], ...]]:
    try:
        doc = json.loads(payload)
        version = int(doc["version"])
        updates = tuple((str(op), int(u), int(v)) for op, u, v in doc["updates"])
    except (ValueError, KeyError, TypeError) as exc:
        raise WalCorruptionError(
            f"{context}: record payload passed CRC32C but is not a valid "
            f"update batch ({exc})"
        ) from exc
    return version, updates


class WriteAheadLog:
    """Append-only, CRC32C-framed, segmented write-ahead log.

    Parameters
    ----------
    directory:
        Directory holding ``wal-<seq>.log`` segments (created if
        missing).
    fsync:
        When True (the default, and the only crash-safe setting) every
        append fsyncs the segment before returning.  ``fsync=False``
        exists solely so benchmarks can measure the durability tax.
    crash_hook:
        Optional fault-injection hook fired at the named protocol
        points (``wal-pre-append``, ``wal-mid-append``,
        ``wal-post-append``); production code passes None.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: bool = True,
        crash_hook: CrashHook | None = None,
    ) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._fsync = bool(fsync)
        self._crash_hook = crash_hook
        self._head_version: int | None = None
        self._record_count = 0
        self._segments: list[int] = []
        self._scan()
        if not self._segments:
            self._segments = [0]
            self._segment_path(0).touch()
            fsync_needed = True
        else:
            fsync_needed = False
        self._active = self._segments[-1]
        self._file = open(self._segment_path(self._active), "ab")
        if fsync_needed and self._fsync:
            from .atomic import fsync_dir

            fsync_dir(self._dir)

    # ------------------------------------------------------------------
    # layout helpers

    def _segment_path(self, seq: int) -> Path:
        return self._dir / f"{_SEGMENT_PREFIX}{seq:08d}{_SEGMENT_SUFFIX}"

    @staticmethod
    def _segment_seq(path: Path) -> int | None:
        name = path.name
        if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
            return None
        body = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
        return int(body) if body.isdigit() else None

    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def segments(self) -> tuple[int, ...]:
        return tuple(self._segments)

    @property
    def head_version(self) -> int | None:
        """Version of the last durable record, or None if empty."""
        return self._head_version

    @property
    def record_count(self) -> int:
        return self._record_count

    @property
    def position(self) -> WalPosition:
        """Current append position (end of the active segment)."""
        return WalPosition(self._active, self._segment_path(self._active).stat().st_size)

    # ------------------------------------------------------------------
    # open-time scan

    def _scan(self) -> None:
        seqs = sorted(
            seq
            for path in self._dir.iterdir()
            if (seq := self._segment_seq(path)) is not None
        )
        self._segments = seqs
        prev_version: int | None = None
        for index, seq in enumerate(seqs):
            final = index == len(seqs) - 1
            prev_version = self._scan_segment(seq, final=final, prev_version=prev_version)
        self._head_version = prev_version if self._record_count else None

    def _scan_segment(
        self, seq: int, *, final: bool, prev_version: int | None
    ) -> int | None:
        path = self._segment_path(seq)
        data = path.read_bytes()
        pos = 0
        size = len(data)
        while pos < size:
            torn = False
            if size - pos < _HEADER.size:
                torn = True
            else:
                length, crc = _HEADER.unpack_from(data, pos)
                if length > _MAX_RECORD_BYTES:
                    # No legal append ever wrote this; a torn tail
                    # truncates payload bytes, not the length field's
                    # meaning.  Always corruption, even at the tail.
                    raise WalCorruptionError(
                        f"{path}: frame at offset {pos} declares {length} "
                        f"payload bytes (cap {_MAX_RECORD_BYTES}) — corrupt "
                        "length field"
                    )
                if pos + _HEADER.size + length > size:
                    torn = True
            if torn:
                if not final:
                    raise WalCorruptionError(
                        f"{path}: partial frame at offset {pos} in a non-final "
                        "segment — acknowledged history is damaged"
                    )
                # Torn tail: crash mid-append, never acknowledged.
                with open(path, "r+b") as handle:
                    handle.truncate(pos)
                    if self._fsync:
                        os.fsync(handle.fileno())
                return prev_version
            payload = data[pos + _HEADER.size : pos + _HEADER.size + length]
            actual = crc32c(payload)
            if actual != crc:
                raise WalCorruptionError(
                    f"{path}: CRC32C mismatch at offset {pos} "
                    f"(stored {crc:#010x}, computed {actual:#010x}) — "
                    "mid-log corruption, refusing to recover silently"
                )
            version, updates = _decode_payload(payload, context=f"{path} offset {pos}")
            if prev_version is not None and version - len(updates) != prev_version:
                raise WalCorruptionError(
                    f"{path}: record at offset {pos} spans versions "
                    f"{version - len(updates)}..{version} but the previous "
                    f"record ended at {prev_version} — log is not contiguous"
                )
            prev_version = version
            self._record_count += 1
            pos += _HEADER.size + length
        return prev_version

    # ------------------------------------------------------------------
    # append / read

    def append(self, version: int, updates: Sequence[tuple[str, int, int]]) -> WalPosition:
        """Frame, append, and (by default) fsync one batch; returns the
        durable end position.  Callers must not acknowledge ``version``
        before this returns."""
        payload = _encode_payload(version, updates)
        frame = _HEADER.pack(len(payload), crc32c(payload)) + payload
        hook = self._crash_hook
        if hook is not None and hook.should("wal-pre-append"):
            hook.crash("wal-pre-append")
        if hook is not None and hook.should("wal-mid-append"):
            # Simulate a torn write: half the frame reaches the file,
            # then the process dies.  Flush so the bytes are visible to
            # the recovering process (same machine, page cache shared).
            cut = max(1, len(frame) // 2)
            self._file.write(frame[:cut])
            self._file.flush()
            os.fsync(self._file.fileno())
            hook.crash("wal-mid-append")
        self._file.write(frame)
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        if hook is not None and hook.should("wal-post-append"):
            # Durable but not yet acknowledged: recovery must still
            # replay this record (fsync-before-ack admits "durable
            # beyond the last ack", never the reverse).
            hook.crash("wal-post-append")
        self._head_version = int(version)
        self._record_count += 1
        return WalPosition(self._active, self._file.tell())

    def replay(self, after_version: int | None = None) -> Iterator[WalRecord]:
        """Yield records with ``version > after_version`` in log order.

        Re-reads the segment files (the open-time scan already
        validated framing, CRCs, and contiguity).
        """
        for seq in list(self._segments):
            path = self._segment_path(seq)
            data = path.read_bytes()
            pos = 0
            size = len(data)
            while pos + _HEADER.size <= size:
                length, _crc = _HEADER.unpack_from(data, pos)
                end = pos + _HEADER.size + length
                if end > size:
                    break  # torn tail already truncated unless appended since
                payload = data[pos + _HEADER.size : end]
                version, updates = _decode_payload(
                    payload, context=f"{path} offset {pos}"
                )
                if after_version is None or version > after_version:
                    yield WalRecord(version, updates, WalPosition(seq, end))
                pos = end

    # ------------------------------------------------------------------
    # segment lifecycle

    def rotate(self) -> int:
        """Seal the active segment and start a new one; returns the new
        segment's sequence number."""
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        self._file.close()
        self._active += 1
        self._segments.append(self._active)
        path = self._segment_path(self._active)
        path.touch()
        self._file = open(path, "ab")
        if self._fsync:
            from .atomic import fsync_dir

            fsync_dir(self._dir)
        return self._active

    def prune_upto(self, segment: int) -> int:
        """Delete sealed segments with sequence < ``segment``; returns
        how many were removed.  Only call once a checkpoint covering
        them is durable."""
        removed = 0
        keep = []
        for seq in self._segments:
            if seq < segment and seq != self._active:
                self._segment_path(seq).unlink(missing_ok=True)
                removed += 1
            else:
                keep.append(seq)
        self._segments = keep
        if removed and self._fsync:
            from .atomic import fsync_dir

            fsync_dir(self._dir)
        return removed

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            if self._fsync:
                os.fsync(self._file.fileno())
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
