"""Atomic checkpoints of a :class:`~repro.graph.dynamic.DynamicGraph`.

A checkpoint is a *directory* — the materialised CSR snapshot
(``graph.npz``), optionally the engine's saved indexes (reusing
:meth:`~repro.api.engine.PPREngine.save_indexes`), and a
``manifest.json`` recording the graph version, a content fingerprint,
per-artifact SHA-256 checksums, and the WAL position the checkpoint
covers.  Recovery = load the latest checkpoint + replay the WAL suffix
past its covered position.

Atomicity follows the same discipline as
:mod:`repro.durability.atomic`, lifted to directories:

1. build the checkpoint under a ``.tmp-`` prefix,
2. fsync every file and the tmp directory,
3. ``os.replace`` the tmp directory to its final ``ckpt-<version>``
   name and fsync the parent,
4. atomically rewrite the ``CHECKPOINT`` pointer file to name it.

A crash at any point leaves either the old pointer (a complete old
checkpoint plus an ignorable orphan) or the new pointer (a complete
new checkpoint); :meth:`CheckpointStore.cleanup` sweeps tmp debris and
unreferenced checkpoints on the next open.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import CheckpointError
from ..graph.digraph import DiGraph
from ..graph.dynamic import DynamicGraph
from ..graph.io import load_npz, save_npz
from .atomic import atomic_write_json, fsync_dir
from .wal import CrashHook, WalPosition

__all__ = ["CheckpointInfo", "CheckpointStore", "graph_fingerprint"]

_POINTER_NAME = "CHECKPOINT"
_MANIFEST_NAME = "manifest.json"
_GRAPH_NAME = "graph.npz"
_INDEX_DIR = "indexes"
_FORMAT = 1


def graph_fingerprint(graph: DiGraph) -> str:
    """Content hash of a CSR snapshot (node count + adjacency arrays).

    Matches the stamp :meth:`~repro.api.engine.PPREngine.save_indexes`
    writes, so a recovered snapshot can adopt a checkpoint's saved
    indexes when (and only when) the WAL suffix was empty.
    """
    digest = hashlib.sha256()
    digest.update(np.int64(graph.num_nodes).tobytes())
    digest.update(np.ascontiguousarray(graph.out_indptr).tobytes())
    digest.update(np.ascontiguousarray(graph.out_indices).tobytes())
    return digest.hexdigest()


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class CheckpointInfo:
    """A durable checkpoint: graph ``version`` covering ``wal`` ."""

    name: str
    version: int
    wal: WalPosition
    path: Path

    @property
    def graph_path(self) -> Path:
        return self.path / _GRAPH_NAME

    @property
    def index_dir(self) -> Path:
        return self.path / _INDEX_DIR


class CheckpointStore:
    """Checkpoint directory manager under ``directory``.

    ``fsync=False`` (benchmarks only) keeps renames atomic but skips
    the durability syncs; ``crash_hook`` injects faults at the
    ``checkpoint-pre-rename`` / ``checkpoint-post-rename`` /
    ``checkpoint-post-pointer`` protocol points.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: bool = True,
        crash_hook: CrashHook | None = None,
    ) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._fsync = bool(fsync)
        self._crash_hook = crash_hook
        self.cleanup()

    @property
    def directory(self) -> Path:
        return self._dir

    def _pointer_path(self) -> Path:
        return self._dir / _POINTER_NAME

    # ------------------------------------------------------------------
    # read side

    def latest(self) -> CheckpointInfo | None:
        """The checkpoint the pointer names, or None when virgin.

        A pointer naming a missing or invalid checkpoint raises
        :class:`~repro.errors.CheckpointError` — durable state was
        promised and cannot be produced.
        """
        pointer = self._pointer_path()
        if not pointer.exists():
            return None
        try:
            doc = json.loads(pointer.read_text())
            name = str(doc["dir"])
            version = int(doc["version"])
            wal = WalPosition(int(doc["wal"]["segment"]), int(doc["wal"]["offset"]))
        except (ValueError, KeyError, TypeError) as exc:
            raise CheckpointError(
                f"{pointer}: malformed checkpoint pointer ({exc})"
            ) from exc
        path = self._dir / name
        if not path.is_dir():
            raise CheckpointError(
                f"checkpoint pointer names {name!r} but no such directory "
                f"exists under {self._dir}"
            )
        return CheckpointInfo(name, version, wal, path)

    def load(self, info: CheckpointInfo) -> DynamicGraph:
        """Rehydrate ``info`` into a :class:`DynamicGraph` at its version.

        Verifies the manifest's per-artifact SHA-256 and the CSR
        fingerprint before trusting a byte of it; any mismatch raises
        :class:`~repro.errors.CheckpointError`.
        """
        manifest_path = info.path / _MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"{manifest_path}: unreadable checkpoint manifest ({exc})"
            ) from exc
        if manifest.get("format") != _FORMAT:
            raise CheckpointError(
                f"{manifest_path}: unsupported checkpoint format "
                f"{manifest.get('format')!r} (expected {_FORMAT})"
            )
        if int(manifest.get("version", -1)) != info.version:
            raise CheckpointError(
                f"{manifest_path}: manifest version {manifest.get('version')} "
                f"disagrees with pointer version {info.version}"
            )
        checksums = manifest.get("checksums", {})
        for rel, expected in checksums.items():
            artefact = info.path / rel
            if not artefact.is_file():
                raise CheckpointError(
                    f"checkpoint {info.name}: artefact {rel!r} is missing"
                )
            actual = _sha256_file(artefact)
            if actual != expected:
                raise CheckpointError(
                    f"checkpoint {info.name}: artefact {rel!r} failed its "
                    f"SHA-256 check (stored {expected[:12]}…, computed "
                    f"{actual[:12]}…) — refusing corrupt state"
                )
        base = load_npz(info.graph_path)
        fingerprint = manifest.get("graph", {}).get("fingerprint")
        if fingerprint != graph_fingerprint(base):
            raise CheckpointError(
                f"checkpoint {info.name}: graph.npz does not match the "
                "manifest's CSR fingerprint"
            )
        return DynamicGraph(base, initial_version=info.version)

    # ------------------------------------------------------------------
    # write side

    def write(
        self,
        graph: DynamicGraph,
        wal_position: WalPosition,
        *,
        engine: object | None = None,
    ) -> CheckpointInfo:
        """Write an atomic checkpoint of ``graph`` covering ``wal_position``.

        ``engine`` (a :class:`~repro.api.engine.PPREngine`, duck-typed
        to avoid the import cycle) additionally persists its built
        indexes via ``save_indexes`` inside the checkpoint directory.
        """
        version = graph.version
        name = f"ckpt-{version:012d}"
        final = self._dir / name
        existing = self.latest()
        if existing is not None and existing.name == name:
            return existing
        if final.exists():
            shutil.rmtree(final)
        tmp = self._dir / f".tmp-{name}"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir()
        try:
            snap = graph.snapshot()
            save_npz(snap, tmp / _GRAPH_NAME)
            checksums = {_GRAPH_NAME: _sha256_file(tmp / _GRAPH_NAME)}
            if engine is not None:
                index_dir = tmp / _INDEX_DIR
                index_dir.mkdir()
                engine.save_indexes(index_dir)  # type: ignore[attr-defined]
                for artefact in sorted(index_dir.iterdir()):
                    if artefact.is_file():
                        rel = f"{_INDEX_DIR}/{artefact.name}"
                        checksums[rel] = _sha256_file(artefact)
            manifest = {
                "format": _FORMAT,
                "version": version,
                "wal": wal_position.as_dict(),
                "graph": {
                    "num_nodes": snap.num_nodes,
                    "num_edges": snap.num_edges,
                    "name": snap.name,
                    "fingerprint": graph_fingerprint(snap),
                },
                "checksums": checksums,
            }
            atomic_write_json(tmp / _MANIFEST_NAME, manifest, fsync=self._fsync)
            if self._fsync:
                self._fsync_tree(tmp)
            hook = self._crash_hook
            if hook is not None and hook.should("checkpoint-pre-rename"):
                hook.crash("checkpoint-pre-rename")
            os.replace(tmp, final)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        if self._fsync:
            fsync_dir(self._dir)
        hook = self._crash_hook
        if hook is not None and hook.should("checkpoint-post-rename"):
            # Checkpoint directory durable, pointer still old: recovery
            # must fall back to the previous checkpoint + full WAL.
            hook.crash("checkpoint-post-rename")
        atomic_write_json(
            self._pointer_path(),
            {"dir": name, "version": version, "wal": wal_position.as_dict()},
            fsync=self._fsync,
        )
        if hook is not None and hook.should("checkpoint-post-pointer"):
            # Pointer advanced but old checkpoints/segments not yet
            # pruned: recovery uses the new checkpoint and skips
            # already-covered WAL records.
            hook.crash("checkpoint-post-pointer")
        return CheckpointInfo(name, version, wal_position, final)

    def prune(self) -> int:
        """Remove checkpoints the pointer no longer references."""
        return self.cleanup()

    def cleanup(self) -> int:
        """Sweep tmp debris and unreferenced ``ckpt-*`` directories.

        Safe at any time: the pointed-at checkpoint is never touched.
        Returns the number of directories removed.
        """
        pointer = self._pointer_path()
        keep: str | None = None
        if pointer.exists():
            try:
                keep = str(json.loads(pointer.read_text()).get("dir"))
            except (OSError, ValueError):
                keep = None
        removed = 0
        for entry in self._dir.iterdir():
            if not entry.is_dir():
                continue
            if entry.name == keep:
                continue
            if entry.name.startswith(".tmp-") or entry.name.startswith("ckpt-"):
                shutil.rmtree(entry, ignore_errors=True)
                removed += 1
        return removed

    def _fsync_tree(self, root: Path) -> None:
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in filenames:
                fd = os.open(os.path.join(dirpath, filename), os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
            fsync_dir(dirpath)
