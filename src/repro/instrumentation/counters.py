"""Operation counters shared by all push-based algorithms.

The paper's Figure 6 plots the l1-error against the number of *residue
updates* — every time a push operation adds mass to one out-neighbour's
residue counts as one update (a push on ``v`` therefore contributes
``d_v`` updates, called "edge pushings" in the paper).  Counting
operations instead of seconds makes the reproduction robust to
interpreter overhead, so every algorithm maintains a
:class:`PushCounters` instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PushCounters"]


@dataclass
class PushCounters:
    """Mutable tally of the work a push algorithm has performed."""

    pushes: int = 0
    """Number of push operations (nodes processed)."""

    residue_updates: int = 0
    """Number of single-residue increments — Figure 6's x-axis."""

    iterations: int = 0
    """Completed iterations/sweeps (0 for purely asynchronous runs)."""

    queue_appends: int = 0
    """Nodes appended to the FIFO queue (queue-phase bookkeeping)."""

    random_walks: int = 0
    """Random walks performed (Monte-Carlo phases only)."""

    walk_steps: int = 0
    """Total steps taken by those walks."""

    extras: dict[str, int] = field(default_factory=dict)
    """Free-form named counters (e.g. epochs used by PowerPush)."""

    def count_push(self, degree: int) -> None:
        """Record one push on a node of out-degree ``degree``."""
        self.pushes += 1
        self.residue_updates += degree

    def count_bulk_pushes(self, num_nodes: int, num_updates: int) -> None:
        """Record a vectorised sweep pushing ``num_nodes`` nodes at once."""
        self.pushes += num_nodes
        self.residue_updates += num_updates

    def bump(self, key: str, amount: int = 1) -> None:
        """Increment a free-form named counter."""
        self.extras[key] = self.extras.get(key, 0) + amount

    def merge(self, other: "PushCounters") -> None:
        """Accumulate another counter set into this one (phase merging)."""
        self.pushes += other.pushes
        self.residue_updates += other.residue_updates
        self.iterations += other.iterations
        self.queue_appends += other.queue_appends
        self.random_walks += other.random_walks
        self.walk_steps += other.walk_steps
        for key, value in other.extras.items():
            self.bump(key, value)

    def as_dict(self) -> dict[str, int]:
        """Flat dictionary for report printing."""
        data = {
            "pushes": self.pushes,
            "residue_updates": self.residue_updates,
            "iterations": self.iterations,
            "queue_appends": self.queue_appends,
            "random_walks": self.random_walks,
            "walk_steps": self.walk_steps,
        }
        data.update(self.extras)
        return data
