"""Counters, convergence traces and timers (Figures 5-6 substrate)."""

from repro.instrumentation.counters import PushCounters
from repro.instrumentation.timers import Stopwatch, timed
from repro.instrumentation.tracing import ConvergenceTrace, TracePoint

__all__ = [
    "PushCounters",
    "ConvergenceTrace",
    "TracePoint",
    "Stopwatch",
    "timed",
]
