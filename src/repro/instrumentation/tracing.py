"""Convergence tracing for Figures 5 and 6.

A :class:`ConvergenceTrace` records ``(residue_updates, seconds, r_sum)``
triples while an algorithm runs.  The paper samples "at the moments of
every 4m edge pushings"; :class:`ConvergenceTrace` reproduces that with
a configurable stride, and algorithms call :meth:`maybe_record` at
convenient boundaries (iteration ends, queue batches).

Traces convert to the two figure axes directly:

* Figure 5: ``seconds``  vs ``r_sum`` (the actual l1-error),
* Figure 6: ``residue_updates`` vs ``r_sum``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["TracePoint", "ConvergenceTrace"]


@dataclass(frozen=True)
class TracePoint:
    """One sample of algorithm progress."""

    residue_updates: int
    seconds: float
    r_sum: float


@dataclass
class ConvergenceTrace:
    """Append-only record of an algorithm's error trajectory.

    Parameters
    ----------
    stride:
        Minimum number of residue updates between recorded points.  The
        paper uses ``4 * m``; pass that when the graph is known.  A
        stride of 0 records every call.
    """

    stride: int = 0
    points: list[TracePoint] = field(default_factory=list)
    _started_at: float = field(default_factory=time.perf_counter, repr=False)
    _last_recorded_updates: int = field(default=-1, repr=False)

    def restart_clock(self) -> None:
        """Reset the elapsed-time origin (call right before the run)."""
        self._started_at = time.perf_counter()

    def record(self, residue_updates: int, r_sum: float) -> None:
        """Unconditionally append a sample."""
        self.points.append(
            TracePoint(
                residue_updates=residue_updates,
                seconds=time.perf_counter() - self._started_at,
                r_sum=float(r_sum),
            )
        )
        self._last_recorded_updates = residue_updates

    def maybe_record(self, residue_updates: int, r_sum: float) -> None:
        """Append a sample if at least ``stride`` updates passed.

        The first call on a fresh trace always records.
        """
        if (
            self._last_recorded_updates < 0
            or residue_updates - self._last_recorded_updates >= self.stride
        ):
            self.record(residue_updates, r_sum)

    # ------------------------------------------------------------------
    # Figure axes
    # ------------------------------------------------------------------
    def series_vs_time(self) -> tuple[list[float], list[float]]:
        """``(seconds, r_sum)`` series — Figure 5 axes."""
        return (
            [p.seconds for p in self.points],
            [p.r_sum for p in self.points],
        )

    def series_vs_updates(self) -> tuple[list[int], list[float]]:
        """``(residue_updates, r_sum)`` series — Figure 6 axes."""
        return (
            [p.residue_updates for p in self.points],
            [p.r_sum for p in self.points],
        )

    def time_to_error(self, threshold: float) -> float | None:
        """Seconds needed to first reach ``r_sum <= threshold``."""
        for point in self.points:
            if point.r_sum <= threshold:
                return point.seconds
        return None

    def updates_to_error(self, threshold: float) -> int | None:
        """Residue updates needed to first reach ``r_sum <= threshold``."""
        for point in self.points:
            if point.r_sum <= threshold:
                return point.residue_updates
        return None

    def __len__(self) -> int:
        return len(self.points)
