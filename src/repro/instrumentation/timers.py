"""Tiny wall-clock helpers used by the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Stopwatch", "timed"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    >>> watch = Stopwatch()
    >>> with watch.lap("phase-1"):
    ...     pass
    >>> "phase-1" in watch.laps
    True
    """

    laps: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def lap(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.laps[name] = self.laps.get(name, 0.0) + elapsed

    @property
    def total(self) -> float:
        """Sum of all recorded laps, in seconds."""
        return sum(self.laps.values())


@contextmanager
def timed() -> Iterator[list[float]]:
    """Context manager yielding a one-element list of elapsed seconds.

    >>> with timed() as t:
    ...     pass
    >>> t[0] >= 0.0
    True
    """
    holder = [0.0]
    start = time.perf_counter()
    try:
        yield holder
    finally:
        holder[0] = time.perf_counter() - start
