"""Solver registry: every SSPPR algorithm behind one ``solve`` protocol.

The paper's thesis is that one framework unifies the global and local
approaches to PPR — this module is that thesis as an API.  Every
algorithm in the library registers a :class:`SolverSpec` carrying

* a canonical **name** plus **aliases** (``repro-ppr query --method
  fwdpush`` and ``--method fifo-fwdpush`` hit the same solver), all
  resolved case- and separator-insensitively;
* its **kind** (``"exact"`` high-precision vs ``"approx"``) and
  capability flags (``needs_rng``, ``needs_walk_index``,
  ``needs_precomputation``) that the :class:`~repro.api.engine.PPREngine`
  uses to decide which cached artefacts to inject;
* a unified **parameter schema** drawn from one shared namespace
  (``alpha``, ``l1_threshold``, ``epsilon``, ``seed`` …), so callers
  never need to know per-function signatures.

Dispatch is uniform::

    >>> from repro.api import get_solver
    >>> spec = get_solver("powitr")          # or "power-iteration", "PI"
    >>> result = spec.solve(graph, 0, params={"l1_threshold": 1e-8})

Adding an algorithm is a one-call registration —
:func:`register_solver` — after which it is automatically available to
``PPREngine.query``, the CLI, and the experiment harness.

**Variant aliases** may imply parameters: ``"fora+"`` resolves to the
``fora`` spec with ``use_index=True`` pre-set, mirroring how the paper
treats FORA+ as FORA with a pre-computed walk index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.baselines.fora import fora
from repro.baselines.resacc import resacc
from repro.bepi.blockelim import build_bepi_index
from repro.bepi.solver import bepi_query
from repro.core.fifo_fwdpush import fifo_forward_push, r_max_for_l1_threshold
from repro.core.fwdpush import forward_push
from repro.core.power_iteration import power_iteration
from repro.core.powerpush import power_push, power_push_block
from repro.core.sim_fwdpush import simultaneous_forward_push
from repro.core.speedppr import speed_ppr
from repro.core.result import PPRResult
from repro.errors import ParameterError, UnknownMethodError
from repro.graph.digraph import DiGraph
from repro.montecarlo.chernoff import (
    chernoff_walk_count,
    default_failure_probability,
    default_mu,
)
from repro.montecarlo.mc import monte_carlo_ppr
from repro.walks.index import (
    WalkIndex,
    build_walk_index,
    fora_plus_walk_counts,
    speedppr_walk_counts,
)

__all__ = [
    "ParamSpec",
    "SolverSpec",
    "per_source_rng",
    "register_solver",
    "get_solver",
    "resolve_method",
    "canonical_method_name",
    "solver_names",
    "solver_specs",
    "solve",
    "solve_block",
    "build_speedppr_index",
    "build_fora_index",
]


def per_source_rng(seed: int, source: int) -> np.random.Generator:
    """The RNG stream an explicit ``seed`` yields for ``source``.

    One independent stream per *source id* —
    ``default_rng(SeedSequence([seed, source]))`` — never per batch
    position, so the answer a source gets under a fixed seed does not
    depend on where it sits in a batch or on which other sources ride
    along (the property the serving layer's coalescing relies on).
    Every seeded path resolves through this one derivation —
    ``solve(g, s, m, seed=S)``, ``PPREngine.query(s, m, seed=S)``, any
    seeded batch member, and a served answer under seed ``S`` are
    byte-identical.
    """
    if seed < 0 or source < 0:
        raise ParameterError(
            f"per-source streams need non-negative seed/source, got "
            f"seed={seed}, source={source}"
        )
    return np.random.default_rng(
        np.random.SeedSequence([int(seed), int(source)])
    )


# ---------------------------------------------------------------------------
# Parameter schema
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ParamSpec:
    """One named parameter of the unified query-parameter namespace."""

    name: str
    description: str


#: The shared parameter namespace.  Every solver's schema is a subset.
PARAMS: dict[str, ParamSpec] = {
    spec.name: spec
    for spec in (
        ParamSpec("alpha", "teleport probability (paper default 0.2)"),
        ParamSpec("l1_threshold", "l1-error bound lambda (exact methods)"),
        ParamSpec("r_max", "per-degree push threshold (push methods)"),
        ParamSpec("epsilon", "relative-error bound (approx methods)"),
        ParamSpec("mu", "relative-error floor; defaults to 1/n"),
        ParamSpec("p_fail", "failure probability; defaults to 1/n"),
        ParamSpec("num_walks", "explicit Monte-Carlo walk count W"),
        ParamSpec("seed", "integer seed for the stochastic phase"),
        ParamSpec("rng", "numpy Generator (overrides seed)"),
        ParamSpec("walk_index", "pre-computed WalkIndex (FORA+/SpeedPPR-Index)"),
        ParamSpec("use_index", "build/use a walk index when none is supplied"),
        ParamSpec("bepi_index", "pre-computed BePIIndex"),
        ParamSpec("delta", "BePI's Schur-iteration convergence parameter"),
        ParamSpec("scheduler", "push order: fifo | lifo | max-residue"),
        ParamSpec("mode", "execution mode: faithful | frontier/vectorized | auto"),
        ParamSpec(
            "backend",
            "kernel backend: numpy | numba (or a KernelBackend instance)",
        ),
        ParamSpec("config", "PowerPushConfig tuning knobs"),
        ParamSpec("dead_end_policy", "dead-end handling rule"),
        ParamSpec("trace", "ConvergenceTrace to record into"),
        ParamSpec("max_iterations", "safety cap on iterations"),
        ParamSpec("max_sweeps", "safety cap on vectorised sweeps"),
        ParamSpec("max_pushes", "safety cap on scalar pushes"),
        ParamSpec("max_inner_iterations", "cap on BePI's Schur iterations"),
        ParamSpec("push_mode", "FwdPush phase mode inside FORA"),
        ParamSpec("allow_monte_carlo_shortcut", "paper's m >= W fallback"),
    )
}


# ---------------------------------------------------------------------------
# Solver specification
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SolverSpec:
    """One registered SSPPR algorithm behind the common protocol.

    Attributes
    ----------
    name:
        Canonical method name (also the normalisation target of every
        alias).
    aliases:
        Alternative spellings accepted anywhere a method name is.
    kind:
        ``"exact"`` (high-precision, deterministic contract) or
        ``"approx"`` (relative-error contract).
    summary:
        One-line human description for ``repro-ppr list``.
    params:
        Names from :data:`PARAMS` this solver accepts.
    fn:
        Adapter ``fn(graph, source, **params) -> PPRResult``.
    needs_rng:
        The solver consumes randomness; ``seed`` is translated to a
        ``numpy`` Generator when no ``rng`` is passed.
    needs_walk_index:
        The solver can exploit a pre-computed :class:`WalkIndex`.
    needs_precomputation:
        The solver requires per-graph preprocessing (BePI's block
        elimination) before it can answer queries.
    index_by_default:
        The :class:`~repro.api.engine.PPREngine` should serve this
        method from its cached walk index unless told otherwise
        (SpeedPPR's eps-independent index makes this free).
    block_fn:
        Optional multi-source adapter
        ``block_fn(graph, sources, **params) -> list[PPRResult]`` that
        answers a whole batch in one block solve (one adjacency scan
        amortised over all sources).  Solvers that register one promise
        the block answers are element-wise identical to per-source
        ``fn`` calls; :meth:`solve_block` falls back to a per-source
        loop when absent.
    """

    name: str
    aliases: tuple[str, ...]
    kind: str
    summary: str
    params: tuple[str, ...]
    fn: Callable[..., PPRResult] = field(repr=False, compare=False, default=None)
    needs_rng: bool = False
    needs_walk_index: bool = False
    needs_precomputation: bool = False
    index_by_default: bool = False
    block_fn: Callable[..., list] | None = field(
        repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        if self.kind not in ("exact", "approx"):
            raise ParameterError(
                f"solver kind must be 'exact' or 'approx', got {self.kind!r}"
            )
        unknown = [p for p in self.params if p not in PARAMS]
        if unknown:
            raise ParameterError(
                f"solver {self.name!r} declares parameters outside the "
                f"unified schema: {unknown}"
            )
        if not callable(self.fn):
            raise ParameterError(
                f"solver {self.name!r} needs a callable fn adapter"
            )

    def accepts(self, param: str) -> bool:
        """Whether ``param`` belongs to this solver's schema."""
        return param in self.params

    def validate_params(self, params: Mapping[str, Any]) -> None:
        """Raise :class:`ParameterError` on names outside the schema."""
        unknown = sorted(set(params) - set(self.params))
        if unknown:
            raise ParameterError(
                f"method {self.name!r} does not accept parameter(s) "
                f"{', '.join(unknown)}; accepted: {', '.join(self.params)}"
            )

    def solve(
        self,
        graph: DiGraph,
        source: int,
        *,
        params: Mapping[str, Any] | None = None,
        **kwargs: Any,
    ) -> PPRResult:
        """Answer one SSPPR query through the unified protocol.

        Parameters may be passed as a mapping, as keywords, or both
        (keywords win).  Unknown parameters raise
        :class:`~repro.errors.ParameterError`; a ``seed`` is converted
        to a fresh ``numpy`` Generator for stochastic solvers.
        """
        merged: dict[str, Any] = dict(params or {})
        merged.update(kwargs)
        self.validate_params(merged)
        seed = merged.pop("seed", None)
        if self.needs_rng and merged.get("rng") is None:
            # With a pre-computed walk index the solver has no live
            # stochastic phase to seed (the index adapter drops the
            # generator before the solver sees it); skip the implicit
            # injection so a seeded ad-hoc index build stays the only
            # consumer.
            if merged.get("walk_index") is None:
                # Explicit seeds resolve through the per-source
                # derivation so registry-direct answers match the
                # engine's and the serving layer's byte-for-byte.
                merged["rng"] = (
                    per_source_rng(seed, source)
                    if seed is not None
                    else np.random.default_rng()
                )
        return self.fn(graph, source, **merged)

    @property
    def supports_block(self) -> bool:
        """Whether a genuinely multi-source ``block_fn`` is registered."""
        return self.block_fn is not None

    def solve_block(
        self,
        graph: DiGraph,
        sources,
        *,
        params: Mapping[str, Any] | None = None,
        **kwargs: Any,
    ) -> list[PPRResult]:
        """Answer one query per source, through the block path if any.

        Results align with ``sources``.  With a registered ``block_fn``
        the whole batch is one block solve; otherwise each source is
        answered by an independent :meth:`solve` — either way the
        answers are element-wise what per-source calls produce, so
        callers can batch opportunistically.
        """
        merged: dict[str, Any] = dict(params or {})
        merged.update(kwargs)
        self.validate_params(merged)
        sources = [int(s) for s in sources]
        if self.block_fn is None:
            return [self.solve(graph, s, params=merged) for s in sources]
        return self.block_fn(graph, sources, **merged)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, SolverSpec] = {}
#: normalised alias -> (canonical name, implied parameter overrides)
_ALIASES: dict[str, tuple[str, dict[str, Any]]] = {}
#: alias spellings as registered, for error messages and listings
_DISPLAY_NAMES: set[str] = set()


def _normalize(name: str) -> str:
    """Case- and separator-insensitive canonical form of a method name."""
    return name.strip().lower().replace("-", "").replace("_", "").replace(" ", "")


def register_solver(
    spec: SolverSpec,
    *,
    variants: Mapping[str, Mapping[str, Any]] | None = None,
) -> SolverSpec:
    """Register ``spec`` under its name, aliases, and variant aliases.

    ``variants`` maps extra aliases to implied parameter overrides,
    e.g. ``{"fora+": {"use_index": True}}``.  Re-registering a taken
    name or alias raises :class:`~repro.errors.ParameterError`.
    """
    if spec.name in _REGISTRY:
        raise ParameterError(f"solver {spec.name!r} is already registered")
    keys = [spec.name, *spec.aliases]
    for alias, overrides in (variants or {}).items():
        keys.append(alias)
    seen: set[str] = set()
    for key in keys:
        norm = _normalize(key)
        if norm in seen:
            raise ParameterError(
                f"solver {spec.name!r} registers the spelling {key!r} twice"
            )
        seen.add(norm)
        if norm in _ALIASES:
            raise ParameterError(
                f"method name {key!r} already registered for "
                f"{_ALIASES[norm][0]!r}"
            )
    _REGISTRY[spec.name] = spec
    _ALIASES[_normalize(spec.name)] = (spec.name, {})
    for alias in spec.aliases:
        _ALIASES[_normalize(alias)] = (spec.name, {})
    for alias, overrides in (variants or {}).items():
        _ALIASES[_normalize(alias)] = (spec.name, dict(overrides))
    _DISPLAY_NAMES.update(key.lower() for key in keys)
    return spec


def resolve_method(name: str) -> tuple[SolverSpec, dict[str, Any]]:
    """Resolve a method name/alias to ``(spec, implied parameters)``.

    Raises :class:`~repro.errors.UnknownMethodError` (listing every
    valid spelling) when nothing matches.
    """
    entry = _ALIASES.get(_normalize(name))
    if entry is None:
        raise UnknownMethodError(name, solver_names(include_aliases=True))
    canonical, implied = entry
    return _REGISTRY[canonical], dict(implied)


def get_solver(name: str) -> SolverSpec:
    """The :class:`SolverSpec` registered under ``name`` (or an alias)."""
    spec, _ = resolve_method(name)
    return spec


def canonical_method_name(name: str) -> str:
    """Normalise any accepted spelling to the canonical method name."""
    spec, _ = resolve_method(name)
    return spec.name


def solver_names(include_aliases: bool = False) -> list[str]:
    """Registered canonical names (plus aliases when asked), sorted.

    Aliases are reported as registered (lower-cased), not in their
    normalised lookup form.
    """
    if not include_aliases:
        return sorted(_REGISTRY)
    return sorted(_DISPLAY_NAMES)


def solver_specs() -> list[SolverSpec]:
    """Every registered spec, sorted by canonical name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def solve(
    graph: DiGraph, source: int, method: str = "powerpush", **params: Any
) -> PPRResult:
    """One-shot dispatch: resolve ``method`` and answer the query.

    Stateless convenience for scripts; query-serving code should hold a
    :class:`~repro.api.engine.PPREngine` so indexes are reused.
    """
    spec, implied = resolve_method(method)
    implied.update(params)
    return spec.solve(graph, source, params=implied)


def solve_block(
    graph: DiGraph,
    sources,
    method: str = "powerpush",
    **params: Any,
) -> list[PPRResult]:
    """One-shot multi-source dispatch (see :meth:`SolverSpec.solve_block`).

    Methods with a registered block kernel (PowerPush) answer the whole
    batch in one block solve; the rest loop — results are element-wise
    identical either way.  Engine users get this automatically through
    :meth:`~repro.api.engine.PPREngine.batch_query`.
    """
    spec, implied = resolve_method(method)
    implied.update(params)
    return spec.solve_block(graph, sources, params=implied)


# ---------------------------------------------------------------------------
# Index builders shared by the registry adapters and the engine
# ---------------------------------------------------------------------------

def build_speedppr_index(
    graph: DiGraph,
    *,
    alpha: float = 0.2,
    rng: np.random.Generator,
) -> WalkIndex:
    """SpeedPPR's eps-independent walk index (``K_v = d_v``)."""
    return build_walk_index(
        graph,
        speedppr_walk_counts(graph),
        alpha=alpha,
        policy="speedppr",
        rng=rng,
    )


def build_fora_index(
    graph: DiGraph,
    epsilon: float,
    *,
    alpha: float = 0.2,
    mu: float | None = None,
    p_fail: float | None = None,
    rng: np.random.Generator,
) -> WalkIndex:
    """FORA+'s eps-dependent walk index, sized for ``epsilon``."""
    if mu is None:
        mu = default_mu(graph.num_nodes)
    if p_fail is None:
        p_fail = default_failure_probability(graph.num_nodes)
    num_walks_w = chernoff_walk_count(epsilon, mu, p_fail=p_fail)
    return build_walk_index(
        graph,
        fora_plus_walk_counts(graph, num_walks_w),
        alpha=alpha,
        policy="fora+",
        rng=rng,
    )


# ---------------------------------------------------------------------------
# Adapters: unified schema -> concrete signatures
# ---------------------------------------------------------------------------

_EXACT_COMMON = ("alpha", "l1_threshold", "dead_end_policy", "trace")

#: Methods whose vectorised inner loops run on a pluggable kernel
#: backend accept ``backend`` (name, instance, or None for the
#: REPRO_PPR_BACKEND/NumPy default).
_BACKEND_PARAM = ("backend",)


def _solve_forward_push(
    graph: DiGraph,
    source: int,
    *,
    alpha: float = 0.2,
    r_max: float | None = None,
    l1_threshold: float | None = None,
    scheduler: str = "fifo",
    dead_end_policy: str = "redirect-to-source",
    max_pushes: int | None = None,
    trace=None,
) -> PPRResult:
    """Scalar Algorithm 1; ``l1_threshold`` maps to ``r_max = lambda/m``."""
    if r_max is None:
        if l1_threshold is None:
            raise ParameterError("fwdpush-scheduled needs r_max or l1_threshold")
        r_max = r_max_for_l1_threshold(graph, l1_threshold)
    elif l1_threshold is not None:
        raise ParameterError("pass exactly one of r_max / l1_threshold")
    return forward_push(
        graph,
        source,
        alpha=alpha,
        r_max=r_max,
        scheduler=scheduler,
        dead_end_policy=dead_end_policy,
        max_pushes=max_pushes,
        trace=trace,
    )


def _solve_sim_fwdpush(graph: DiGraph, source: int, **params) -> PPRResult:
    result = simultaneous_forward_push(graph, source, **params)
    assert isinstance(result, PPRResult)  # record_iterates not in schema
    return result


def _with_optional_index(
    solver: Callable[..., PPRResult],
    index_builder: Callable[..., WalkIndex],
) -> Callable[..., PPRResult]:
    """Wrap an approx solver so ``use_index=True`` builds a missing index.

    Registry-direct calls pay the build every time — the
    :class:`~repro.api.engine.PPREngine` injects its cached index
    instead, which is the whole point of holding an engine.
    """

    def adapter(
        graph: DiGraph,
        source: int,
        *,
        use_index: bool = False,
        walk_index: WalkIndex | None = None,
        **params,
    ) -> PPRResult:
        if use_index and walk_index is None:
            walk_index = index_builder(graph, params)
        if walk_index is not None:
            # The index replaces the live walk phase.  A generator left
            # in the call would arm the solvers' m >= W Monte-Carlo
            # shortcut (gated on ``rng is not None``) and silently
            # bypass the index the caller asked for.
            params.pop("rng", None)
        return solver(graph, source, walk_index=walk_index, **params)

    return adapter


def _speedppr_index_for(graph: DiGraph, params: dict) -> WalkIndex:
    rng = params.get("rng") or np.random.default_rng(0)
    return build_speedppr_index(graph, alpha=params.get("alpha", 0.2), rng=rng)


def _fora_index_for(graph: DiGraph, params: dict) -> WalkIndex:
    rng = params.get("rng") or np.random.default_rng(0)
    return build_fora_index(
        graph,
        params.get("epsilon", 0.5),
        alpha=params.get("alpha", 0.2),
        mu=params.get("mu"),
        p_fail=params.get("p_fail"),
        rng=rng,
    )


def _solve_powerpush_block(
    graph: DiGraph,
    sources,
    *,
    mode: str = "auto",
    trace=None,
    **params,
) -> list[PPRResult]:
    """Block adapter for PowerPush: unified schema -> block signature.

    The block kernels are the vectorised implementation, so the
    faithful scalar mode cannot be batched; traces are per-solve state
    and are likewise unsupported — callers wanting either fall back to
    per-source solves (the engine's ``batch_query`` does this
    automatically).
    """
    if mode not in ("auto", "vectorized"):
        raise ParameterError(
            f"power_push_block is vectorised-only; mode {mode!r} is not "
            f"batchable (run per-source solves instead)"
        )
    if trace is not None:
        raise ParameterError(
            "power_push_block does not support convergence traces; run "
            "per-source solves to trace"
        )
    return power_push_block(graph, sources, **params)


def _solve_bepi(
    graph: DiGraph,
    source: int,
    *,
    alpha: float = 0.2,
    bepi_index=None,
    delta: float = 1e-8,
    l1_threshold: float | None = None,
    max_inner_iterations: int = 10_000,
) -> PPRResult:
    """BePI; builds the block-elimination index ad hoc when not given.

    ``l1_threshold`` is accepted as a synonym for ``delta`` so exact
    methods can be swapped freely (the paper notes BePI's Delta is
    *not* a true l1 bound — the harness measures that separately).
    """
    if l1_threshold is not None:
        delta = l1_threshold
    if bepi_index is None:
        bepi_index = build_bepi_index(graph, alpha=alpha)
    return bepi_query(
        graph,
        bepi_index,
        source,
        delta=delta,
        max_inner_iterations=max_inner_iterations,
    )


# ---------------------------------------------------------------------------
# Built-in registrations
# ---------------------------------------------------------------------------

_APPROX_COMMON = (
    "alpha",
    "epsilon",
    "mu",
    "p_fail",
    "seed",
    "rng",
    "dead_end_policy",
)


def _register_builtin_solvers() -> None:
    register_solver(
        SolverSpec(
            name="powerpush",
            aliases=("pp", "algo3"),
            kind="exact",
            summary="PowerPush (Algorithm 3): power iteration with forward push",
            params=(*_EXACT_COMMON, *_BACKEND_PARAM, "config", "mode"),
            fn=power_push,
            block_fn=_solve_powerpush_block,
        )
    )
    register_solver(
        SolverSpec(
            name="powitr",
            aliases=("power-iteration", "powiter", "pi"),
            kind="exact",
            summary="Power Iteration: the global O(m log(1/lambda)) baseline",
            params=(*_EXACT_COMMON, *_BACKEND_PARAM, "max_iterations"),
            fn=power_iteration,
        )
    )
    register_solver(
        SolverSpec(
            name="fifo-fwdpush",
            aliases=("fwdpush", "forward-push", "fifo", "algo2"),
            kind="exact",
            summary="FIFO Forward Push (Algorithm 2): the analysed local method",
            params=(*_EXACT_COMMON, *_BACKEND_PARAM, "r_max", "mode", "max_sweeps"),
            fn=fifo_forward_push,
        )
    )
    register_solver(
        SolverSpec(
            name="fwdpush-scheduled",
            aliases=("scalar-fwdpush", "algo1"),
            kind="exact",
            summary="Scalar Forward Push (Algorithm 1) with pluggable scheduling",
            params=(*_EXACT_COMMON, "r_max", "scheduler", "max_pushes"),
            fn=_solve_forward_push,
        )
    )
    register_solver(
        SolverSpec(
            name="simfwdpush",
            aliases=("simultaneous-fwdpush", "sim"),
            kind="exact",
            summary="Simultaneous Forward Push: the PowItr-equivalent variant",
            params=(*_EXACT_COMMON, *_BACKEND_PARAM, "max_iterations"),
            fn=_solve_sim_fwdpush,
        )
    )
    register_solver(
        SolverSpec(
            name="bepi",
            aliases=("block-elimination", "blockelim"),
            kind="exact",
            summary="BePI: hub-and-spoke block elimination with a prebuilt index",
            params=(
                "alpha",
                "bepi_index",
                "delta",
                "l1_threshold",
                "max_inner_iterations",
            ),
            fn=_solve_bepi,
            needs_precomputation=True,
        )
    )
    register_solver(
        SolverSpec(
            name="speedppr",
            aliases=("algo4",),
            kind="approx",
            summary="SpeedPPR (Algorithm 4): PowerPush phase + eps-independent index",
            params=(
                *_APPROX_COMMON,
                *_BACKEND_PARAM,
                "walk_index",
                "use_index",
                "config",
                "allow_monte_carlo_shortcut",
            ),
            fn=_with_optional_index(speed_ppr, _speedppr_index_for),
            needs_rng=True,
            needs_walk_index=True,
            index_by_default=True,
        ),
        variants={"speedppr-index": {"use_index": True}},
    )
    register_solver(
        SolverSpec(
            name="fora",
            aliases=(),
            kind="approx",
            summary="FORA: forward push + Monte-Carlo refinement (FORA+ with index)",
            params=(
                *_APPROX_COMMON,
                "walk_index",
                "use_index",
                "push_mode",
                "allow_monte_carlo_shortcut",
            ),
            fn=_with_optional_index(fora, _fora_index_for),
            needs_rng=True,
            needs_walk_index=True,
        ),
        variants={
            "fora+": {"use_index": True},
            "fora-index": {"use_index": True},
        },
    )
    register_solver(
        SolverSpec(
            name="resacc",
            aliases=(),
            kind="approx",
            summary="ResAcc: FORA with source-residue accumulation",
            params=(*_APPROX_COMMON, "walk_index", "use_index", "max_sweeps"),
            fn=_with_optional_index(resacc, _fora_index_for),
            needs_rng=True,
            needs_walk_index=True,
        ),
    )
    register_solver(
        SolverSpec(
            name="montecarlo",
            aliases=("mc",),
            kind="approx",
            summary="Plain Monte-Carlo: W alpha-walks from the source",
            params=("alpha", "epsilon", "mu", "p_fail", "num_walks", "seed", "rng"),
            fn=monte_carlo_ppr,
            needs_rng=True,
        )
    )


_register_builtin_solvers()
