"""Stateful query-serving facade: one :class:`PPREngine` per graph.

The ROADMAP's production framing — heavy query traffic against one
graph — means the expensive per-graph artefacts must outlive a single
query: SpeedPPR's eps-independent walk index, FORA+'s per-eps indexes,
and BePI's block-elimination factorisation.  ``PPREngine`` owns those
caches and lazily builds each one the first time a query needs it::

    >>> engine = PPREngine(graph, alpha=0.2, seed=7)
    >>> engine.query(0, method="powerpush", l1_threshold=1e-8)
    >>> engine.query(0, method="speedppr", epsilon=0.3)   # builds index
    >>> engine.query(1, method="speedppr", epsilon=0.1)   # reuses it

Every method name accepted by the solver registry works, including
aliases; ``engine.batch_query`` answers many sources with shared
indexes (and a genuinely multi-source vectorised path for
Monte-Carlo); ``engine.top_k`` adds certified top-k answers; and
``engine.stats`` aggregates instrumentation across the engine's
lifetime.  ``index_builds`` counts how often each index kind was
constructed, so tests (and operators) can assert reuse.

Evolving graphs
---------------
An engine built on a :class:`~repro.graph.dynamic.DynamicGraph` serves
the same API against a graph that changes under it.  Every cached
artefact is stamped with the graph version it was built at; after
``engine.apply_updates(edges)`` the stale artefacts are dropped on the
next query (``index_invalidations`` counts them), so no query is ever
served from an index of a previous graph version.  Sources registered
with ``engine.track(source)`` keep a
:class:`~repro.core.incremental.IncrementalPPR` pair that is
*repaired* instead of rebuilt — ``engine.query(s, method="incremental")``
replays pending updates with degree-scaled residue corrections and
re-certifies, at a cost governed by the perturbation.

Warm starts
-----------
``save_indexes(dir)`` / ``load_indexes(dir)`` persist the walk-based
indexes (via :mod:`repro.walks.storage`) together with a manifest
recording the graph's shape and version; loading refuses stale or
mismatched artefacts, so a restarted server either skips preprocessing
safely or rebuilds.

Thread safety
-------------
Concurrent *queries* against one engine are safe: an internal re-entrant
lock serialises every mutation of engine state (cache invalidation,
stats, the query counter) while the solver bodies — pure functions of
the graph snapshot and the injected artefacts — run outside it, and
lazy index builds are double-checked so even a multi-second
construction never blocks queries of other methods: readers genuinely
overlap.  The exception is ``method="incremental"``, whose tracker
repair mutates shared state and therefore holds the lock for the whole
refresh — incremental refreshes serialise against everything.  Mixing
queries with ``apply_updates`` from different threads additionally
needs the *graph* transition serialised against in-flight reads; use
:class:`repro.serving.EngineServer`, which wraps the engine in a
readers-writer lock (plus a versioned result cache and a micro-batching
scheduler), instead of hand-rolling that.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.shm import SharedGraphHandle, SharedGraphImage

import numpy as np

from repro.api.registry import (
    SolverSpec,
    _normalize,
    build_fora_index,
    build_speedppr_index,
    per_source_rng,
    resolve_method,
)
from repro.backends import KernelBackend, resolve_backend
from repro.bepi.blockelim import BePIIndex, build_bepi_index
from repro.core.incremental import IncrementalPPR
from repro.core.result import PPRResult
from repro.core.topk import TopKResult, top_k_ppr
from repro.core.validation import check_source
from repro.durability.atomic import atomic_write_json
from repro.errors import IndexMismatchError, ParameterError
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import DynamicGraph
from repro.graph.transforms import ReorderResult, reorder_for_locality
from repro.instrumentation.counters import PushCounters
from repro.montecarlo.chernoff import (
    chernoff_walk_count,
    default_failure_probability,
    default_mu,
)
from repro.walks.engine import simulate_walk_stops
from repro.walks.index import WalkIndex
from repro.walks.storage import load_walk_index, save_walk_index

__all__ = [
    "PPREngine",
    "EngineStats",
    "MethodStats",
    "INCREMENTAL_METHOD_NAMES",
    "INCREMENTAL_METHOD_PARAMS",
    "is_incremental_method",
    "validate_incremental_params",
    "per_source_rng",
]

#: Accepted spellings of the engine-level incremental method (not in
#: the solver registry — it needs per-engine tracker state).  Canonical
#: name first; the CLI's ``methods`` listing derives its aliases from
#: this tuple, so there is exactly one place to extend.
INCREMENTAL_METHOD_NAMES: tuple[str, ...] = (
    "incremental",
    "tracked",
    "incremental-ppr",
)
_INCREMENTAL_NAMES = frozenset(
    _normalize(name) for name in INCREMENTAL_METHOD_NAMES
)

#: Parameters the incremental method accepts (the CLI listing prints
#: these, so keep them in one place like the names above).
INCREMENTAL_METHOD_PARAMS: tuple[str, ...] = ("l1_threshold", "trace")


def is_incremental_method(name: str) -> bool:
    """Whether ``name`` spells the engine-level incremental method.

    Uses the registry's normalisation, so every separator variant the
    registry accepts (``incremental-ppr``, ``incremental ppr`` …) is
    recognised here too.
    """
    return _normalize(name) in _INCREMENTAL_NAMES


def validate_incremental_params(params: Mapping[str, Any]) -> None:
    """Reject parameters outside :data:`INCREMENTAL_METHOD_PARAMS`.

    The single validation point for the engine-level incremental
    method — the engine's query path and the serving layer's submit
    path both call it, so the accepted set (and the error message)
    cannot drift apart.
    """
    unknown = sorted(set(params) - set(INCREMENTAL_METHOD_PARAMS))
    if unknown:
        raise ParameterError(
            f"method 'incremental' does not accept parameter(s) "
            f"{', '.join(unknown)}; accepted: "
            f"{', '.join(sorted(INCREMENTAL_METHOD_PARAMS))}"
        )

#: File name of the index-persistence manifest written by save_indexes.
_MANIFEST_NAME = "manifest.json"
# Format 2 added per-artifact SHA-256 checksums (load_indexes refuses
# truncated or bit-rotted index files instead of trusting stamps).
_MANIFEST_FORMAT = 2


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _graph_fingerprint(graph: DiGraph) -> str:
    """Content hash of a CSR snapshot — the staleness stamp for indexes.

    Hashing the actual adjacency arrays (not a session-local version
    counter) means a server restarted on the same persisted graph can
    warm-start, while an index saved for *any* other graph — including
    a same-shaped one — is refused.
    """
    digest = hashlib.sha256()
    digest.update(np.int64(graph.num_nodes).tobytes())
    digest.update(np.ascontiguousarray(graph.out_indptr).tobytes())
    digest.update(np.ascontiguousarray(graph.out_indices).tobytes())
    return digest.hexdigest()

#: rng-stream salts; chosen to match the historical Workspace streams so
#: experiment artefacts are bit-identical across the refactor.
_WALK_INDEX_SALT = 1
_FORA_INDEX_SALT = 2
_QUERY_SALT_BASE = 10_000

#: peak walks materialised at once by the vectorised Monte-Carlo batch
_BATCH_WALK_BUDGET = 1 << 24


@dataclass
class MethodStats:
    """Aggregate instrumentation for one method on one engine."""

    queries: int = 0
    seconds: float = 0.0
    counters: PushCounters = field(default_factory=PushCounters)

    def record(self, result: PPRResult) -> None:
        self.queries += 1
        self.seconds += result.seconds
        self.counters.merge(result.counters)


@dataclass
class EngineStats:
    """Per-engine aggregation of query instrumentation."""

    queries: int = 0
    seconds: float = 0.0
    by_method: dict[str, MethodStats] = field(default_factory=dict)

    def record(self, result: PPRResult) -> None:
        self.queries += 1
        self.seconds += result.seconds
        per_method = self.by_method.setdefault(result.method, MethodStats())
        per_method.record(result)

    def render(self) -> str:
        """Plain-text summary, one line per method."""
        lines = [f"{self.queries} queries, {self.seconds:.4f}s total"]
        for method in sorted(self.by_method):
            stats = self.by_method[method]
            lines.append(
                f"  {method}: {stats.queries} queries, "
                f"{stats.seconds:.4f}s, "
                f"{stats.counters.residue_updates} residue updates, "
                f"{stats.counters.random_walks} walks"
            )
        return "\n".join(lines)


class PPREngine:
    """Answer SSPPR queries against one graph with cached indexes.

    Parameters
    ----------
    graph:
        The graph all queries run against — an immutable
        :class:`~repro.graph.digraph.DiGraph`, or a
        :class:`~repro.graph.dynamic.DynamicGraph` to serve an
        evolving graph (enables ``apply_updates`` / ``track``).
    alpha:
        Default teleport probability for every query (overridable
        per query).
    seed:
        Base seed: index construction and the per-query generators of
        stochastic methods derive from it deterministically, so an
        engine replays exactly given the same call sequence.
    dead_end_policy:
        Default dead-end rule for solvers that accept one.
    walk_index, bepi_index:
        Optionally adopt pre-built indexes instead of building lazily.
    backend:
        Kernel backend injected into every query of a backend-capable
        method (PowerPush and friends): a registered name
        (``"numpy"``/``"numba"``) or a
        :class:`~repro.backends.KernelBackend` instance.  ``None``
        leaves the choice to each solver's own resolution (the
        ``REPRO_PPR_BACKEND`` environment variable, defaulting to the
        NumPy reference) — so explicit-constructor > env var > default.
        Resolution happens here, so an unknown name fails fast and a
        missing ``numba`` warns once at engine construction.
    reorder:
        Cache-aware node reordering: ``"degree"`` or ``"slashburn"``
        (see :func:`repro.graph.transforms.reorder_for_locality`), or
        a pre-computed :class:`~repro.graph.transforms.ReorderResult`.
        The engine then runs every query on the relabelled graph —
        whose CSR the kernels walk with better cache locality — and
        transparently maps sources in and permutes estimates/rankings
        back, so callers keep using original node ids throughout.
        Per-source RNG streams stay keyed on the *original* ids, so
        seeded answers remain a pure function of ``(seed, source)``.
        Only static graphs can be reordered (a
        :class:`DynamicGraph`'s labels must stay stable under
        updates); answers match the unreordered engine's to float
        re-association (~1e-12), not byte-for-byte.
    """

    def __init__(
        self,
        graph: DiGraph | DynamicGraph,
        *,
        alpha: float = 0.2,
        seed: int = 0,
        dead_end_policy: str = "redirect-to-source",
        walk_index: WalkIndex | None = None,
        bepi_index: BePIIndex | None = None,
        backend: str | KernelBackend | None = None,
        reorder: str | ReorderResult | None = None,
    ) -> None:
        self._reorder: ReorderResult | None = None
        if reorder is not None:
            if isinstance(graph, DynamicGraph):
                raise ParameterError(
                    "reordering needs stable node labels; serve a "
                    "DynamicGraph without reorder= (or snapshot() it into "
                    "an immutable DiGraph first)"
                )
            if isinstance(reorder, ReorderResult):
                self._reorder = reorder
            else:
                self._reorder = reorder_for_locality(graph, strategy=reorder)
            graph = self._reorder.graph
        #: resolved kernel backend, or None to defer to the env default
        self.backend: KernelBackend | None = (
            resolve_backend(backend) if backend is not None else None
        )
        if isinstance(graph, DynamicGraph):
            self._dynamic: DynamicGraph | None = graph
            self._static_graph: DiGraph | None = None
        else:
            self._dynamic = None
            self._static_graph = graph
        self.alpha = alpha
        self.seed = seed
        self.dead_end_policy = dead_end_policy
        self._walk_index = walk_index
        self._bepi_index = bepi_index
        #: (walk budget W, index, graph version built at), insertion order
        self._fora_indexes: list[tuple[int, WalkIndex, int]] = []
        #: graph version each singleton artefact was built/adopted at
        self._artefact_versions = {
            "walk": self.graph_version,
            "bepi": self.graph_version,
        }
        #: how many times each index kind was built (tests assert reuse)
        self.index_builds: dict[str, int] = {"walk": 0, "bepi": 0, "fora": 0}
        #: stale artefacts dropped after graph-version changes
        self.index_invalidations: dict[str, int] = {
            "walk": 0,
            "bepi": 0,
            "fora": 0,
        }
        self._trackers: dict[int, IncrementalPPR] = {}
        self.stats = EngineStats()
        #: batches answered by a multi-source block solve (tests and
        #: the serving layer assert coalesced windows land here)
        self.block_batches = 0
        self._query_counter = 0
        #: serialises every mutation of engine state (index caches,
        #: trackers, stats, counter) so concurrent queries are safe;
        #: re-entrant because index accessors nest under query().
        self._lock = threading.RLock()
        #: optional DurabilityManager flushed before apply_updates acks
        self._durability: Any | None = None

    @classmethod
    def from_shared_graph(
        cls,
        image_or_handle: "SharedGraphImage | SharedGraphHandle",
        *,
        dynamic: bool = False,
        initial_version: int = 0,
        **engine_kwargs: Any,
    ) -> "PPREngine":
        """Build an engine over a shared-memory graph image.

        ``image_or_handle`` is either an already-attached
        :class:`~repro.serving.shm.SharedGraphImage` or a picklable
        :class:`~repro.serving.shm.SharedGraphHandle` received from the
        exporting process (it is attached here).  The engine's CSR
        arrays and push caches alias the shared segment — construction
        copies nothing, so N worker processes serve one physical graph
        image.

        ``dynamic=True`` wraps the shared base in a
        :class:`DynamicGraph` so the engine accepts ``apply_updates``;
        updates overlay copy-on-write in this process only (the shared
        base stays immutable), which is exactly what the sharded
        update barrier needs: every worker applies the same batches
        and converges to the same versioned logical graph.

        The image backing the engine is exposed as
        :attr:`shared_image` and must stay open (and be closed by its
        owner) for the engine's lifetime; ``reorder=`` is rejected
        because relabelling would copy the graph and break the
        cross-process placement-independence contract.
        """
        from repro.serving.shm import SharedGraphHandle, SharedGraphImage

        if engine_kwargs.get("reorder") is not None:
            raise ParameterError(
                "reorder= cannot be combined with a shared graph image: "
                "relabelling copies the CSR, defeating zero-copy sharing"
            )
        if isinstance(image_or_handle, SharedGraphHandle):
            image = SharedGraphImage.attach(image_or_handle)
        elif isinstance(image_or_handle, SharedGraphImage):
            image = image_or_handle
        else:
            raise ParameterError(
                "from_shared_graph needs a SharedGraphImage or "
                f"SharedGraphHandle; got {type(image_or_handle).__name__}"
            )
        graph: DiGraph | DynamicGraph = image.graph()
        if dynamic:
            # A nonzero initial_version means the shared base is a
            # recovered snapshot: version numbering (and therefore
            # cache invalidation and update-barrier agreement) must
            # continue from where the durable state left off.
            graph = DynamicGraph(graph, initial_version=initial_version)
        elif initial_version:
            raise ParameterError(
                "initial_version requires dynamic=True (a static shared "
                "graph has no version counter to restore)"
            )
        engine = cls(graph, **engine_kwargs)
        engine._shared_image = image
        return engine

    @property
    def shared_image(self) -> "SharedGraphImage | None":
        """The shared-memory image this engine serves from, if any."""
        return getattr(self, "_shared_image", None)

    # -- graph versioning ----------------------------------------------
    @property
    def graph(self) -> DiGraph:
        """The current immutable snapshot all queries run against.

        Locked: materialising a :class:`DynamicGraph` snapshot reads
        the overlay buffers that ``apply_updates`` mutates, so an
        unlocked read racing a writer could tear — the engine lock
        serialises the two (``apply_updates`` holds it too).
        """
        if self._dynamic is not None:
            with self._lock:
                return self._dynamic.snapshot()
        assert self._static_graph is not None
        return self._static_graph

    @property
    def graph_version(self) -> int:
        """Version of the served graph (always 0 for a static graph)."""
        return self._dynamic.version if self._dynamic is not None else 0

    @property
    def dynamic_graph(self) -> DynamicGraph | None:
        """The underlying :class:`DynamicGraph`, or None when static."""
        return self._dynamic

    def apply_updates(self, updates: Iterable[tuple[str, int, int]]) -> int:
        """Apply ``(op, u, v)`` edge updates; return the new graph version.

        Cached artefacts built at older versions are invalidated (or,
        for tracked sources, incrementally repaired) lazily on the next
        query that needs them.  Requires the engine to have been built
        on a :class:`DynamicGraph`.

        The engine assumes it owns its dynamic graph's journal: it
        trims replayed entries behind its own trackers' progress.  An
        :class:`IncrementalPPR` created *outside* this engine on the
        same graph stays correct but may lose its incremental
        advantage (trimmed entries force it to resync from a
        snapshot) — route trackers through :meth:`track` instead.
        """
        if self._dynamic is None:
            raise ParameterError(
                "engine serves an immutable DiGraph; construct it with a "
                "repro.graph.DynamicGraph to apply updates"
            )
        with self._lock:
            version = self._dynamic.apply_updates(updates)
            if self._durability is not None:
                # fsync-before-ack: the batch must be durable in the
                # WAL before any caller sees its version.
                self._durability.flush()
            if not self._trackers:
                # No tracker will ever replay these entries (a future
                # track() starts from the then-current version).
                self._dynamic.trim_journal(version)
            return version

    def attach_durability(self, manager: Any) -> None:
        """Make ``apply_updates`` durable: flush ``manager``'s WAL
        before returning the acknowledged version.

        ``manager`` is a
        :class:`~repro.durability.manager.DurabilityManager` already
        attached (via bootstrap or recovery) to this engine's
        :class:`DynamicGraph`; it is duck-typed here to keep
        :mod:`repro.api` import-light.  The manager is also pointed
        back at this engine so checkpoints persist the built indexes.
        """
        if self._dynamic is None:
            raise ParameterError(
                "durability needs a DynamicGraph-backed engine"
            )
        if getattr(manager, "graph", None) is not self._dynamic:
            raise ParameterError(
                "the DurabilityManager must be attached to this engine's "
                "own DynamicGraph (bootstrap or recover it first)"
            )
        with self._lock:
            self._durability = manager
            manager.attach_engine(self)

    @property
    def durability(self) -> Any | None:
        """The attached DurabilityManager, or None when volatile."""
        return self._durability

    def track(
        self, source: int, *, l1_threshold: float = 1e-8
    ) -> IncrementalPPR:
        """Maintain the PPR vector of ``source`` across graph updates.

        The initial from-scratch solve happens here; afterwards
        ``query(source, method="incremental")`` repairs the tracked
        pair instead of re-solving.  Re-tracking an already tracked
        source returns the existing tracker; asking for a *different*
        ``l1_threshold`` than the existing tracker's raises (call
        :meth:`untrack` first to change the contract).
        """
        if self._dynamic is None:
            raise ParameterError(
                "tracking needs an evolving graph; construct the engine "
                "with a repro.graph.DynamicGraph"
            )
        source = int(source)
        with self._lock:
            tracker = self._trackers.get(source)
            if tracker is not None:
                if l1_threshold != tracker.l1_threshold:
                    raise ParameterError(
                        f"source {source} is already tracked at "
                        f"l1_threshold={tracker.l1_threshold}; untrack() it "
                        f"to change the contract"
                    )
                return tracker
            tracker = IncrementalPPR(
                self._dynamic,
                source,
                alpha=self.alpha,
                l1_threshold=l1_threshold,
            )
            self._trackers[source] = tracker
            return tracker

    def untrack(self, source: int) -> None:
        """Stop maintaining ``source``; no-op when it was not tracked."""
        with self._lock:
            self._trackers.pop(int(source), None)

    @property
    def tracked_sources(self) -> tuple[int, ...]:
        """Sources currently maintained incrementally, ascending."""
        return tuple(sorted(self._trackers))

    # -- reordered serving ---------------------------------------------
    @property
    def reordering(self) -> ReorderResult | None:
        """The active cache-aware reordering, or None.

        When set, :attr:`graph` is the relabelled graph the kernels
        actually walk; the query API keeps speaking original node ids
        (sources mapped in, estimates/rankings permuted back).
        """
        return self._reorder

    def _internal_source(self, source: int) -> int:
        """Map a caller-facing source id into the served graph."""
        source = int(source)
        if self._reorder is None:
            return source
        # Node counts agree, so validating against the served snapshot
        # validates the caller's id too.
        check_source(self.graph, source)
        return self._reorder.to_internal(source)

    def _externalize_result(self, result: PPRResult, source: int) -> PPRResult:
        """Permute a solve's vectors back to original node ids."""
        if self._reorder is None:
            return result
        result.estimate = self._reorder.restore_vector(result.estimate)
        if result.residue is not None:
            result.residue = self._reorder.restore_vector(result.residue)
        result.source = int(source)
        return result

    def _sync_caches(self) -> None:
        """Drop artefacts built at a graph version older than current."""
        version = self.graph_version
        if (
            self._walk_index is not None
            and self._artefact_versions["walk"] != version
        ):
            self._walk_index = None
            self.index_invalidations["walk"] += 1
        if (
            self._bepi_index is not None
            and self._artefact_versions["bepi"] != version
        ):
            self._bepi_index = None
            self.index_invalidations["bepi"] += 1
        if self._fora_indexes:
            fresh = [e for e in self._fora_indexes if e[2] == version]
            self.index_invalidations["fora"] += len(self._fora_indexes) - len(
                fresh
            )
            self._fora_indexes = fresh

    # -- cached per-graph artefacts ------------------------------------
    def rng(self, salt: int = 0) -> np.random.Generator:
        """Deterministic generator derived from the engine seed."""
        return np.random.default_rng(self.seed * 1_000_003 + salt)

    def walk_index(self) -> WalkIndex:
        """SpeedPPR's eps-independent walk index (built once, cached).

        The build itself runs *outside* the engine lock (double-checked
        on re-entry), so a multi-second index construction never stalls
        concurrent queries of other methods.  Duplicate concurrent
        builds are harmless: both consume the same deterministic stream
        (``rng(_WALK_INDEX_SALT)``), so whichever lands is identical.
        """
        while True:
            with self._lock:
                self._sync_caches()
                if self._walk_index is not None:
                    return self._walk_index
                version = self.graph_version
                graph = self.graph
            built = build_speedppr_index(
                graph, alpha=self.alpha, rng=self.rng(_WALK_INDEX_SALT)
            )
            with self._lock:
                self._sync_caches()
                if self.graph_version != version:
                    continue  # graph moved mid-build; rebuild fresh
                if self._walk_index is None:
                    self._walk_index = built
                    self._artefact_versions["walk"] = version
                    self.index_builds["walk"] += 1
                return self._walk_index

    def bepi_index(self) -> BePIIndex:
        """BePI's block-elimination preprocessing (built once, cached).

        Built outside the engine lock like :meth:`walk_index` (the
        factorisation is the single most expensive artefact).
        """
        while True:
            with self._lock:
                self._sync_caches()
                if self._bepi_index is not None:
                    return self._bepi_index
                version = self.graph_version
                graph = self.graph
            built = build_bepi_index(graph, alpha=self.alpha)
            with self._lock:
                self._sync_caches()
                if self.graph_version != version:
                    continue
                if self._bepi_index is None:
                    self._bepi_index = built
                    self._artefact_versions["bepi"] = version
                    self.index_builds["bepi"] += 1
                return self._bepi_index

    def fora_index(
        self,
        epsilon: float,
        *,
        mu: float | None = None,
        p_fail: float | None = None,
        exact: bool = False,
    ) -> WalkIndex:
        """FORA+'s contract-dependent index (cached by walk budget W).

        The index an ``(epsilon, mu, p_fail)`` contract needs is fully
        determined by its Chernoff walk budget ``W``, and an index
        built for ``W1 >= W2`` also serves ``W2`` (per-node counts are
        monotone in ``W``).  The cache therefore keys on ``W``: a query
        reuses the smallest sufficient index already built — so the
        paper's protocol of building at the smallest eps and reusing
        for larger ones falls out, and a tighter ``mu``/``p_fail``
        correctly triggers a fresh, larger build instead of being
        handed an undersized index.

        ``exact=True`` only reuses an index built for exactly this
        budget — for measurements (Table 2) that must report the size
        of *this* contract's index, not a larger one that happens to
        serve it.
        """
        # The node count is fixed for an engine's lifetime, so the
        # contract arithmetic needs no lock.
        if mu is None:
            mu = default_mu(self.graph.num_nodes)
        if p_fail is None:
            p_fail = default_failure_probability(self.graph.num_nodes)
        needed_w = chernoff_walk_count(epsilon, mu, p_fail=p_fail)

        def _scan() -> WalkIndex | None:
            best: tuple[int, WalkIndex] | None = None
            for built_w, index, _version in self._fora_indexes:
                sufficient = (
                    built_w == needed_w if exact else built_w >= needed_w
                )
                if sufficient and (best is None or built_w < best[0]):
                    best = (built_w, index)
            return None if best is None else best[1]

        # Build outside the lock, double-checked, like walk_index().
        while True:
            with self._lock:
                self._sync_caches()
                cached = _scan()
                if cached is not None:
                    return cached
                version = self.graph_version
                graph = self.graph
            index = build_fora_index(
                graph,
                epsilon,
                alpha=self.alpha,
                mu=mu,
                p_fail=p_fail,
                rng=self.rng(_FORA_INDEX_SALT),
            )
            with self._lock:
                self._sync_caches()
                if self.graph_version != version:
                    continue
                concurrent = _scan()
                if concurrent is not None:
                    return concurrent  # identical stream, identical index
                self._fora_indexes.append((needed_w, index, version))
                self.index_builds["fora"] += 1
                return index

    # -- query front door ----------------------------------------------
    def query(
        self, source: int, method: str = "powerpush", **params: Any
    ) -> PPRResult:
        """Answer one SSPPR query through the registry.

        Accepts any registered method name or alias plus that method's
        unified parameters.  Engine-level extras:

        * ``seed=<int>`` pins the stochastic phase to the stream
          :func:`per_source_rng` derives from ``(seed, source)`` — the
          same derivation seeded batches and the serving layer use, so
          ``query(s, m, seed=S)`` is byte-identical to the ``s`` member
          of any seeded batch (otherwise a fresh deterministic stream
          per query is derived from the engine seed);
        * ``use_index=False`` forces index-capable methods to run
          index-free; methods flagged ``index_by_default`` (SpeedPPR)
          are served from the cached walk index automatically.

        ``method="incremental"`` (engine-level, not in the registry)
        serves a tracked source from its maintained ``(p, r)`` pair,
        repairing it first when graph updates are pending; the source
        is tracked automatically on first use.
        """
        if is_incremental_method(method):
            return self._query_incremental(source, params)
        spec, merged = resolve_method(method)
        merged.update(params)
        # Fail on typo'd names before _prepare builds (and caches) any
        # expensive index on their behalf.
        spec.validate_params(merged)
        # Only the counter bump and cache sync hold the lock; parameter
        # preparation (which may trigger a lazy index build — itself
        # double-checked, built unlocked) and the solve run outside it,
        # so concurrent readers genuinely overlap.
        internal_source = self._internal_source(source)
        with self._lock:
            self._sync_caches()
            self._query_counter += 1
            counter = self._query_counter
        # Engine defaults (and seeded RNG streams) key on the caller's
        # source id; only the solve itself runs in internal ids.
        self._prepare(spec, merged, counter, source)
        result = spec.solve(self.graph, internal_source, params=merged)
        result = self._externalize_result(result, source)
        with self._lock:
            self.stats.record(result)
        return result

    def batch_query(
        self,
        sources: Iterable[int],
        method: str = "powerpush",
        *,
        block: bool | None = None,
        **params: Any,
    ) -> list[PPRResult]:
        """Answer one query per source, in order, with shared state.

        Results align with ``sources`` (``results[i].source ==
        sources[i]``).  Any required index is built once up front and
        shared.  Genuinely multi-source paths are picked automatically:
        methods with a registered block kernel (PowerPush) answer two
        or more sources in **one block solve** — a single adjacency
        scan amortised over the whole batch, with every row
        element-wise identical to its independent solve — and plain
        Monte-Carlo runs all sources' walks through one vectorised
        simulation when the graph allows it.  Everything else loops.

        ``block`` overrides the block auto-selection: ``False`` forces
        the per-source loop (benchmarks use this as the baseline),
        ``True`` insists on the block path and raises
        :class:`~repro.errors.ParameterError` when the method has no
        block kernel or the parameters (faithful mode, traces) cannot
        be batched.

        A single ``seed`` must not replay the same walk stream for
        every source, so seeded batches give each source the stream
        :func:`per_source_rng` derives from ``(seed, source)`` — the
        same derivation ``query`` applies to an explicit seed.  Keying
        on the source *id* (not the batch position) makes seeded batch
        answers a pure function of ``(seed, source)``: permuting the
        batch, splitting it, or answering a member sequentially via
        ``query(s, method, seed=seed)`` all produce byte-identical
        estimates — the contract the serving layer's request coalescing
        relies on.  (Corollary: the same source listed twice in one
        seeded batch gets the same answer twice; vary the seed for
        independent samples.)
        """
        sources = [int(s) for s in sources]
        if is_incremental_method(method):
            if block:
                raise ParameterError(
                    "method 'incremental' repairs per-engine tracker state "
                    "and has no block solver"
                )
            return [
                self.query(source, method, **params) for source in sources
            ]
        spec, merged = resolve_method(method)
        merged.update(params)
        spec.validate_params(merged)
        # Monte-Carlo's vectorised multi-source simulation is its block
        # path in spirit: block=False forces the per-source loop here
        # too, and block=True falls through to the supports_block check
        # below (montecarlo registers no block kernel), so the override
        # behaves identically regardless of batch composition.
        if (
            block is None
            and spec.name == "montecarlo"
            and not self.graph.has_dead_ends
            and merged.get("rng") is None
            and len(sources) > 1
        ):
            return self._batch_monte_carlo(sources, merged)
        batchable = self._block_batchable(merged)
        if block is None:
            block = (
                spec.supports_block and len(sources) >= 2 and batchable
            )
        elif block:
            if not spec.supports_block:
                raise ParameterError(
                    f"method {spec.name!r} has no block solver; drop "
                    f"block=True to loop per source"
                )
            if not batchable:
                raise ParameterError(
                    "these parameters cannot be batched (the block solver "
                    "is vectorised-only and does not record traces); drop "
                    "block=True to loop per source"
                )
        if block:
            return self._batch_block(sources, spec, merged)
        # query() itself resolves an explicit seed through
        # per_source_rng, so looping preserves the per-source streams.
        return [self.query(source, method, **merged) for source in sources]

    @staticmethod
    def _block_batchable(merged: Mapping[str, Any]) -> bool:
        """Whether a request's parameters can ride a block solve.

        The block kernels are the vectorised implementation and carry
        no per-solve trace state, so faithful-mode and traced requests
        must loop.
        """
        return (
            merged.get("mode", "auto") in ("auto", "vectorized")
            and merged.get("trace") is None
        )

    def _batch_block(
        self,
        sources: Sequence[int],
        spec: SolverSpec,
        merged: dict[str, Any],
    ) -> list[PPRResult]:
        """Answer a whole batch through the method's block kernel."""
        if spec.accepts("alpha"):
            merged.setdefault("alpha", self.alpha)
        if spec.accepts("dead_end_policy"):
            merged.setdefault("dead_end_policy", self.dead_end_policy)
        if spec.accepts("backend") and self.backend is not None:
            merged.setdefault("backend", self.backend)
        internal = [self._internal_source(s) for s in sources]
        with self._lock:
            self._sync_caches()
            self._query_counter += 1
            self.block_batches += 1
        results = spec.solve_block(self.graph, internal, params=merged)
        results = [
            self._externalize_result(result, source)
            for result, source in zip(results, sources)
        ]
        with self._lock:
            for result in results:
                self.stats.record(result)
        return results

    def top_k(
        self,
        source: int,
        k: int,
        method: str | None = None,
        **params: Any,
    ) -> TopKResult:
        """Top-k PPR, certified when the method's state allows it.

        With ``method=None`` runs the adaptive certified top-k driver
        (PowerPush with a tightening threshold).  With an explicit
        method, answers one query and ranks its estimate, certifying
        the set only when the residue bound separates rank ``k`` from
        rank ``k+1``.
        """
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        if method is None:
            params.setdefault("alpha", self.alpha)
            params.setdefault("dead_end_policy", self.dead_end_policy)
            if self.backend is not None:
                params.setdefault("backend", self.backend)
            answer = top_k_ppr(
                self.graph, self._internal_source(source), k, **params
            )
            if self._reorder is not None:
                # Rankings come out in internal ids; translate them (and
                # the underlying full-vector result) back.
                result = self._externalize_result(answer.result, source)
                answer = TopKResult(
                    ranking=[
                        (self._reorder.to_external(node), value)
                        for node, value in answer.ranking
                    ],
                    certified=answer.certified,
                    gap=answer.gap,
                    l1_threshold=answer.l1_threshold,
                    result=result,
                )
            with self._lock:
                self._query_counter += 1
                self.stats.record(answer.result)
            return answer
        if is_incremental_method(method):
            # A repaired pair's estimate is within sum(|r|) of pi in
            # every coordinate, so separation by more than that bound
            # certifies the set (signed residues rule out the tighter
            # pure-underestimate argument).
            return self._rank_result(self.query(source, method, **params), k)
        spec, _ = resolve_method(method)
        # The separation certificate relies on the estimate being a
        # pure push underestimate; the Monte-Carlo phase of approximate
        # methods can overestimate nodes, so their rankings are never
        # certified.
        return self._rank_result(
            self.query(source, method, **params),
            k,
            certifiable=spec.kind == "exact",
        )

    def _rank_result(
        self, result: PPRResult, k: int, *, certifiable: bool = True
    ) -> TopKResult:
        """Rank one query's estimate, certifying on residue separation."""
        ranked = result.top_k(min(k + 1, self.graph.num_nodes))
        ranking = ranked[:k]
        kth = ranked[k - 1][1] if len(ranked) >= k else 0.0
        next_value = ranked[k][1] if len(ranked) > k else 0.0
        gap = kth - next_value
        # sum(|r|) equals r_sum for the non-negative residues of the
        # push solvers and stays a valid l1 bound for the signed
        # residues of incremental repair.
        bound = (
            float(np.abs(result.residue).sum())
            if result.residue is not None
            else float("nan")
        )
        certified = certifiable and result.residue is not None and gap > bound
        return TopKResult(
            ranking=ranking,
            certified=certified,
            gap=gap,
            # NaN for residue-less methods (BePI, Monte-Carlo): no push
            # threshold exists for this ranking.
            l1_threshold=bound,
            result=result,
        )

    # -- index persistence ----------------------------------------------
    def save_indexes(self, directory: str | Path) -> Path:
        """Persist the cached walk-based indexes for a warm start.

        Writes each cached :class:`WalkIndex` (SpeedPPR's and any
        FORA+ budgets) through :mod:`repro.walks.storage` plus a
        ``manifest.json`` stamping the graph's shape and version, and
        returns the manifest path.  BePI's factorisation holds live
        scipy solver objects and is rebuilt lazily instead of
        persisted.
        """
        # Snapshot the (immutable once built) index references under
        # the lock; the multi-MB disk writes happen outside it so
        # concurrent queries never stall on a checkpoint.
        with self._lock:
            self._sync_caches()
            walk_index = self._walk_index
            fora_indexes = list(self._fora_indexes)
            graph = self.graph
            version = self.graph_version
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        indexes: list[dict[str, Any]] = []
        if walk_index is not None:
            save_walk_index(walk_index, directory / "walk.npz")
            indexes.append(
                {
                    "kind": "walk",
                    "file": "walk.npz",
                    "sha256": _sha256_file(directory / "walk.npz"),
                    "bytes": (directory / "walk.npz").stat().st_size,
                }
            )
        for built_w, index, _version in fora_indexes:
            file_name = f"fora_w{built_w}.npz"
            save_walk_index(index, directory / file_name)
            indexes.append(
                {
                    "kind": "fora",
                    "file": file_name,
                    "walk_budget": built_w,
                    "sha256": _sha256_file(directory / file_name),
                    "bytes": (directory / file_name).stat().st_size,
                }
            )
        manifest = {
            "format": _MANIFEST_FORMAT,
            "alpha": self.alpha,
            "graph": {
                "name": graph.name,
                "num_nodes": graph.num_nodes,
                "num_edges": graph.num_edges,
                # Informational; staleness is judged by the fingerprint.
                "version": version,
                "fingerprint": _graph_fingerprint(graph),
            },
            "indexes": indexes,
        }
        manifest_path = directory / _MANIFEST_NAME
        # Atomic + fsynced: a crash mid-save leaves either no manifest
        # (the directory is ignored) or a complete one whose checksums
        # vouch for every artefact it names.
        atomic_write_json(manifest_path, manifest)
        return manifest_path

    def load_indexes(self, directory: str | Path) -> int:
        """Adopt indexes saved by :meth:`save_indexes`; return how many.

        Idempotent: re-loading replaces the walk index and skips FORA
        budgets already cached (skipped entries are not counted).

        Stale artefacts are refused outright: the manifest's graph
        fingerprint (a content hash of the CSR arrays) must match the
        engine's current snapshot, and its alpha must match the
        engine's — a restarted server therefore either warm-starts
        safely (even on a re-wrapped :class:`DynamicGraph` whose
        version counter restarted at 0) or gets a clean
        :class:`~repro.errors.IndexMismatchError` and rebuilds.
        """
        directory = Path(directory)
        manifest_path = directory / _MANIFEST_NAME
        if not manifest_path.is_file():
            raise IndexMismatchError(
                f"no index manifest at {manifest_path}"
            )
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != _MANIFEST_FORMAT:
            raise IndexMismatchError(
                f"unsupported index manifest format {manifest.get('format')!r}"
            )
        if manifest["alpha"] != self.alpha:
            raise IndexMismatchError(
                f"indexes saved at alpha={manifest['alpha']}, engine runs "
                f"alpha={self.alpha}"
            )
        with self._lock:
            graph = self.graph
            stamp = manifest["graph"]
            if stamp["fingerprint"] != _graph_fingerprint(graph):
                raise IndexMismatchError(
                    f"stale indexes: saved for n={stamp['num_nodes']}, "
                    f"m={stamp['num_edges']} at graph version "
                    f"{stamp['version']}; the engine's current snapshot "
                    f"(n={graph.num_nodes}, m={graph.num_edges}, "
                    f"version={self.graph_version}) has different content"
                )
            self._sync_caches()
            cached_budgets = {built_w for built_w, _, _ in self._fora_indexes}
            loaded = 0
            for entry in manifest["indexes"]:
                self._verify_index_artifact(directory, entry)
                if entry["kind"] == "walk":
                    index = load_walk_index(directory / entry["file"])
                    index.check_graph(graph)
                    self._walk_index = index
                    self._artefact_versions["walk"] = self.graph_version
                elif entry["kind"] == "fora":
                    budget = int(entry["walk_budget"])
                    if budget in cached_budgets:
                        continue  # re-loading must not duplicate entries
                    index = load_walk_index(directory / entry["file"])
                    index.check_graph(graph)
                    self._fora_indexes.append(
                        (budget, index, self.graph_version)
                    )
                    cached_budgets.add(budget)
                else:
                    raise IndexMismatchError(
                        f"unknown index kind {entry['kind']!r} in manifest"
                    )
                loaded += 1
            return loaded

    @staticmethod
    def _verify_index_artifact(
        directory: Path, entry: Mapping[str, Any]
    ) -> None:
        """Refuse a truncated or corrupted index file before loading it.

        The manifest's per-artifact size and SHA-256 are the source of
        truth: a crash that tore the ``.npz`` short, or silent bit
        rot, surfaces as a typed
        :class:`~repro.errors.IndexMismatchError` here instead of a
        numpy traceback (or a quietly wrong index) downstream.
        """
        path = directory / str(entry["file"])
        if not path.is_file():
            raise IndexMismatchError(
                f"index artefact {entry['file']!r} named by the manifest "
                f"is missing from {directory}"
            )
        expected_bytes = entry.get("bytes")
        if expected_bytes is not None and path.stat().st_size != expected_bytes:
            raise IndexMismatchError(
                f"index artefact {entry['file']!r} is "
                f"{path.stat().st_size} bytes but the manifest recorded "
                f"{expected_bytes} — truncated or partially written file"
            )
        expected_sha = entry.get("sha256")
        if expected_sha is not None:
            actual = _sha256_file(path)
            if actual != expected_sha:
                raise IndexMismatchError(
                    f"index artefact {entry['file']!r} failed its SHA-256 "
                    f"check (manifest {expected_sha[:12]}…, file "
                    f"{actual[:12]}…) — refusing corrupt index data"
                )

    # -- internals -------------------------------------------------------
    def _query_incremental(
        self, source: int, params: dict[str, Any]
    ) -> PPRResult:
        """Serve (and first repair) a tracked source's maintained pair."""
        validate_incremental_params(params)
        # Fully locked: tracker repair mutates the tracker's (p, r)
        # pair and the shared journal, so concurrent refreshes of the
        # same source must serialise.
        with self._lock:
            tracker = self._trackers.get(int(source))
            if tracker is None:
                tracker = self.track(
                    source, l1_threshold=params.get("l1_threshold", 1e-8)
                )
            elif (
                "l1_threshold" in params
                and params["l1_threshold"] != tracker.l1_threshold
            ):
                raise ParameterError(
                    f"source {source} is tracked at "
                    f"l1_threshold={tracker.l1_threshold}; untrack() and "
                    f"re-track to change it"
                )
            self._query_counter += 1
            result = tracker.refresh(trace=params.get("trace"))
            self.stats.record(result)
            # Every tracker at or past this version has replayed the
            # prefix; reclaim it so journal memory tracks pending work,
            # not lifetime updates.  (Trackers owned elsewhere that
            # fell behind the floor resync from a snapshot — see
            # IncrementalPPR.refresh.)
            assert self._dynamic is not None
            self._dynamic.trim_journal(
                min(t.version for t in self._trackers.values())
            )
            return result

    def _prepare(
        self,
        spec: SolverSpec,
        merged: dict[str, Any],
        counter: int,
        source: int,
    ) -> None:
        """Fill engine defaults and inject cached artefacts in place.

        ``counter`` is the caller's reserved query number (claimed
        under the lock) so the derived per-query stream is stable even
        when preparation itself runs unlocked.  An explicit ``seed``
        resolves through :func:`per_source_rng` — one derivation for
        single queries, batches, and the serving layer alike.
        """
        if spec.accepts("alpha"):
            merged.setdefault("alpha", self.alpha)
        if spec.accepts("dead_end_policy"):
            merged.setdefault("dead_end_policy", self.dead_end_policy)
        if spec.accepts("backend") and self.backend is not None:
            merged.setdefault("backend", self.backend)
        if spec.needs_rng and merged.get("rng") is None:
            seed = merged.pop("seed", None)
            if seed is not None:
                merged["rng"] = per_source_rng(seed, source)
            else:
                merged["rng"] = self.rng(_QUERY_SALT_BASE + counter)
        # The cached indexes are built at the engine's alpha; a query
        # that overrides alpha must not be served from them (the solver
        # would reject the mismatch — or worse, BePI would silently
        # answer at the wrong alpha).  Such queries fall back to the
        # index-free path, or build an ad-hoc index via the registry
        # adapter when the caller explicitly asked for one.
        cacheable = merged.get("alpha", self.alpha) == self.alpha
        if spec.needs_walk_index:
            use_index = merged.get("use_index")
            if use_index is None:
                use_index = (
                    cacheable
                    and spec.index_by_default
                    and not self.graph.has_dead_ends
                )
                merged["use_index"] = use_index
            if use_index and cacheable and merged.get("walk_index") is None:
                if spec.name == "speedppr":
                    merged["walk_index"] = self.walk_index()
                else:
                    merged["walk_index"] = self.fora_index(
                        merged.get("epsilon", 0.5),
                        mu=merged.get("mu"),
                        p_fail=merged.get("p_fail"),
                    )
        if (
            spec.needs_precomputation
            and cacheable
            and merged.get("bepi_index") is None
        ):
            merged["bepi_index"] = self.bepi_index()

    def _batch_monte_carlo(
        self, sources: Sequence[int], merged: dict[str, Any]
    ) -> list[PPRResult]:
        """All sources' walks in one vectorised multi-source simulation."""
        graph = self.graph
        for source in sources:
            check_source(graph, source)
        # Walks start (and dead-end-redirect) in internal ids when the
        # engine serves a reordered graph; the histograms are permuted
        # back below, and seeded streams stay keyed on external ids.
        internal_sources = [self._internal_source(s) for s in sources]
        alpha = merged.get("alpha", self.alpha)
        num_walks = merged.get("num_walks")
        if num_walks is None:
            epsilon = merged.get("epsilon", 0.5)
            mu = merged.get("mu")
            if mu is None:
                mu = default_mu(graph.num_nodes)
            p_fail = merged.get("p_fail")
            if p_fail is None:
                p_fail = default_failure_probability(graph.num_nodes)
            num_walks = chernoff_walk_count(epsilon, mu, p_fail=p_fail)
        if num_walks <= 0:
            raise ParameterError(f"num_walks must be positive, got {num_walks}")

        seed = merged.pop("seed", None)
        with self._lock:
            self._query_counter += 1
            counter = self._query_counter
        if seed is not None:
            return self._batch_monte_carlo_seeded(
                graph, sources, internal_sources, alpha, int(num_walks), seed
            )
        rng = self.rng(_QUERY_SALT_BASE + counter)
        # Simulate in source groups and reduce each group's stops to
        # per-source histograms immediately, so peak memory stays
        # bounded by _BATCH_WALK_BUDGET walks (plus the n-length count
        # vectors the caller gets anyway), not len(sources) * num_walks.
        group_size = max(1, _BATCH_WALK_BUDGET // int(num_walks))
        started = time.perf_counter()
        per_source_counts: list[np.ndarray] = []
        steps = 0
        for begin in range(0, len(sources), group_size):
            group = np.asarray(
                internal_sources[begin : begin + group_size], dtype=np.int64
            )
            group_stops, group_steps = simulate_walk_stops(
                graph, np.repeat(group, num_walks), alpha=alpha, rng=rng
            )
            steps += group_steps
            for position in range(group.shape[0]):
                segment = group_stops[
                    position * num_walks : (position + 1) * num_walks
                ]
                counts = np.bincount(segment, minlength=graph.num_nodes)
                if self._reorder is not None:
                    counts = self._reorder.restore_vector(counts)
                per_source_counts.append(counts)
        elapsed = time.perf_counter() - started

        results: list[PPRResult] = []
        share = elapsed / len(sources)
        # Wall time and walk steps are measured for the batch as a
        # whole; apportion them evenly (steps keep an exact total by
        # spreading the remainder) — the vectorised simulation has no
        # per-source measurement.
        steps_base, steps_extra = divmod(steps, len(sources))
        for position, source in enumerate(sources):
            result = PPRResult(
                estimate=per_source_counts[position].astype(np.float64)
                / num_walks,
                residue=None,
                source=int(source),
                alpha=alpha,
                counters=PushCounters(
                    random_walks=int(num_walks),
                    walk_steps=steps_base + (1 if position < steps_extra else 0),
                ),
                seconds=share,
                method="MonteCarlo",
            )
            with self._lock:
                self.stats.record(result)
            results.append(result)
        return results

    def _batch_monte_carlo_seeded(
        self,
        graph: DiGraph,
        sources: Sequence[int],
        internal_sources: Sequence[int],
        alpha: float,
        num_walks: int,
        seed: int,
    ) -> list[PPRResult]:
        """Seeded Monte-Carlo batch: one per-source stream, one sim each.

        Each source's walks come from its own :func:`per_source_rng`
        stream — exactly the stream ``monte_carlo_ppr`` would consume —
        so the batch answer is order-independent and byte-identical to
        a sequential ``query(s, seed=seed)``, at the cost of one (still
        walk-vectorised) simulation per source instead of cross-source
        grouping.  Streams key on the caller-facing source id even
        when the walks themselves run on a reordered graph.
        """
        results: list[PPRResult] = []
        for source, internal in zip(sources, internal_sources):
            started = time.perf_counter()
            stops, steps = simulate_walk_stops(
                graph,
                np.full(num_walks, internal, dtype=np.int64),
                alpha=alpha,
                source=int(internal),
                rng=per_source_rng(seed, source),
            )
            counts = np.bincount(stops, minlength=graph.num_nodes)
            if self._reorder is not None:
                counts = self._reorder.restore_vector(counts)
            result = PPRResult(
                estimate=counts.astype(np.float64) / num_walks,
                residue=None,
                source=int(source),
                alpha=alpha,
                counters=PushCounters(
                    random_walks=num_walks, walk_steps=steps
                ),
                seconds=time.perf_counter() - started,
                method="MonteCarlo",
            )
            with self._lock:
                self.stats.record(result)
            results.append(result)
        return results
