"""Unified query API: the solver registry and the stateful engine.

Two layers:

* :mod:`repro.api.registry` — every SSPPR algorithm registered behind
  one ``solve(graph, source, *, params) -> PPRResult`` protocol, with
  canonical names, aliases, kinds and capability flags.
* :mod:`repro.api.engine` — :class:`PPREngine`, the per-graph serving
  facade that caches walk/BePI indexes across queries and exposes
  ``query`` / ``batch_query`` / ``top_k`` plus aggregated
  instrumentation.

The CLI, the experiment harness and the examples all dispatch through
this package; user code should too.
"""

from repro.api.engine import (
    EngineStats,
    MethodStats,
    PPREngine,
    per_source_rng,
)
from repro.api.registry import (
    ParamSpec,
    SolverSpec,
    build_fora_index,
    build_speedppr_index,
    canonical_method_name,
    get_solver,
    register_solver,
    resolve_method,
    solve,
    solve_block,
    solver_names,
    solver_specs,
)
from repro.errors import UnknownMethodError

__all__ = [
    "PPREngine",
    "EngineStats",
    "MethodStats",
    "per_source_rng",
    "ParamSpec",
    "SolverSpec",
    "register_solver",
    "get_solver",
    "resolve_method",
    "canonical_method_name",
    "solver_names",
    "solver_specs",
    "solve",
    "solve_block",
    "build_speedppr_index",
    "build_fora_index",
    "UnknownMethodError",
]
