"""FORA and FORA+ — the state-of-the-art Approx-SSPPR baseline (§6.1).

FORA (Wang et al., KDD'17) combines Forward Push and Monte-Carlo:

* **Phase 1** runs FwdPush with ``r_max = 1 / sqrt(m * W)`` — the value
  that balances the ``O(1/r_max)`` push cost against the
  ``O(m * r_max * W)`` expected walk cost, minimising the total to
  ``O(sqrt(m * W))`` (``O(n log n / eps)`` on scale-free graphs).
* **Phase 2** is the Eq. 13-14 Monte-Carlo refinement.

**FORA+** pre-computes ``K_v = ceil(d_v * sqrt(W/m)) + 1 >= W_v`` walks
per node.  Because ``W`` (and hence the index) depends on ``eps``, an
index built for ``eps_1`` cannot serve a query with ``eps_2 < eps_1``
— the limitation SpeedPPR's eps-independent index removes (Table 2).
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.fifo_fwdpush import fifo_forward_push
from repro.core.mc_phase import monte_carlo_refine
from repro.core.residues import DeadEndPolicy
from repro.core.result import PPRResult
from repro.core.validation import (
    check_alpha,
    check_epsilon,
    check_mu,
    check_source,
)
from repro.graph.digraph import DiGraph
from repro.montecarlo.chernoff import (
    chernoff_walk_count,
    default_failure_probability,
    default_mu,
)
from repro.montecarlo.mc import monte_carlo_ppr
from repro.walks.index import WalkIndex

__all__ = ["fora", "fora_r_max"]


def fora_r_max(graph: DiGraph, num_walks_w: float) -> float:
    """FORA's balanced push threshold ``r_max = 1 / sqrt(m * W)``."""
    m = max(graph.num_edges, 1)
    return 1.0 / math.sqrt(m * num_walks_w)


def fora(
    graph: DiGraph,
    source: int,
    *,
    alpha: float = 0.2,
    epsilon: float = 0.5,
    mu: float | None = None,
    p_fail: float | None = None,
    rng: np.random.Generator | None = None,
    walk_index: WalkIndex | None = None,
    dead_end_policy: DeadEndPolicy = "redirect-to-source",
    push_mode: str = "auto",
    allow_monte_carlo_shortcut: bool = True,
) -> PPRResult:
    """Answer an approximate SSPPR query with FORA (or FORA+).

    Parameters
    ----------
    walk_index:
        Supplying a pre-computed index turns this into FORA+.  The
        index must have been built with at least this query's ``W``
        (i.e. for an ``epsilon`` no larger than this query's);
        otherwise an :class:`~repro.errors.IndexMismatchError` is
        raised, reproducing the eps-dependence the paper criticises.
    push_mode:
        Execution mode of the FwdPush phase (see
        :func:`~repro.core.fifo_fwdpush.fifo_forward_push`).
    """
    check_alpha(alpha)
    check_source(graph, source)
    check_epsilon(epsilon)
    if mu is None:
        mu = default_mu(graph.num_nodes)
    check_mu(mu)
    if p_fail is None:
        p_fail = default_failure_probability(graph.num_nodes)

    num_walks_w = chernoff_walk_count(epsilon, mu, p_fail=p_fail)
    if (
        allow_monte_carlo_shortcut
        and graph.num_edges >= num_walks_w
        and rng is not None
    ):
        result = monte_carlo_ppr(
            graph, source, alpha=alpha, num_walks=num_walks_w, rng=rng
        )
        result.method = "FORA[mc-shortcut]"
        return result

    started = time.perf_counter()
    push_result = fifo_forward_push(
        graph,
        source,
        alpha=alpha,
        r_max=fora_r_max(graph, num_walks_w),
        mode=push_mode,
        dead_end_policy=dead_end_policy,
    )
    assert push_result.residue is not None
    estimate = monte_carlo_refine(
        graph,
        source,
        alpha,
        push_result.estimate,
        push_result.residue,
        num_walks_w,
        rng=rng,
        walk_index=walk_index,
        counters=push_result.counters,
        on_insufficient="error",
    )
    return PPRResult(
        estimate=estimate,
        residue=push_result.residue,
        source=source,
        alpha=alpha,
        counters=push_result.counters,
        seconds=time.perf_counter() - started,
        method="FORA-Index" if walk_index is not None else "FORA",
    )
