"""Approximate-SSPPR baselines the paper compares against."""

from repro.baselines.fora import fora, fora_r_max
from repro.baselines.resacc import resacc

__all__ = ["fora", "fora_r_max", "resacc"]
