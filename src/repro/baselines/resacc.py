"""ResAcc — residue-accumulation acceleration of FORA (Lin et al., ICDE'20).

ResAcc speeds up FORA's push phase by *accumulating* the residue that
flows back to the source instead of repeatedly re-pushing it.  The key
identity is forward push's linearity invariant

    ``pi_s = pi_hat + sum_v r(s, v) * pi_v``.

If the source is never re-pushed after its initial push, the residue
``a = r(s, s)`` it has re-accumulated satisfies

    ``pi_s = (pi_hat + sum_{v != s} r(s, v) * pi_v) / (1 - a)``,

so one final rescale by ``1 / (1 - a)`` replaces all the pushes that
mass would have caused — those pushes would only have replayed the
same distribution scaled down.  The Monte-Carlo phase then runs on the
non-source residues only.  (This reproduces the core "accumulate the
returned residue, distribute it for free" mechanism of the ResAcc
paper; its additional ``L``-hop propagation heuristic is subsumed here
by the vectorised frontier sweeps.)
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.kernels import frontier_push
from repro.core.mc_phase import monte_carlo_refine
from repro.core.residues import DeadEndPolicy, PushState
from repro.core.result import PPRResult
from repro.core.validation import (
    check_alpha,
    check_epsilon,
    check_mu,
    check_source,
)
from repro.errors import ConvergenceError
from repro.graph.digraph import DiGraph
from repro.montecarlo.chernoff import (
    chernoff_walk_count,
    default_failure_probability,
    default_mu,
)
from repro.baselines.fora import fora_r_max
from repro.walks.index import WalkIndex

__all__ = ["resacc"]


def resacc(
    graph: DiGraph,
    source: int,
    *,
    alpha: float = 0.2,
    epsilon: float = 0.5,
    mu: float | None = None,
    p_fail: float | None = None,
    rng: np.random.Generator | None = None,
    walk_index: WalkIndex | None = None,
    dead_end_policy: DeadEndPolicy = "redirect-to-source",
    max_sweeps: int | None = None,
) -> PPRResult:
    """Answer an approximate SSPPR query with ResAcc.

    Same contract as :func:`repro.baselines.fora.fora`; see the module
    docstring for how the source-residue accumulation works.
    """
    check_alpha(alpha)
    check_source(graph, source)
    check_epsilon(epsilon)
    if mu is None:
        mu = default_mu(graph.num_nodes)
    check_mu(mu)
    if p_fail is None:
        p_fail = default_failure_probability(graph.num_nodes)

    num_walks_w = chernoff_walk_count(epsilon, mu, p_fail=p_fail)
    r_max = fora_r_max(graph, num_walks_w)

    started = time.perf_counter()
    state = PushState(graph, source, alpha, dead_end_policy=dead_end_policy)

    # Initial push of the source, then sweeps that exclude the source so
    # its returned residue accumulates instead of being replayed.
    frontier_push(state, np.asarray([source], dtype=np.int64))
    if max_sweeps is None:
        import math

        max_sweeps = int(16.0 * (math.log(1.0 / min(r_max, 0.5)) + 1.0) / alpha) + 64

    sweeps = 0
    while True:
        active = state.active_mask(r_max)
        active[source] = False
        nodes = np.flatnonzero(active)
        if nodes.shape[0] == 0:
            break
        frontier_push(state, nodes)
        sweeps += 1
        if sweeps > max_sweeps:
            raise ConvergenceError(
                f"ResAcc push phase exceeded {max_sweeps} sweeps "
                f"(r_sum={state.refresh_r_sum():.3e})"
            )
    state.refresh_r_sum()

    accumulated = float(state.residue[source])
    # Guard: alpha-walk mass returning to the source is at most
    # (1 - alpha) < 1, so the rescale below is always well defined.
    scale = 1.0 / (1.0 - accumulated)
    residue_rest = state.residue.copy()
    residue_rest[source] = 0.0

    estimate = monte_carlo_refine(
        graph,
        source,
        alpha,
        state.reserve,
        residue_rest,
        num_walks_w,
        rng=rng,
        walk_index=walk_index,
        counters=state.counters,
        on_insufficient="cap",
    )
    estimate *= scale
    state.counters.bump("resacc_sweeps", sweeps)
    return PPRResult(
        estimate=estimate,
        residue=residue_rest,
        source=source,
        alpha=alpha,
        counters=state.counters,
        seconds=time.perf_counter() - started,
        method="ResAcc",
    )
