"""Random-walk engine and pre-computed walk indexes."""

from repro.walks.engine import simulate_walk_stops, single_walk, walk_stop_counts
from repro.walks.index import (
    WalkIndex,
    build_walk_index,
    fora_plus_walk_counts,
    speedppr_walk_counts,
)
from repro.walks.storage import load_walk_index, save_walk_index, stored_size_bytes

__all__ = [
    "simulate_walk_stops",
    "walk_stop_counts",
    "single_walk",
    "WalkIndex",
    "build_walk_index",
    "fora_plus_walk_counts",
    "speedppr_walk_counts",
    "save_walk_index",
    "load_walk_index",
    "stored_size_bytes",
]
