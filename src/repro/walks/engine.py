"""Batched alpha-random-walk simulation.

An *alpha-random walk* (paper Section 2) stops at the current node with
probability ``alpha`` and otherwise moves to a uniformly random
out-neighbour; from a dead end it jumps back to the *query source*
``s`` (the paper's conceptual dead-end edge points at the source, not
at the walk's own start — this matters for the walks FORA/SpeedPPR
launch from intermediate nodes).

The engine advances *all* walks in lock-step with NumPy: one vectorised
step handles the stop draws, the dead-end redirects and the neighbour
sampling for every still-alive walk.  The expected walk length is
``1/alpha``, so the expected cost is ``O(num_walks / alpha)`` with tiny
constants.

A scalar reference implementation (:func:`single_walk`) backs the
property tests that check the vectorised engine's distribution.
"""

from __future__ import annotations

import numpy as np

from repro.core.validation import check_alpha, check_source
from repro.errors import ConvergenceError, ParameterError
from repro.graph.digraph import DiGraph

__all__ = ["simulate_walk_stops", "walk_stop_counts", "single_walk"]

_MAX_STEPS = 100_000


def simulate_walk_stops(
    graph: DiGraph,
    starts: np.ndarray,
    *,
    alpha: float = 0.2,
    source: int | None = None,
    rng: np.random.Generator,
    batch_size: int = 1 << 20,
) -> tuple[np.ndarray, int]:
    """Simulate one alpha-walk per entry of ``starts``.

    Parameters
    ----------
    starts:
        Start node of each walk (``int`` array, any length).
    source:
        The query source used as the dead-end redirect target.  Dead
        ends raise :class:`ParameterError` when it is omitted and the
        graph has any.
    batch_size:
        Walks are processed in chunks of this size to bound memory.

    Returns
    -------
    (stops, steps):
        ``stops[i]`` is the node where walk ``i`` stopped; ``steps`` is
        the total number of moves taken across all walks (for the
        instrumentation counters).
    """
    check_alpha(alpha)
    starts = np.ascontiguousarray(starts, dtype=np.int64)
    if starts.size and (starts.min() < 0 or starts.max() >= graph.num_nodes):
        raise ParameterError("walk start outside [0, n)")
    if graph.has_dead_ends and source is None:
        raise ParameterError(
            "graph has dead ends: pass the query source for the redirect"
        )
    if source is not None:
        check_source(graph, source)

    stops = np.empty(starts.shape[0], dtype=np.int64)
    total_steps = 0
    for begin in range(0, starts.shape[0], batch_size):
        chunk = starts[begin : begin + batch_size]
        stops[begin : begin + chunk.shape[0]], steps = _simulate_batch(
            graph, chunk, alpha, source, rng
        )
        total_steps += steps
    return stops, total_steps


def _simulate_batch(
    graph: DiGraph,
    starts: np.ndarray,
    alpha: float,
    source: int | None,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int]:
    indptr = graph.out_indptr
    indices = graph.out_indices
    degree = graph.out_degree

    position = starts.copy()
    stops = np.empty(starts.shape[0], dtype=np.int64)
    alive = np.arange(starts.shape[0])
    total_steps = 0

    for _ in range(_MAX_STEPS):
        if alive.shape[0] == 0:
            return stops, total_steps
        # Stop draws for every alive walk.
        halting = rng.random(alive.shape[0]) < alpha
        stopped = alive[halting]
        stops[stopped] = position[stopped]
        alive = alive[~halting]
        if alive.shape[0] == 0:
            return stops, total_steps

        # Move the survivors one step.  The conceptual dead-end edge
        # points at the query source, so a move from a dead end *is*
        # the jump to the source (one step, not jump-then-step).
        current = position[alive]
        deg = degree[current]
        movers = deg > 0
        if not np.all(movers):
            if source is None:
                raise ParameterError(
                    "walk reached a dead end but no redirect source given"
                )
            position[alive[~movers]] = source
        live = alive[movers]
        live_current = current[movers]
        live_deg = deg[movers]
        offsets = (rng.random(live.shape[0]) * live_deg).astype(np.int64)
        position[live] = indices[indptr[live_current] + offsets]
        total_steps += alive.shape[0]

    raise ConvergenceError(
        f"random walks exceeded {_MAX_STEPS} steps; alpha={alpha} too small?"
    )


def walk_stop_counts(
    graph: DiGraph,
    start: int,
    num_walks: int,
    *,
    alpha: float = 0.2,
    source: int | None = None,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int]:
    """Histogram of stop nodes over ``num_walks`` walks from ``start``.

    Returns ``(counts, steps)`` where ``counts`` has length ``n`` and
    sums to ``num_walks``.  ``counts / num_walks`` is the Monte-Carlo
    estimate of ``pi_start`` (up to the dead-end policy).
    """
    if num_walks < 0:
        raise ParameterError(f"num_walks must be >= 0, got {num_walks}")
    starts = np.full(num_walks, start, dtype=np.int64)
    stops, steps = simulate_walk_stops(
        graph, starts, alpha=alpha, source=source if source is not None else start, rng=rng
    )
    counts = np.bincount(stops, minlength=graph.num_nodes).astype(np.float64)
    return counts, steps


def single_walk(
    graph: DiGraph,
    start: int,
    *,
    alpha: float = 0.2,
    source: int | None = None,
    rng: np.random.Generator,
) -> int:
    """Scalar reference walk (used to validate the vectorised engine)."""
    check_alpha(alpha)
    check_source(graph, start)
    redirect = start if source is None else source
    v = start
    for _ in range(_MAX_STEPS):
        if rng.random() < alpha:
            return v
        neighbors = graph.out_neighbors(v)
        if neighbors.shape[0] == 0:
            v = redirect
            continue
        v = int(neighbors[rng.integers(0, neighbors.shape[0])])
    raise ConvergenceError(f"single walk exceeded {_MAX_STEPS} steps")
