"""Serialisation of walk indexes (Table 2's index-size accounting).

The paper measures index size as the bytes of the saved pre-processing
output.  :func:`save_walk_index` / :func:`load_walk_index` round-trip a
:class:`~repro.walks.index.WalkIndex` through an ``.npz`` file, and
:func:`stored_size_bytes` reports the on-disk footprint used in the
Table 2 harness (in-memory ``size_bytes`` is reported alongside).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import IndexBuildError
from repro.walks.index import WalkIndex

__all__ = ["save_walk_index", "load_walk_index", "stored_size_bytes"]


def save_walk_index(index: WalkIndex, path: str | Path) -> None:
    """Write the index to ``path`` (``.npz``)."""
    np.savez_compressed(
        Path(path),
        indptr=index.indptr,
        stops=index.stops,
        alpha=np.array(index.alpha),
        policy=np.array(index.policy),
        construction_seconds=np.array(index.construction_seconds),
        graph_num_nodes=np.array(index.graph_num_nodes),
        graph_num_edges=np.array(index.graph_num_edges),
    )


def load_walk_index(path: str | Path) -> WalkIndex:
    """Load an index written by :func:`save_walk_index`."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            return WalkIndex(
                indptr=data["indptr"],
                stops=data["stops"],
                alpha=float(data["alpha"]),
                policy=str(data["policy"]),
                construction_seconds=float(data["construction_seconds"]),
                graph_num_nodes=int(data["graph_num_nodes"]),
                graph_num_edges=int(data["graph_num_edges"]),
            )
    except (KeyError, OSError, ValueError) as exc:
        raise IndexBuildError(f"cannot load walk index {path}: {exc}") from exc


def stored_size_bytes(path: str | Path) -> int:
    """On-disk size of a saved index, in bytes."""
    return Path(path).stat().st_size
