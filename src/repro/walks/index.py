"""Pre-computed random-walk indexes (FORA+ and SpeedPPR-Index).

Both index-based algorithms pre-generate, for every node ``v``, the
stop nodes of ``K_v`` alpha-random walks from ``v``, so the Monte-Carlo
phase of a query becomes an array lookup.  The two sizing policies
differ in exactly the way Section 6 emphasises:

* **FORA+** needs ``K_v = ceil(d_v * sqrt(W / m)) + 1`` walks, where
  ``W`` depends on the query's relative error ``eps`` — so the index is
  built *for a specific eps* and is insufficient for any smaller one.
  Total size ``sqrt(m * W) + n`` walks (``O(n log n / eps)`` on
  scale-free graphs).

* **SpeedPPR-Index** needs only ``K_v = d_v`` walks thanks to the
  PowerPush + refinement first phase (``W_v = ceil(r_v * W) <= d_v``),
  so the index holds at most ``m`` walks, *independent of eps* — the
  property Table 2 quantifies.

A :class:`WalkIndex` stores the pre-computed stops in CSR-like layout
(``indptr`` over nodes, flat ``stops`` array) and records construction
time and byte size for the Table 2 harness.

Because the conceptual dead-end edge points at the *query source*, the
pre-computed walks of a graph with dead ends would be source-dependent;
both papers sidestep this by using cleaned graphs.  We therefore build
indexes only on dead-end-free graphs and raise otherwise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.validation import check_alpha
from repro.errors import IndexBuildError, IndexMismatchError, ParameterError
from repro.graph.digraph import DiGraph
from repro.walks.engine import simulate_walk_stops

__all__ = [
    "WalkIndex",
    "build_walk_index",
    "fora_plus_walk_counts",
    "speedppr_walk_counts",
]


@dataclass
class WalkIndex:
    """Pre-computed walk stops for every node.

    ``stops[indptr[v]:indptr[v+1]]`` are the stop nodes of the
    pre-computed walks from ``v``.
    """

    indptr: np.ndarray
    stops: np.ndarray
    alpha: float
    policy: str
    construction_seconds: float
    graph_num_nodes: int
    graph_num_edges: int

    @property
    def num_walks(self) -> int:
        """Total number of pre-computed walks."""
        return int(self.stops.shape[0])

    @property
    def size_bytes(self) -> int:
        """Bytes occupied by the index arrays (Table 2's index size)."""
        return int(self.indptr.nbytes + self.stops.nbytes)

    def walks_available(self, v: int) -> int:
        """Number of pre-computed walks for node ``v`` (``K_v``)."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def stops_for(self, v: int, k: int) -> np.ndarray:
        """First ``k`` pre-computed stop nodes of walks from ``v``."""
        available = self.walks_available(v)
        if k > available:
            raise IndexMismatchError(
                f"node {v}: {k} walks requested but only {available} "
                f"pre-computed (policy={self.policy!r})"
            )
        begin = int(self.indptr[v])
        return self.stops[begin : begin + k]

    def check_graph(self, graph: DiGraph) -> None:
        """Raise unless the index was built for (a twin of) ``graph``."""
        if (
            graph.num_nodes != self.graph_num_nodes
            or graph.num_edges != self.graph_num_edges
        ):
            raise IndexMismatchError(
                f"index built for n={self.graph_num_nodes}, "
                f"m={self.graph_num_edges}; got n={graph.num_nodes}, "
                f"m={graph.num_edges}"
            )


def fora_plus_walk_counts(graph: DiGraph, num_walks_w: float) -> np.ndarray:
    """FORA+'s per-node walk budget ``K_v = ceil(d_v sqrt(W/m)) + 1``."""
    if num_walks_w <= 0:
        raise ParameterError(f"W must be positive, got {num_walks_w}")
    m = max(graph.num_edges, 1)
    factor = np.sqrt(num_walks_w / m)
    return np.ceil(graph.out_degree * factor).astype(np.int64) + 1


def speedppr_walk_counts(graph: DiGraph) -> np.ndarray:
    """SpeedPPR-Index's eps-independent budget ``K_v = d_v``."""
    return graph.out_degree.astype(np.int64)


def build_walk_index(
    graph: DiGraph,
    walk_counts: np.ndarray,
    *,
    alpha: float = 0.2,
    policy: str = "custom",
    rng: np.random.Generator,
) -> WalkIndex:
    """Pre-compute ``walk_counts[v]`` alpha-walks from every node ``v``."""
    check_alpha(alpha)
    walk_counts = np.asarray(walk_counts, dtype=np.int64)
    if walk_counts.shape[0] != graph.num_nodes:
        raise IndexBuildError(
            f"walk_counts has length {walk_counts.shape[0]}, "
            f"expected {graph.num_nodes}"
        )
    if np.any(walk_counts < 0):
        raise IndexBuildError("walk_counts must be non-negative")
    if graph.has_dead_ends:
        raise IndexBuildError(
            "walk indexes require a dead-end-free graph (the dead-end "
            "redirect is query-source-dependent); apply a structural "
            "dead-end rule first"
        )

    started = time.perf_counter()
    indptr = np.zeros(graph.num_nodes + 1, dtype=np.int64)
    np.cumsum(walk_counts, out=indptr[1:])
    starts = np.repeat(
        np.arange(graph.num_nodes, dtype=np.int64), walk_counts
    )
    stops, _ = simulate_walk_stops(graph, starts, alpha=alpha, rng=rng)
    return WalkIndex(
        indptr=indptr,
        stops=stops.astype(np.int32),
        alpha=alpha,
        policy=policy,
        construction_seconds=time.perf_counter() - started,
        graph_num_nodes=graph.num_nodes,
        graph_num_edges=graph.num_edges,
    )
