"""repro — reproduction of "Unifying the Global and Local Approaches:
An Efficient Power Iteration with Forward Push" (SIGMOD 2021).

The package implements the paper's two contributions and every
baseline/substrate its evaluation depends on:

* **High-precision SSPPR**: :func:`power_iteration`,
  :func:`forward_push`, :func:`fifo_forward_push`,
  :func:`simultaneous_forward_push`, and the paper's **PowerPush**
  (:func:`power_push`), plus a BePI-style comparator
  (:mod:`repro.bepi`).
* **Approximate SSPPR**: :func:`monte_carlo_ppr`, :func:`fora`
  (FORA/FORA+), :func:`resacc`, and the paper's **SpeedPPR**
  (:func:`speed_ppr`, with an eps-independent walk index).
* **Substrates**: a CSR graph engine (:mod:`repro.graph`), scale-free
  dataset generators (:mod:`repro.generators`), a vectorised
  random-walk engine (:mod:`repro.walks`), metrics
  (:mod:`repro.metrics`) and the experiment harness
  (:mod:`repro.experiments`).
* **Unified query API** (:mod:`repro.api`): every algorithm sits
  behind one solver registry, and a stateful :class:`PPREngine` serves
  queries against a graph while caching the expensive per-graph
  indexes (SpeedPPR's eps-independent walk index, BePI's block
  elimination) across queries.

Quickstart
----------
Construct one engine per graph, then query it by method name — any
registered algorithm, exact or approximate, through one front door:

>>> from repro import PPREngine, load_dataset
>>> graph = load_dataset("dblp-s")
>>> engine = PPREngine(graph, alpha=0.2, seed=7)
>>> exact = engine.query(0, method="powerpush", l1_threshold=1e-8)
>>> exact.r_sum <= 1e-8
True
>>> approx = engine.query(0, method="speedppr", epsilon=0.5)  # builds index
>>> _ = engine.query(1, method="speedppr", epsilon=0.1)       # reuses it
>>> engine.index_builds["walk"]
1
>>> results = engine.batch_query([0, 1, 2], method="montecarlo")
>>> [r.source for r in results]
[0, 1, 2]

The registry resolves aliases (``fwdpush``, ``power-iteration``,
``fora+`` …) to canonical solvers; ``repro.api.solver_names()`` lists
them and an unknown name raises :class:`UnknownMethodError` with the
valid spellings.  The direct per-algorithm functions below remain
available for library use.
"""

from repro.api import (
    PPREngine,
    SolverSpec,
    UnknownMethodError,
    canonical_method_name,
    get_solver,
    register_solver,
    solver_names,
)
from repro.backends import (
    KernelBackend,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.baselines import fora, resacc
from repro.bepi import BePIIndex, bepi_query, build_bepi_index
from repro.core import (
    DeadEndPolicy,
    PowerPushConfig,
    PPRResult,
    PushState,
    TopKResult,
    backward_push,
    default_l1_threshold,
    fifo_forward_push,
    forward_push,
    pagerank,
    power_iteration,
    power_push,
    power_push_block,
    preference_pagerank,
    refine_to_r_max,
    simultaneous_forward_push,
    speed_ppr,
    top_k_ppr,
)
from repro.generators import (
    barabasi_albert_digraph,
    chung_lu_digraph,
    dataset_names,
    load_dataset,
    power_law_digraph,
    rmat_digraph,
)
from repro.core.incremental import IncrementalPPR
from repro.graph import (
    DiGraph,
    DynamicGraph,
    ReorderResult,
    compute_stats,
    from_adjacency,
    from_edge_arrays,
    from_edges,
    paper_example_graph,
    read_edge_list,
    reorder_for_locality,
    sample_edge_update,
)
from repro.metrics import (
    ground_truth_ppr,
    l1_error,
    max_relative_error,
    precision_at_k,
)
from repro.montecarlo import chernoff_walk_count, monte_carlo_ppr
from repro.serving import (
    AsyncFrontDoor,
    EngineServer,
    FaultInjector,
    FaultSpec,
    QueryScheduler,
    RestartPolicy,
    ResultCache,
    RetryPolicy,
    ServedResult,
    ShardedDispatcher,
    SharedGraphImage,
    WorkloadGenerator,
    run_loadtest,
)
from repro.walks import (
    WalkIndex,
    build_walk_index,
    fora_plus_walk_counts,
    speedppr_walk_counts,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # unified query API
    "PPREngine",
    "SolverSpec",
    "register_solver",
    "get_solver",
    "solver_names",
    "canonical_method_name",
    "UnknownMethodError",
    # serving layer
    "AsyncFrontDoor",
    "EngineServer",
    "FaultInjector",
    "FaultSpec",
    "QueryScheduler",
    "RestartPolicy",
    "ResultCache",
    "RetryPolicy",
    "ServedResult",
    "ShardedDispatcher",
    "SharedGraphImage",
    "WorkloadGenerator",
    "run_loadtest",
    # graph
    "DiGraph",
    "DynamicGraph",
    "sample_edge_update",
    "IncrementalPPR",
    "from_edges",
    "from_edge_arrays",
    "from_adjacency",
    "read_edge_list",
    "paper_example_graph",
    "compute_stats",
    "ReorderResult",
    "reorder_for_locality",
    # kernel backends
    "KernelBackend",
    "available_backends",
    "get_backend",
    "resolve_backend",
    # generators
    "barabasi_albert_digraph",
    "chung_lu_digraph",
    "power_law_digraph",
    "rmat_digraph",
    "dataset_names",
    "load_dataset",
    # high-precision algorithms
    "power_iteration",
    "forward_push",
    "simultaneous_forward_push",
    "fifo_forward_push",
    "power_push",
    "power_push_block",
    "PowerPushConfig",
    "refine_to_r_max",
    "default_l1_threshold",
    "PushState",
    "PPRResult",
    "DeadEndPolicy",
    # approximate algorithms
    "monte_carlo_ppr",
    "chernoff_walk_count",
    "fora",
    "resacc",
    "speed_ppr",
    # extensions
    "pagerank",
    "preference_pagerank",
    "top_k_ppr",
    "TopKResult",
    "backward_push",
    # walk indexes
    "WalkIndex",
    "build_walk_index",
    "fora_plus_walk_counts",
    "speedppr_walk_counts",
    # BePI
    "build_bepi_index",
    "bepi_query",
    "BePIIndex",
    # metrics
    "ground_truth_ppr",
    "l1_error",
    "max_relative_error",
    "precision_at_k",
]
