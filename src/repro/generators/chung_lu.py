"""Directed Chung–Lu random graphs with prescribed degree sequences.

The Chung–Lu model draws each edge ``(u, v)`` independently with
probability proportional to ``out_weight[u] * in_weight[v]``, which in
expectation realises the prescribed out-/in-degree sequences.  Drawing
all ``n^2`` Bernoulli trials is infeasible, so we use the standard
"edge-skipping" equivalent: sample ``m`` endpoint pairs where sources
are drawn proportional to out-weights and targets proportional to
in-weights.  For heavy-tailed weights this reproduces the degree
correlations that make forward push's frontier explode after a few hops
— the behaviour the paper's experiments exercise.

The generator guarantees no dead ends by construction when
``ensure_min_out_degree`` is set: after sampling, any node that ended up
with out-degree zero receives one edge to a weight-proportional target.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.graph.build import from_edge_arrays
from repro.graph.digraph import DiGraph
from repro.generators.powerlaw import sample_power_law_degrees, scale_degrees_to_total

__all__ = ["chung_lu_digraph", "power_law_digraph"]


def chung_lu_digraph(
    out_weights: np.ndarray,
    in_weights: np.ndarray,
    num_edges: int,
    *,
    rng: np.random.Generator,
    name: str = "chung-lu",
    ensure_min_out_degree: int = 1,
    max_resample_rounds: int = 64,
) -> DiGraph:
    """Sample a directed Chung–Lu graph.

    Parameters
    ----------
    out_weights, in_weights:
        Non-negative per-node weights; expected out-degree of ``u`` is
        ``num_edges * out_weights[u] / sum(out_weights)`` (and dually
        for in-degrees).
    num_edges:
        Number of distinct directed edges to aim for.  Duplicate
        samples are resampled (up to ``max_resample_rounds``), so the
        result has exactly ``num_edges`` edges unless the weight
        structure makes that impossible, in which case slightly fewer.
    ensure_min_out_degree:
        After sampling, nodes below this out-degree receive extra
        weight-proportional edges.  ``1`` (default) removes dead ends.
    """
    out_weights = np.asarray(out_weights, dtype=np.float64)
    in_weights = np.asarray(in_weights, dtype=np.float64)
    if out_weights.shape != in_weights.shape:
        raise ParameterError("out_weights and in_weights must have equal length")
    num_nodes = out_weights.shape[0]
    if num_nodes == 0:
        raise ParameterError("cannot generate a graph with zero nodes")
    if num_edges < 0:
        raise ParameterError(f"num_edges must be >= 0, got {num_edges}")
    if np.any(out_weights < 0) or np.any(in_weights < 0):
        raise ParameterError("weights must be non-negative")
    if out_weights.sum() <= 0 or in_weights.sum() <= 0:
        raise ParameterError("weights must not be all zero")

    out_cdf = np.cumsum(out_weights) / out_weights.sum()
    in_cdf = np.cumsum(in_weights) / in_weights.sum()

    seen: set[int] = set()
    sources_list: list[np.ndarray] = []
    targets_list: list[np.ndarray] = []
    needed = num_edges
    for _ in range(max_resample_rounds):
        if needed <= 0:
            break
        batch = max(needed + needed // 4, 16)
        src = np.searchsorted(out_cdf, rng.random(batch)).astype(np.int64)
        dst = np.searchsorted(in_cdf, rng.random(batch)).astype(np.int64)
        keep_src, keep_dst = _filter_new_edges(src, dst, num_nodes, seen, needed)
        sources_list.append(keep_src)
        targets_list.append(keep_dst)
        needed -= keep_src.shape[0]

    sources = np.concatenate(sources_list) if sources_list else np.empty(0, np.int64)
    targets = np.concatenate(targets_list) if targets_list else np.empty(0, np.int64)

    if ensure_min_out_degree > 0:
        sources, targets = _patch_out_degrees(
            sources,
            targets,
            num_nodes,
            in_cdf,
            min_degree=ensure_min_out_degree,
            seen=seen,
            rng=rng,
        )

    return from_edge_arrays(
        sources,
        targets,
        num_nodes=num_nodes,
        name=name,
        dedup=True,
        drop_self_loops=False,  # already filtered during sampling
    )


def power_law_digraph(
    num_nodes: int,
    num_edges: int,
    *,
    exponent_out: float = 2.5,
    exponent_in: float = 2.2,
    rng: np.random.Generator,
    name: str = "power-law",
) -> DiGraph:
    """Convenience wrapper: Chung–Lu with power-law in/out weights.

    The two exponents default to typical social-network values and are
    deliberately different so the graph is genuinely directed (in- and
    out-degree of a node are only weakly correlated, as in web graphs).
    """
    if num_nodes <= 1:
        raise ParameterError(f"need at least 2 nodes, got {num_nodes}")
    out_deg = sample_power_law_degrees(
        num_nodes, exponent=exponent_out, d_min=1, rng=rng
    )
    in_deg = sample_power_law_degrees(
        num_nodes, exponent=exponent_in, d_min=1, rng=rng
    )
    out_deg = scale_degrees_to_total(out_deg, num_edges, d_min=1, rng=rng)
    in_deg = scale_degrees_to_total(in_deg, num_edges, d_min=1, rng=rng)
    return chung_lu_digraph(
        out_deg.astype(np.float64),
        in_deg.astype(np.float64),
        num_edges,
        rng=rng,
        name=name,
    )


def _filter_new_edges(
    src: np.ndarray,
    dst: np.ndarray,
    num_nodes: int,
    seen: set[int],
    needed: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Keep at most ``needed`` non-loop edges not yet in ``seen``."""
    mask = src != dst
    src, dst = src[mask], dst[mask]
    keys = src * num_nodes + dst
    keep_src: list[int] = []
    keep_dst: list[int] = []
    for s, d, key in zip(src.tolist(), dst.tolist(), keys.tolist()):
        if key in seen:
            continue
        seen.add(key)
        keep_src.append(s)
        keep_dst.append(d)
        if len(keep_src) >= needed:
            break
    return (
        np.asarray(keep_src, dtype=np.int64),
        np.asarray(keep_dst, dtype=np.int64),
    )


def _patch_out_degrees(
    sources: np.ndarray,
    targets: np.ndarray,
    num_nodes: int,
    in_cdf: np.ndarray,
    *,
    min_degree: int,
    seen: set[int],
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Give every node at least ``min_degree`` out-edges."""
    out_deg = np.bincount(sources, minlength=num_nodes)
    deficient = np.flatnonzero(out_deg < min_degree)
    extra_src: list[int] = []
    extra_dst: list[int] = []
    for node in deficient.tolist():
        missing = min_degree - int(out_deg[node])
        attempts = 0
        while missing > 0 and attempts < 100:
            attempts += 1
            target = int(np.searchsorted(in_cdf, rng.random()))
            if target == node:
                continue
            key = node * num_nodes + target
            if key in seen:
                continue
            seen.add(key)
            extra_src.append(node)
            extra_dst.append(target)
            missing -= 1
        # Deterministic fallback for pathological weight vectors.
        target = (node + 1) % num_nodes
        while missing > 0:
            if target != node and (node * num_nodes + target) not in seen:
                seen.add(node * num_nodes + target)
                extra_src.append(node)
                extra_dst.append(target)
                missing -= 1
            target = (target + 1) % num_nodes
    if not extra_src:
        return sources, targets
    return (
        np.concatenate([sources, np.asarray(extra_src, dtype=np.int64)]),
        np.concatenate([targets, np.asarray(extra_dst, dtype=np.int64)]),
    )
