"""Registry of synthetic analogs of the paper's six datasets (Table 1).

The paper evaluates on six SNAP datasets (DBLP, Web-Stanford, Pokec,
LiveJournal, Orkut, Twitter) that range up to 1.47B edges.  This
environment has no network access and no 144 GB server, so — per the
substitution policy in DESIGN.md — each dataset is replaced by a
synthetic analog that preserves the properties the experiments actually
depend on:

* the **type** (directed vs. symmetrised-undirected),
* the **density** ``m/n`` (Table 1's discriminating column: Orkut's
  76.3 average degree is why BePI is 17x slower there),
* a **heavy-tailed degree distribution** (scale-free regime in which
  the SpeedPPR bound holds), and
* for the web/Twitter analogs, R-MAT's community skew.

Node counts are scaled down so pure-Python/NumPy algorithms finish in
seconds.  ``REPRO_BENCH_SCALE`` (a float environment variable)
multiplies node counts for larger runs.  Generated graphs are cached
in-memory per process and on disk under ``.dataset_cache/``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ParameterError
from repro.generators.chung_lu import power_law_digraph
from repro.generators.rmat import rmat_digraph
from repro.graph.digraph import DiGraph
from repro.graph.io import load_npz, save_npz
from repro.graph.transforms import symmetrize

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "generate_dataset",
    "load_dataset",
    "clear_dataset_cache",
]

_SCALE_ENV = "REPRO_BENCH_SCALE"
_CACHE_DIR_ENV = "REPRO_CACHE_DIR"


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic analog dataset."""

    name: str
    paper_name: str
    base_nodes: int
    avg_degree: float
    undirected: bool
    generator: str  # "chung-lu" or "rmat"
    exponent_out: float = 2.5
    exponent_in: float = 2.2
    seed: int = 0
    paper_nodes: str = ""
    paper_edges: str = ""

    def scaled_nodes(self, scale: float) -> int:
        return max(int(self.base_nodes * scale), 64)


# Default scales keep the *relative* ordering of Table 1 (Twitter analog
# largest, DBLP/Web-St smallest) while letting the full experiment
# harness run in minutes.  Densities m/n match Table 1 exactly.
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="dblp-s",
            paper_name="DBLP",
            base_nodes=3000,
            avg_degree=6.62,
            undirected=True,
            generator="chung-lu",
            exponent_out=2.8,
            exponent_in=2.8,
            seed=101,
            paper_nodes="317K",
            paper_edges="2.10M",
        ),
        DatasetSpec(
            name="webst-s",
            paper_name="Web-St",
            base_nodes=2800,
            avg_degree=8.20,
            undirected=False,
            generator="rmat",
            seed=102,
            paper_nodes="282K",
            paper_edges="2.31M",
        ),
        DatasetSpec(
            name="pokec-s",
            paper_name="Pokec",
            base_nodes=5000,
            avg_degree=18.8,
            undirected=False,
            generator="chung-lu",
            exponent_out=2.4,
            exponent_in=2.3,
            seed=103,
            paper_nodes="1.63M",
            paper_edges="30.6M",
        ),
        DatasetSpec(
            name="lj-s",
            paper_name="LJ",
            base_nodes=7000,
            avg_degree=14.1,
            undirected=False,
            generator="chung-lu",
            exponent_out=2.45,
            exponent_in=2.3,
            seed=104,
            paper_nodes="4.85M",
            paper_edges="68.4M",
        ),
        DatasetSpec(
            name="orkut-s",
            paper_name="Orkut",
            base_nodes=3000,
            avg_degree=76.3,
            undirected=True,
            generator="chung-lu",
            exponent_out=2.2,
            exponent_in=2.2,
            seed=105,
            paper_nodes="3.07M",
            paper_edges="234M",
        ),
        DatasetSpec(
            name="twitter-s",
            paper_name="Twitter",
            base_nodes=9000,
            avg_degree=35.3,
            undirected=False,
            generator="rmat",
            seed=106,
            paper_nodes="41.7M",
            paper_edges="1.47B",
        ),
    )
}

_memory_cache: dict[tuple[str, float], DiGraph] = {}


def dataset_names() -> list[str]:
    """Names of the six analogs, in Table 1 order."""
    return list(DATASETS)


def current_scale() -> float:
    """The node-count multiplier from ``REPRO_BENCH_SCALE`` (default 1)."""
    raw = os.environ.get(_SCALE_ENV, "1")
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ParameterError(f"{_SCALE_ENV}={raw!r} is not a number") from exc
    if scale <= 0:
        raise ParameterError(f"{_SCALE_ENV} must be positive, got {scale}")
    return scale


def generate_dataset(name: str, *, scale: float | None = None) -> DiGraph:
    """Generate (without caching) the analog dataset ``name``."""
    if name not in DATASETS:
        raise ParameterError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    spec = DATASETS[name]
    if scale is None:
        scale = current_scale()
    num_nodes = spec.scaled_nodes(scale)
    num_edges = int(num_nodes * spec.avg_degree)
    rng = np.random.default_rng(spec.seed)

    if spec.generator == "rmat":
        graph_scale = max(int(np.ceil(np.log2(num_nodes * 1.25))), 4)
        graph = rmat_digraph(
            graph_scale, num_edges, rng=rng, name=spec.name
        )
    else:
        if spec.undirected:
            # Generate half the directed edges, then symmetrise; the
            # final directed edge count lands on n * avg_degree as the
            # paper counts each undirected edge twice.
            base = power_law_digraph(
                num_nodes,
                max(num_edges // 2, num_nodes),
                exponent_out=spec.exponent_out,
                exponent_in=spec.exponent_in,
                rng=rng,
                name=spec.name,
            )
            graph = symmetrize(base)
        else:
            graph = power_law_digraph(
                num_nodes,
                num_edges,
                exponent_out=spec.exponent_out,
                exponent_in=spec.exponent_in,
                rng=rng,
                name=spec.name,
            )
    if spec.undirected and not graph.undirected_origin:
        graph = symmetrize(graph)
    return graph


def load_dataset(name: str, *, scale: float | None = None) -> DiGraph:
    """Load ``name`` through the in-memory and on-disk caches."""
    if scale is None:
        scale = current_scale()
    key = (name, scale)
    if key in _memory_cache:
        return _memory_cache[key]

    cache_file = _cache_path(name, scale)
    if cache_file.exists():
        try:
            graph = load_npz(cache_file)
        except Exception:
            graph = generate_dataset(name, scale=scale)
            _write_cache(graph, cache_file)
    else:
        graph = generate_dataset(name, scale=scale)
        _write_cache(graph, cache_file)
    _memory_cache[key] = graph
    return graph


def clear_dataset_cache() -> None:
    """Drop the in-process cache (on-disk files are left alone)."""
    _memory_cache.clear()


def _cache_path(name: str, scale: float) -> Path:
    root = Path(os.environ.get(_CACHE_DIR_ENV, ".dataset_cache"))
    return root / f"{name}-x{scale:g}.npz"


def _write_cache(graph: DiGraph, cache_file: Path) -> None:
    try:
        cache_file.parent.mkdir(parents=True, exist_ok=True)
        save_npz(graph, cache_file)
    except OSError:
        # Disk cache is best-effort; generation still succeeded.
        pass
