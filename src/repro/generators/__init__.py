"""Synthetic scale-free graph generators and the six-dataset registry.

These generators are the repository's substitute for the SNAP datasets
of the paper's Table 1 (see DESIGN.md, "Substitutions"): directed
Chung–Lu with power-law degree weights, directed Barabási–Albert, and
R-MAT, plus a registry (:data:`DATASETS`) producing scaled analogs of
DBLP, Web-Stanford, Pokec, LiveJournal, Orkut and Twitter.
"""

from repro.generators.ba import barabasi_albert_digraph
from repro.generators.chung_lu import chung_lu_digraph, power_law_digraph
from repro.generators.datasets import (
    DATASETS,
    DatasetSpec,
    clear_dataset_cache,
    dataset_names,
    generate_dataset,
    load_dataset,
)
from repro.generators.powerlaw import (
    expected_pareto_mean,
    sample_power_law_degrees,
    scale_degrees_to_total,
)
from repro.generators.rmat import rmat_digraph

__all__ = [
    "barabasi_albert_digraph",
    "chung_lu_digraph",
    "power_law_digraph",
    "rmat_digraph",
    "sample_power_law_degrees",
    "scale_degrees_to_total",
    "expected_pareto_mean",
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "generate_dataset",
    "load_dataset",
    "clear_dataset_cache",
]
