"""R-MAT (Recursive MATrix) graph generator.

R-MAT (Chakrabarti, Zhan & Faloutsos 2004) recursively subdivides the
adjacency matrix into quadrants and drops each edge into quadrant
``a / b / c / d`` with fixed probabilities.  With skewed parameters
(e.g. ``a = 0.57``) it produces the heavy-tailed, community-ridden
structure characteristic of web/social graphs such as Twitter — the
densest, most skewed dataset in the paper's Table 1 — and is the
standard synthetic stand-in for them (it is the Graph500 generator).

Our implementation vectorises all ``scale`` bit-levels across the whole
edge batch, then deduplicates and patches dead ends.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.graph.build import from_edge_arrays
from repro.graph.digraph import DiGraph

__all__ = ["rmat_digraph"]


def rmat_digraph(
    scale: int,
    num_edges: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    rng: np.random.Generator,
    name: str = "rmat",
    noise: float = 0.1,
    ensure_no_dead_ends: bool = True,
) -> DiGraph:
    """Generate an R-MAT graph with ``2**scale`` candidate nodes.

    Parameters
    ----------
    scale:
        ``log2`` of the node-id space.  Isolated ids are compacted away,
        so the final node count is slightly below ``2**scale``.
    a, b, c:
        Quadrant probabilities (``d = 1 - a - b - c``).  The defaults
        are the Graph500 parameters.
    noise:
        Per-level multiplicative jitter on the quadrant probabilities;
        avoids the artificial degree staircase of noiseless R-MAT.
    """
    if scale < 1 or scale > 30:
        raise ParameterError(f"scale must be in [1, 30], got {scale}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise ParameterError(
            f"quadrant probabilities must be in [0,1]; got a={a} b={b} c={c} d={d}"
        )
    if num_edges < 1:
        raise ParameterError(f"num_edges must be >= 1, got {num_edges}")

    # Oversample to compensate for duplicates/self-loops, then trim.
    oversample = int(num_edges * 1.3) + 16
    rows = np.zeros(oversample, dtype=np.int64)
    cols = np.zeros(oversample, dtype=np.int64)
    for level in range(scale):
        jitter = 1.0 + noise * (2.0 * rng.random(4) - 1.0)
        pa, pb, pc, pd = np.array([a, b, c, d]) * jitter
        total = pa + pb + pc + pd
        pa, pb, pc = pa / total, pb / total, pc / total
        u = rng.random(oversample)
        right = u >= pa + pb  # quadrants c, d set the row bit
        down = (u >= pa) & (u < pa + pb) | (u >= pa + pb + pc)  # b, d set col bit
        rows |= right.astype(np.int64) << level
        cols |= down.astype(np.int64) << level

    mask = rows != cols
    rows, cols = rows[mask], cols[mask]
    keys = rows << scale | cols
    _, unique_pos = np.unique(keys, return_index=True)
    unique_pos.sort()
    rows, cols = rows[unique_pos], cols[unique_pos]
    rows, cols = rows[:num_edges], cols[:num_edges]

    # Compact ids (R-MAT leaves many ids unused at low densities).
    node_ids = np.union1d(rows, cols)
    rows = np.searchsorted(node_ids, rows)
    cols = np.searchsorted(node_ids, cols)
    num_nodes = int(node_ids.shape[0])

    if ensure_no_dead_ends and num_nodes > 1:
        out_deg = np.bincount(rows, minlength=num_nodes)
        dead = np.flatnonzero(out_deg == 0)
        if dead.shape[0]:
            # Point each dead end at a random popular node (preferential
            # by in-degree, mirroring how such nodes gain links).
            extra_targets = cols[rng.integers(0, cols.shape[0], size=dead.shape[0])]
            collide = extra_targets == dead
            extra_targets[collide] = (dead[collide] + 1) % num_nodes
            rows = np.concatenate([rows, dead])
            cols = np.concatenate([cols, extra_targets])

    return from_edge_arrays(
        rows,
        cols,
        num_nodes=num_nodes,
        name=name,
        dedup=True,
        drop_self_loops=True,
    )
