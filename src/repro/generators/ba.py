"""Directed Barabási–Albert (preferential attachment) generator.

Each arriving node attaches ``k`` out-edges to existing nodes chosen
with probability proportional to ``in_degree + 1`` (the ``+1`` smooths
the cold start).  This produces a power-law *in*-degree tail with a
constant out-degree, which resembles citation and follower networks.
To avoid dead ends the seed clique is strongly connected, and every
node created afterwards has out-degree exactly ``k >= 1``.

Preferential sampling uses the classic "repeated-endpoints" trick: a
growing array holds one entry per edge endpoint, so uniform sampling
from it is sampling proportional to degree — O(1) per draw, no CDF
rebuilds.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.graph.build import from_edge_arrays
from repro.graph.digraph import DiGraph

__all__ = ["barabasi_albert_digraph"]


def barabasi_albert_digraph(
    num_nodes: int,
    k: int,
    *,
    rng: np.random.Generator,
    name: str = "barabasi-albert",
) -> DiGraph:
    """Generate a directed BA graph with ``num_nodes`` nodes.

    Parameters
    ----------
    k:
        Out-edges added per new node; the final graph has roughly
        ``k * num_nodes`` edges (minus the seed adjustment).
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    seed_size = k + 1
    if num_nodes < seed_size:
        raise ParameterError(
            f"num_nodes must be at least k+1={seed_size}, got {num_nodes}"
        )

    sources: list[int] = []
    targets: list[int] = []
    # Seed: a directed cycle over the first k+1 nodes (strongly
    # connected, so no dead ends), plus its chords to give the seed k
    # out-edges each.
    for u in range(seed_size):
        for offset in range(1, k + 1):
            sources.append(u)
            targets.append((u + offset) % seed_size)

    # endpoint_pool holds one entry per in-edge endpoint plus one
    # smoothing entry per node, so uniform draws are prop. to in_deg+1.
    capacity = 2 * (len(sources) + (num_nodes - seed_size) * k) + num_nodes
    endpoint_pool = np.empty(capacity, dtype=np.int64)
    pool_size = 0
    for node in range(seed_size):
        endpoint_pool[pool_size] = node
        pool_size += 1
    for t in targets:
        endpoint_pool[pool_size] = t
        pool_size += 1

    for new_node in range(seed_size, num_nodes):
        chosen: set[int] = set()
        while len(chosen) < k:
            pick = int(endpoint_pool[rng.integers(0, pool_size)])
            if pick != new_node:
                chosen.add(pick)
        for target in chosen:
            sources.append(new_node)
            targets.append(target)
            endpoint_pool[pool_size] = target
            pool_size += 1
        endpoint_pool[pool_size] = new_node  # smoothing entry
        pool_size += 1

    return from_edge_arrays(
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
        num_nodes=num_nodes,
        name=name,
        dedup=True,
        drop_self_loops=True,
    )
