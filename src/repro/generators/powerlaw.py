"""Power-law degree-sequence sampling shared by the graph generators.

Scale-free graphs — the regime in which the paper's complexity bounds
for SpeedPPR hold (``m = O(n log n)``) — have degree distributions with
a Pareto tail ``P(d >= x) ~ x^{1-alpha}``.  This module draws integer
degree sequences from a discrete Pareto distribution via inverse
transform sampling and rescales them to hit a target total degree, so a
generator can match a dataset's density ``m/n`` exactly while keeping a
heavy tail.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "sample_power_law_degrees",
    "scale_degrees_to_total",
    "expected_pareto_mean",
]


def sample_power_law_degrees(
    num_nodes: int,
    *,
    exponent: float,
    d_min: int = 1,
    d_max: int | None = None,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``num_nodes`` degrees from a truncated discrete Pareto law.

    Parameters
    ----------
    exponent:
        Tail exponent ``alpha > 1`` of the density ``p(x) ~ x^-alpha``.
        Social networks typically have ``2 < alpha < 3``.
    d_min:
        Minimum degree (inclusive); ``d_min >= 1`` guarantees no dead
        ends when the sequence is used for out-degrees.
    d_max:
        Maximum degree (inclusive).  Defaults to ``num_nodes - 1``
        (simple-graph cap).
    """
    if num_nodes <= 0:
        return np.empty(0, dtype=np.int64)
    if exponent <= 1.0:
        raise ParameterError(f"power-law exponent must be > 1, got {exponent}")
    if d_min < 1:
        raise ParameterError(f"d_min must be >= 1, got {d_min}")
    if d_max is None:
        d_max = max(num_nodes - 1, d_min)
    if d_max < d_min:
        raise ParameterError(f"d_max={d_max} < d_min={d_min}")

    # Inverse-transform sampling of the continuous Pareto restricted to
    # [d_min, d_max + 1), then floor to integers.
    u = rng.random(num_nodes)
    one_minus_alpha = 1.0 - exponent
    lo = float(d_min) ** one_minus_alpha
    hi = float(d_max + 1) ** one_minus_alpha
    samples = (lo + u * (hi - lo)) ** (1.0 / one_minus_alpha)
    degrees = np.floor(samples).astype(np.int64)
    return np.clip(degrees, d_min, d_max)


def scale_degrees_to_total(
    degrees: np.ndarray,
    target_total: int,
    *,
    d_min: int = 1,
    rng: np.random.Generator,
) -> np.ndarray:
    """Rescale a degree sequence so it sums to ``target_total``.

    Scaling is multiplicative (preserving the distribution's shape)
    followed by stochastic rounding and a final exact adjustment that
    adds/removes single units at random nodes while respecting
    ``d_min``.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.shape[0] == 0:
        return degrees
    if target_total < d_min * degrees.shape[0]:
        raise ParameterError(
            f"target_total={target_total} cannot satisfy d_min={d_min} "
            f"for {degrees.shape[0]} nodes"
        )
    current = int(degrees.sum())
    if current == 0:
        degrees = np.full_like(degrees, d_min)
        current = int(degrees.sum())

    scaled = degrees * (target_total / current)
    floor = np.floor(scaled)
    frac = scaled - floor
    rounded = floor + (rng.random(degrees.shape[0]) < frac)
    result = np.maximum(rounded.astype(np.int64), d_min)

    # Exact correction: distribute the residual one unit at a time.
    residual = target_total - int(result.sum())
    while residual != 0:
        step = 1 if residual > 0 else -1
        count = abs(residual)
        picks = rng.integers(0, result.shape[0], size=count)
        for node in picks:
            if step < 0 and result[node] <= d_min:
                continue
            result[node] += step
            residual -= step
            if residual == 0:
                break
    return result


def expected_pareto_mean(exponent: float, d_min: int, d_max: int) -> float:
    """Mean of the truncated continuous Pareto law used by the sampler.

    Useful for choosing ``exponent``/``d_min`` pairs that land near a
    target density before the exact rescaling step.
    """
    if exponent <= 1.0:
        raise ParameterError(f"power-law exponent must be > 1, got {exponent}")
    a = exponent
    lo, hi = float(d_min), float(d_max + 1)
    if abs(a - 2.0) < 1e-12:
        numerator = np.log(hi / lo)
    else:
        numerator = (hi ** (2.0 - a) - lo ** (2.0 - a)) / (2.0 - a)
    denominator = (hi ** (1.0 - a) - lo ** (1.0 - a)) / (1.0 - a)
    return float(numerator / denominator)
