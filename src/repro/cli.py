"""Command-line interface: ``repro-ppr``.

Examples
--------
Run one experiment on the default bench configuration::

    repro-ppr run F4

Run everything the paper reports, full protocol, into a file::

    repro-ppr run all --full --out results.txt

Answer a single query from the shell — any registered method name or
alias works, and stochastic methods are reproducible via ``--seed``::

    repro-ppr query dblp-s --source 7 --method powerpush --top 10
    repro-ppr query dblp-s --method speedppr --epsilon 0.2 --seed 42
    repro-ppr query dblp-s --method fora+ --epsilon 0.3

``repro-ppr list`` prints the experiments, the datasets, and every
registered solver with its aliases; ``repro-ppr methods`` prints the
full registry (kind, aliases, capability flags), so users can discover
valid spellings without tripping ``UnknownMethodError``.

Benchmark the dynamic-graph path — incremental refresh vs from-scratch
solves while edge updates stream in::

    repro-ppr update-bench --batches 4 --batch-size 25

Serve queries interactively through the concurrent serving layer
(micro-batching scheduler + versioned result cache), one request per
stdin line — ``SOURCE [METHOD] [key=value ...]``, ``+ U V`` / ``- U V``
for edge updates, ``stats`` for counters::

    echo "7 powerpush l1_threshold=1e-7" | repro-ppr serve dblp-s

Load-test that serving layer against a synthetic Zipfian workload and
compare with the serial one-query-at-a-time baseline::

    repro-ppr loadtest --requests 400 --concurrency 8 --out bench.json

Benchmark the multi-source block kernels — one batched PowerPush solve
vs the per-source loop, with element-wise identity checked — the same
smoke run CI gates on (writes ``results/BENCH_kernels.json``)::

    repro-ppr bench-kernels --batch-sizes 8,32

Run the project-invariant static checker (determinism, backend parity,
lock discipline — the same gate CI runs; see CONTRIBUTING.md)::

    repro-ppr lint src/repro
    repro-ppr lint --list-rules
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any

from repro.api import PPREngine, resolve_method, solver_specs
from repro.api.engine import (
    INCREMENTAL_METHOD_NAMES,
    INCREMENTAL_METHOD_PARAMS,
    is_incremental_method,
)
from repro.errors import ReproError
from repro.experiments.config import bench_config, full_config
from repro.experiments.dynamic import run_dynamic_updates
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments.workspace import Workspace
from repro.generators.datasets import dataset_names, load_dataset

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-ppr",
        description=(
            "Reproduction harness for 'Unifying the Global and Local "
            "Approaches: An Efficient Power Iteration with Forward Push' "
            "(SIGMOD 2021)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a paper experiment")
    run.add_argument(
        "experiment",
        help=f"experiment id ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    run.add_argument(
        "--full",
        action="store_true",
        help="use the paper's full protocol (all datasets, 30 sources)",
    )
    run.add_argument("--out", type=Path, help="also write the report here")

    query = sub.add_parser("query", help="answer one SSPPR query")
    query.add_argument("dataset", choices=dataset_names())
    query.add_argument("--source", type=int, default=0)
    query.add_argument(
        "--method",
        default="powerpush",
        metavar="METHOD",
        help="registered solver name or alias (see 'repro-ppr list')",
    )
    query.add_argument("--alpha", type=float, default=0.2)
    query.add_argument("--l1-threshold", type=float, default=1e-8)
    query.add_argument("--epsilon", type=float, default=0.5)
    query.add_argument("--top", type=int, default=10)
    query.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the stochastic methods (reproducible shell queries)",
    )
    query.add_argument(
        "--backend",
        default=None,
        metavar="BACKEND",
        help=(
            "kernel backend (numpy | numba); default: the "
            "REPRO_PPR_BACKEND environment variable, else numpy"
        ),
    )
    query.add_argument(
        "--reorder",
        choices=("degree", "slashburn"),
        default=None,
        help="serve from a cache-aware reordered copy of the graph",
    )

    sub.add_parser("list", help="list experiments, datasets, and methods")

    sub.add_parser(
        "methods",
        help="print the solver registry (kind, aliases, capability flags)",
    )

    bench = sub.add_parser(
        "update-bench",
        help="benchmark incremental PPR maintenance under edge updates",
    )
    bench.add_argument(
        "--scale", type=int, default=11, help="log2 of the R-MAT id space"
    )
    bench.add_argument(
        "--edges", type=int, default=16_000, help="initial edge count"
    )
    bench.add_argument("--batches", type=int, default=4)
    bench.add_argument(
        "--batch-size", type=int, default=25, help="edge updates per batch"
    )
    bench.add_argument("--alpha", type=float, default=0.2)
    bench.add_argument("--l1-threshold", type=float, default=1e-8)
    bench.add_argument("--seed", type=int, default=2021)
    bench.add_argument(
        "--compact",
        action="store_true",
        help="compact the delta overlay after every batch",
    )
    bench.add_argument("--out", type=Path, help="also write the report here")

    kernels = sub.add_parser(
        "bench-kernels",
        help=(
            "benchmark block (multi-source) PowerPush vs the per-source "
            "loop; writes BENCH_kernels.json"
        ),
    )
    kernels.add_argument(
        "--scale", type=int, default=8, help="log2 of the R-MAT id space"
    )
    kernels.add_argument("--edges", type=int, default=2_000)
    kernels.add_argument(
        "--batch-sizes",
        default="8,32",
        help="comma-separated batch sizes (default 8,32)",
    )
    kernels.add_argument("--l1-threshold", type=float, default=1e-8)
    kernels.add_argument("--alpha", type=float, default=0.2)
    kernels.add_argument("--seed", type=int, default=2021)
    kernels.add_argument(
        "--repeats", type=int, default=3, help="timing runs (best is kept)"
    )
    kernels.add_argument(
        "--backends",
        default="auto",
        metavar="LIST",
        help=(
            "comma-separated kernel backends to compare (default 'auto': "
            "numpy plus numba when importable)"
        ),
    )
    kernels.add_argument(
        "--out",
        type=Path,
        default=Path("results") / "BENCH_kernels.json",
        help="metrics JSON path (default results/BENCH_kernels.json)",
    )

    serve = sub.add_parser(
        "serve",
        help="serve queries from stdin through the concurrent serving layer",
    )
    serve.add_argument("dataset", choices=dataset_names())
    serve.add_argument("--alpha", type=float, default=0.2)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--window",
        type=float,
        default=0.002,
        help="micro-batch window in seconds",
    )
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument(
        "--cache-capacity",
        type=int,
        default=4096,
        help="result-cache entries (0 disables result caching)",
    )
    serve.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        help="result-cache TTL in seconds (default: no expiry)",
    )
    serve.add_argument("--top", type=int, default=5)
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard serving across N worker processes mapping one "
        "shared-memory graph image (0 = in-process thread mode)",
    )
    serve.add_argument(
        "--slo-ms",
        type=float,
        default=None,
        help="serve through the async front door with this latency SLO: "
        "overload degrades to --degrade-l1 or sheds",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request budget; expired requests fail fast with "
        "DeadlineExceeded instead of occupying a batch slot",
    )
    serve.add_argument(
        "--degrade-l1",
        type=float,
        default=1e-4,
        help="l1_threshold of the degraded tier the front door falls "
        "back to when predicted p99 blows --slo-ms",
    )
    serve.add_argument(
        "--max-restarts",
        type=int,
        default=None,
        help="per-shard respawn budget after crashes (sharded mode; "
        "0 disables supervision, default: dispatcher's policy)",
    )
    serve.add_argument(
        "--wal-dir",
        type=Path,
        default=None,
        help="durable state directory: edge updates are written to a "
        "fsynced write-ahead log before the ack and recovered from "
        "checkpoint + WAL replay on restart",
    )
    serve.add_argument(
        "--no-wal-fsync",
        action="store_true",
        help="skip per-record fsync on the WAL (faster, loses the "
        "power-failure guarantee; crash-safe against process death only)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="emit a durable checkpoint every N applied updates "
        "(default: checkpoint only on compaction/demand)",
    )

    loadtest = sub.add_parser(
        "loadtest",
        help="benchmark the serving layer against a serial baseline",
    )
    loadtest.add_argument(
        "--scale", type=int, default=10, help="log2 of the R-MAT id space"
    )
    loadtest.add_argument("--edges", type=int, default=8_000)
    loadtest.add_argument("--requests", type=int, default=400)
    loadtest.add_argument(
        "--sources", type=int, default=48, help="Zipfian hot-set size"
    )
    loadtest.add_argument("--zipf", type=float, default=1.1)
    loadtest.add_argument(
        "--read-fraction",
        type=float,
        default=1.0,
        help="query fraction; the rest are edge updates (soak mode)",
    )
    loadtest.add_argument(
        "--arrival",
        choices=("closed", "open"),
        default="closed",
        help="closed: worker pool; open: Poisson arrivals at --rate",
    )
    loadtest.add_argument(
        "--rate", type=float, default=500.0, help="open-loop arrivals/second"
    )
    loadtest.add_argument("--concurrency", type=int, default=8)
    loadtest.add_argument("--window", type=float, default=0.002)
    loadtest.add_argument("--max-batch", type=int, default=64)
    loadtest.add_argument("--cache-capacity", type=int, default=4096)
    loadtest.add_argument("--method", default="powerpush")
    loadtest.add_argument("--alpha", type=float, default=0.2)
    loadtest.add_argument("--l1-threshold", type=float, default=1e-7)
    loadtest.add_argument("--epsilon", type=float, default=0.5)
    loadtest.add_argument("--seed", type=int, default=2021)
    loadtest.add_argument(
        "--out", type=Path, help="also write the metrics JSON here"
    )
    loadtest.add_argument(
        "--workers",
        type=int,
        default=0,
        help="serve through N shard processes over a shared-memory "
        "graph image instead of the thread-based server",
    )
    loadtest.add_argument(
        "--slo-ms",
        type=float,
        default=None,
        help="drive through the SLO-aware async front door (open "
        "arrival only); reports goodput under this SLO",
    )
    loadtest.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request budget for the front-door drive",
    )
    loadtest.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="admission bound: arrivals beyond this many in-flight "
        "requests are shed",
    )
    loadtest.add_argument(
        "--degrade-l1",
        type=float,
        default=1e-4,
        help="l1_threshold of the degraded tier under overload",
    )
    loadtest.add_argument(
        "--chaos",
        action="store_true",
        help="inject a seeded fault schedule into the sharded run "
        "(requires --workers >= 1); worker supervision and bounded "
        "retries must recover every request",
    )
    loadtest.add_argument(
        "--chaos-kills",
        type=int,
        default=1,
        help="SIGKILLed workers in the chaos schedule",
    )
    loadtest.add_argument(
        "--chaos-stops",
        type=int,
        default=0,
        help="SIGSTOP/SIGCONT pairs in the chaos schedule",
    )
    loadtest.add_argument(
        "--chaos-drops",
        type=int,
        default=0,
        help="worker replies swallowed (needs --request-timeout to "
        "recover)",
    )
    loadtest.add_argument(
        "--chaos-delays",
        type=int,
        default=0,
        help="worker replies delayed in the chaos schedule",
    )
    loadtest.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="fault-schedule seed (defaults to --seed)",
    )
    loadtest.add_argument(
        "--max-restarts",
        type=int,
        default=None,
        help="per-shard respawn budget after crashes (0 disables "
        "supervision, default: dispatcher's policy)",
    )
    loadtest.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        help="per-request hang detector in seconds, driving "
        "deadline-aware bounded retries",
    )

    from repro.analysis.runner import add_lint_arguments

    lint = sub.add_parser(
        "lint",
        help=(
            "run the project-invariant static checker "
            "(determinism, backend parity, lock discipline)"
        ),
    )
    add_lint_arguments(lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "methods":
            return _cmd_methods()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "update-bench":
            return _cmd_update_bench(args)
        if args.command == "bench-kernels":
            return _cmd_bench_kernels(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "loadtest":
            return _cmd_loadtest(args)
        if args.command == "lint":
            return _cmd_lint(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")  # pragma: no cover


def _cmd_list() -> int:
    from repro.backends import available_backends, registered_backends

    print("experiments:")
    for key, (description, _) in EXPERIMENTS.items():
        print(f"  {key}: {description}")
    print("datasets:")
    for name in dataset_names():
        print(f"  {name}")
    print("methods:")
    for spec in solver_specs():
        aliases = f" (aliases: {', '.join(spec.aliases)})" if spec.aliases else ""
        print(f"  {spec.name} [{spec.kind}]{aliases}: {spec.summary}")
    print("backends:")
    usable = set(available_backends())
    for name in registered_backends():
        status = "available" if name in usable else "not installed (falls back to numpy)"
        print(f"  {name}: {status}")
    return 0


def _cmd_methods() -> int:
    """The full solver registry, one block per method."""
    for spec in solver_specs():
        print(f"{spec.name} [{spec.kind}]")
        print(f"  {spec.summary}")
        if spec.aliases:
            print(f"  aliases : {', '.join(spec.aliases)}")
        flags = [
            label
            for label, enabled in (
                ("needs-rng", spec.needs_rng),
                ("walk-index", spec.needs_walk_index),
                ("precomputation", spec.needs_precomputation),
                ("index-by-default", spec.index_by_default),
            )
            if enabled
        ]
        print(f"  flags   : {', '.join(flags) if flags else '-'}")
        print(f"  params  : {', '.join(spec.params)}")
    canonical, *aliases = INCREMENTAL_METHOD_NAMES
    print(f"{canonical} [engine]")
    print(
        "  Tracked-source maintenance on a DynamicGraph (engine-level, "
        "resolved by PPREngine rather than the registry)"
    )
    print(f"  aliases : {', '.join(aliases)}")
    print(f"  params  : {', '.join(INCREMENTAL_METHOD_PARAMS)}")
    return 0


def _cmd_update_bench(args: argparse.Namespace) -> int:
    result = run_dynamic_updates(
        scale=args.scale,
        num_edges=args.edges,
        num_batches=args.batches,
        batch_size=args.batch_size,
        alpha=args.alpha,
        l1_threshold=args.l1_threshold,
        seed=args.seed,
        compact_every_batch=args.compact,
    )
    report = result.render()
    print(report)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report + "\n")
    return 0


def _cmd_bench_kernels(args: argparse.Namespace) -> int:
    """Block vs per-source batch solve; exit 1 on answer divergence."""
    from repro.perf import run_kernel_bench

    batch_sizes = tuple(
        int(token) for token in args.batch_sizes.split(",") if token.strip()
    )
    if not batch_sizes:
        raise ReproError("--batch-sizes needs at least one integer")
    report = run_kernel_bench(
        scale=args.scale,
        edges=args.edges,
        batch_sizes=batch_sizes,
        l1_threshold=args.l1_threshold,
        alpha=args.alpha,
        seed=args.seed,
        repeats=args.repeats,
        backends=args.backends,
    )
    print(report.render())
    path = report.write_json(args.out)
    print(f"metrics written to {path}")
    verdict = report.assessment(target_speedup=3.0)
    print(verdict)
    return 1 if verdict.startswith("FAIL") else 0


def _parse_request_value(text: str):
    """Best-effort typed parse of a ``key=value`` request parameter."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return text


def _cmd_serve(args: argparse.Namespace) -> int:
    """Interactive/pipe server: one request per stdin line.

    ``SOURCE [METHOD] [key=value ...]`` answers a query through the
    scheduler + cache; ``+ U V`` / ``- U V`` applies an edge update
    (dataset graphs are wrapped in a DynamicGraph so the writer path
    works); ``stats`` prints the serving counters; ``quit`` or EOF
    stops.
    """
    import asyncio

    from repro.graph.dynamic import DynamicGraph
    from repro.serving import AsyncFrontDoor, EngineServer, ShardedDispatcher

    dynamic = DynamicGraph(load_dataset(args.dataset))
    durable_kwargs: dict[str, Any] = {}
    if args.wal_dir is not None:
        durable_kwargs = {
            "wal_dir": args.wal_dir,
            "wal_fsync": not args.no_wal_fsync,
            "checkpoint_every": args.checkpoint_every,
        }
    if args.workers:
        server: EngineServer | ShardedDispatcher = ShardedDispatcher(
            dynamic,
            workers=args.workers,
            alpha=args.alpha,
            seed=args.seed,
            window=args.window,
            max_batch=args.max_batch,
            cache_capacity=args.cache_capacity,
            cache_ttl=args.cache_ttl,
            max_restarts=args.max_restarts,
            **durable_kwargs,
        )
        mode = f"{args.workers} shard processes, shared-memory graph"
    else:
        server = EngineServer(
            dynamic,
            alpha=args.alpha,
            seed=args.seed,
            window=args.window,
            max_batch=args.max_batch,
            cache_capacity=args.cache_capacity,
            cache_ttl=args.cache_ttl,
            **durable_kwargs,
        )
        mode = "in-process threads"
    if args.wal_dir is not None:
        recovered = server.graph_version
        fsync_note = "fsync off" if args.no_wal_fsync else "fsync on"
        mode += f", durable wal={args.wal_dir} ({fsync_note})"
        if recovered:
            print(
                f"recovered durable state at version {recovered} "
                f"from {args.wal_dir}"
            )
    door: AsyncFrontDoor | None = None
    if args.slo_ms is not None or args.deadline_ms is not None:
        door = AsyncFrontDoor(
            server,
            slo_ms=args.slo_ms,
            deadline_ms=args.deadline_ms,
            degrade_params={"l1_threshold": args.degrade_l1},
        )
        mode += (
            f", async front door (slo={args.slo_ms}ms, "
            f"deadline={args.deadline_ms}ms)"
        )
    print(
        f"serving {args.dataset} (n={dynamic.num_nodes}, "
        f"m={dynamic.num_edges}; {mode}); one request per line "
        f"(SOURCE [METHOD] [key=value ...], '+ U V', '- U V', 'stats')"
    )
    with server:
        for line in sys.stdin:
            tokens = line.split()
            if not tokens:
                continue
            head = tokens[0]
            if head in ("quit", "exit"):
                break
            try:
                if head == "stats":
                    _print_server_stats(server)
                    if door is not None:
                        snap = door.snapshot()
                        print(
                            f"frontdoor: completed={snap['completed']} "
                            f"degraded={snap['degraded']} "
                            f"shed={snap['shed']} "
                            f"deadline_expired={snap['deadline_expired']}"
                        )
                elif head in ("+", "-"):
                    if len(tokens) != 3:
                        raise ReproError(f"usage: {head} U V")
                    version = server.apply_updates(
                        [(head, int(tokens[1]), int(tokens[2]))]
                    )
                    print(f"ok: graph now at version {version}")
                else:
                    source = int(head)
                    rest = tokens[1:]
                    method = "powerpush"
                    if rest and "=" not in rest[0]:
                        method = rest[0]
                        rest = rest[1:]
                    bad = [token for token in rest if "=" not in token]
                    if bad:
                        # Refuse rather than silently answer with
                        # defaults the user didn't ask for.
                        raise ReproError(
                            f"unparseable request token(s) "
                            f"{' '.join(bad)!r}: expected key=value"
                        )
                    params = {
                        key: _parse_request_value(value)
                        for key, value in (
                            token.split("=", 1) for token in rest
                        )
                    }
                    if door is not None:
                        served = asyncio.run(
                            door.submit(source, method, **params)
                        )
                    else:
                        served = server.query(source, method, **params)
                    origin = "cache" if served.cache_hit else (
                        f"batch of {served.batch_size}"
                    )
                    if served.degraded:
                        origin += ", degraded"
                    if served.worker is not None:
                        origin += f", shard {served.worker}"
                    print(
                        f"{served.result.method} source={source} "
                        f"version={served.version} ({origin}, "
                        f"{served.result.seconds:.4f}s)"
                    )
                    for rank, (node, score) in enumerate(
                        served.result.top_k(args.top), start=1
                    ):
                        print(f"  #{rank:<3d} node {node:<8d} ppr={score:.6e}")
            except Exception as exc:  # noqa: BLE001 - per-request isolation
                # One bad request must not end the session: report it
                # on this line's output and keep reading stdin.
                print(f"error: {exc}")
    return 0


def _print_server_stats(server) -> None:
    stats = server.stats()
    scheduler = stats["scheduler"]
    cache = stats["cache"]
    hit_rate = stats.get(
        "hit_rate_at_submit", cache.get("hit_rate", 0.0) if cache else 0.0
    )
    print(
        f"requests={stats['requests']} "
        f"graph_version={stats['graph_version']} "
        f"hit_rate={hit_rate:.2%}"
    )
    print(
        f"scheduler: batches={scheduler['batches']} "
        f"engine_calls={scheduler['engine_calls']} "
        f"batching_factor={scheduler['batching_factor']:.2f}"
    )
    if cache:
        print(
            f"cache: hits={cache['hits']} misses={cache['misses']} "
            f"stale_drops={cache['stale_drops']} "
            f"invalidations={cache['invalidations']}"
        )
    if "per_worker" in stats:
        print(
            f"shards: workers={stats['workers']} "
            f"rerouted={stats['rerouted']} "
            f"worker_failures={stats['worker_failures']}"
        )
        for worker_id, worker in sorted(stats["per_worker"].items()):
            print(
                f"  shard {worker_id}: requests={worker['requests']} "
                f"hit_rate={worker['cache'].get('hit_rate', 0.0):.2%} "
                f"batching={worker['scheduler']['batching_factor']:.2f}"
            )


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.generators.rmat import rmat_digraph
    from repro.graph.dynamic import DynamicGraph
    from repro.serving import WorkloadGenerator, run_loadtest

    spec, implied = resolve_method(args.method)
    candidates = {
        "l1_threshold": args.l1_threshold,
        "epsilon": args.epsilon,
        "seed": args.seed,
    }
    params = dict(implied)
    params.update(
        {k: v for k, v in candidates.items() if spec.accepts(k)}
    )

    # One shared immutable base; each run layers its own overlay (or
    # queries it directly), so nothing is generated twice.
    base = rmat_digraph(
        args.scale,
        args.edges,
        rng=np.random.default_rng(args.seed),
        name="loadtest-rmat",
    )

    def make_graph():
        if args.read_fraction < 1.0:
            return DynamicGraph(base)
        return base

    workload = WorkloadGenerator(
        base.num_nodes,
        num_sources=args.sources,
        zipf_exponent=args.zipf,
        read_fraction=args.read_fraction,
        arrival=args.arrival,
        arrival_rate=args.rate,
        seed=args.seed,
    ).generate(args.requests)
    chaos = None
    if args.chaos:
        from repro.serving import FaultInjector

        chaos = FaultInjector.random_schedule(
            workers=args.workers,
            requests=args.requests,
            kills=args.chaos_kills,
            stops=args.chaos_stops,
            drops=args.chaos_drops,
            delays=args.chaos_delays,
            seed=(
                args.chaos_seed
                if args.chaos_seed is not None
                else args.seed
            ),
        )
    report = run_loadtest(
        make_graph,
        workload,
        method=args.method,
        params=params,
        alpha=args.alpha,
        seed=args.seed,
        concurrency=args.concurrency,
        window=args.window,
        max_batch=args.max_batch,
        cache_capacity=args.cache_capacity,
        workers=args.workers,
        slo_ms=args.slo_ms,
        deadline_ms=args.deadline_ms,
        max_inflight=args.max_inflight,
        degrade_params=(
            {"l1_threshold": args.degrade_l1}
            if (args.slo_ms is not None or args.deadline_ms is not None)
            and spec.accepts("l1_threshold")
            else None
        ),
        chaos=chaos,
        max_restarts=args.max_restarts,
        request_timeout=args.request_timeout,
    )
    print(report.render())
    if args.out is not None:
        path = report.write_json(args.out)
        print(f"metrics written to {path}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.runner import lint_from_args

    return lint_from_args(args)


def _cmd_run(args: argparse.Namespace) -> int:
    config = full_config() if args.full else bench_config()
    workspace = Workspace(config)
    ids = list(EXPERIMENTS) if args.experiment.lower() == "all" else [args.experiment]
    chunks = []
    for experiment_id in ids:
        result = run_experiment(experiment_id, workspace)
        chunks.append(result.render())
    report = "\n\n".join(chunks)
    print(report)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report + "\n")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if is_incremental_method(args.method):
        # Engine-level method: wrap the dataset so the engine can track
        # (a one-shot CLI query just pays the initial solve).
        from repro.graph.dynamic import DynamicGraph

        dynamic = DynamicGraph(load_dataset(args.dataset))
        # reorder= is rejected by the engine for dynamic graphs; pass it
        # through so the user gets the real error, not a silent drop.
        engine = PPREngine(
            dynamic,
            alpha=args.alpha,
            seed=args.seed,
            backend=args.backend,
            reorder=args.reorder,
        )
        result = engine.query(
            args.source,
            method="incremental",
            l1_threshold=args.l1_threshold,
        )
        return _print_query_result(args, dynamic.base, result)
    spec, implied = resolve_method(args.method)  # fail fast, pre dataset load
    graph = load_dataset(args.dataset)
    engine = PPREngine(
        graph,
        alpha=args.alpha,
        seed=args.seed,
        backend=args.backend,
        reorder=args.reorder,
    )
    # Offer the full unified parameter set; the spec keeps what it knows.
    candidates = {
        "l1_threshold": args.l1_threshold,
        "epsilon": args.epsilon,
        "seed": args.seed,
    }
    params = {k: v for k, v in candidates.items() if spec.accepts(k)}
    if spec.needs_walk_index and "use_index" not in implied:
        # One query per process: building a full walk index costs more
        # than it saves.  Index variants (speedppr-index, fora+) opt in.
        params["use_index"] = False
    result = engine.query(args.source, method=args.method, **params)
    return _print_query_result(args, graph, result)


def _print_query_result(args: argparse.Namespace, graph, result) -> int:
    print(
        f"{result.method} on {args.dataset} (n={graph.num_nodes}, "
        f"m={graph.num_edges}), source={args.source}: "
        f"{result.seconds:.4f}s"
    )
    for rank, (node, score) in enumerate(result.top_k(args.top), start=1):
        print(f"  #{rank:<3d} node {node:<8d} ppr={score:.6e}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
