"""Command-line interface: ``repro-ppr``.

Examples
--------
Run one experiment on the default bench configuration::

    repro-ppr run F4

Run everything the paper reports, full protocol, into a file::

    repro-ppr run all --full --out results.txt

Answer a single query from the shell — any registered method name or
alias works, and stochastic methods are reproducible via ``--seed``::

    repro-ppr query dblp-s --source 7 --method powerpush --top 10
    repro-ppr query dblp-s --method speedppr --epsilon 0.2 --seed 42
    repro-ppr query dblp-s --method fora+ --epsilon 0.3

``repro-ppr list`` prints the experiments, the datasets, and every
registered solver with its aliases; ``repro-ppr methods`` prints the
full registry (kind, aliases, capability flags), so users can discover
valid spellings without tripping ``UnknownMethodError``.

Benchmark the dynamic-graph path — incremental refresh vs from-scratch
solves while edge updates stream in::

    repro-ppr update-bench --batches 4 --batch-size 25
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.api import PPREngine, resolve_method, solver_specs
from repro.api.engine import (
    INCREMENTAL_METHOD_NAMES,
    INCREMENTAL_METHOD_PARAMS,
    is_incremental_method,
)
from repro.errors import ReproError
from repro.experiments.config import bench_config, full_config
from repro.experiments.dynamic import run_dynamic_updates
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments.workspace import Workspace
from repro.generators.datasets import dataset_names, load_dataset

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-ppr",
        description=(
            "Reproduction harness for 'Unifying the Global and Local "
            "Approaches: An Efficient Power Iteration with Forward Push' "
            "(SIGMOD 2021)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a paper experiment")
    run.add_argument(
        "experiment",
        help=f"experiment id ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    run.add_argument(
        "--full",
        action="store_true",
        help="use the paper's full protocol (all datasets, 30 sources)",
    )
    run.add_argument("--out", type=Path, help="also write the report here")

    query = sub.add_parser("query", help="answer one SSPPR query")
    query.add_argument("dataset", choices=dataset_names())
    query.add_argument("--source", type=int, default=0)
    query.add_argument(
        "--method",
        default="powerpush",
        metavar="METHOD",
        help="registered solver name or alias (see 'repro-ppr list')",
    )
    query.add_argument("--alpha", type=float, default=0.2)
    query.add_argument("--l1-threshold", type=float, default=1e-8)
    query.add_argument("--epsilon", type=float, default=0.5)
    query.add_argument("--top", type=int, default=10)
    query.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the stochastic methods (reproducible shell queries)",
    )

    sub.add_parser("list", help="list experiments, datasets, and methods")

    sub.add_parser(
        "methods",
        help="print the solver registry (kind, aliases, capability flags)",
    )

    bench = sub.add_parser(
        "update-bench",
        help="benchmark incremental PPR maintenance under edge updates",
    )
    bench.add_argument(
        "--scale", type=int, default=11, help="log2 of the R-MAT id space"
    )
    bench.add_argument(
        "--edges", type=int, default=16_000, help="initial edge count"
    )
    bench.add_argument("--batches", type=int, default=4)
    bench.add_argument(
        "--batch-size", type=int, default=25, help="edge updates per batch"
    )
    bench.add_argument("--alpha", type=float, default=0.2)
    bench.add_argument("--l1-threshold", type=float, default=1e-8)
    bench.add_argument("--seed", type=int, default=2021)
    bench.add_argument(
        "--compact",
        action="store_true",
        help="compact the delta overlay after every batch",
    )
    bench.add_argument("--out", type=Path, help="also write the report here")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "methods":
            return _cmd_methods()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "update-bench":
            return _cmd_update_bench(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")  # pragma: no cover


def _cmd_list() -> int:
    print("experiments:")
    for key, (description, _) in EXPERIMENTS.items():
        print(f"  {key}: {description}")
    print("datasets:")
    for name in dataset_names():
        print(f"  {name}")
    print("methods:")
    for spec in solver_specs():
        aliases = f" (aliases: {', '.join(spec.aliases)})" if spec.aliases else ""
        print(f"  {spec.name} [{spec.kind}]{aliases}: {spec.summary}")
    return 0


def _cmd_methods() -> int:
    """The full solver registry, one block per method."""
    for spec in solver_specs():
        print(f"{spec.name} [{spec.kind}]")
        print(f"  {spec.summary}")
        if spec.aliases:
            print(f"  aliases : {', '.join(spec.aliases)}")
        flags = [
            label
            for label, enabled in (
                ("needs-rng", spec.needs_rng),
                ("walk-index", spec.needs_walk_index),
                ("precomputation", spec.needs_precomputation),
                ("index-by-default", spec.index_by_default),
            )
            if enabled
        ]
        print(f"  flags   : {', '.join(flags) if flags else '-'}")
        print(f"  params  : {', '.join(spec.params)}")
    canonical, *aliases = INCREMENTAL_METHOD_NAMES
    print(f"{canonical} [engine]")
    print(
        "  Tracked-source maintenance on a DynamicGraph (engine-level, "
        "resolved by PPREngine rather than the registry)"
    )
    print(f"  aliases : {', '.join(aliases)}")
    print(f"  params  : {', '.join(INCREMENTAL_METHOD_PARAMS)}")
    return 0


def _cmd_update_bench(args: argparse.Namespace) -> int:
    result = run_dynamic_updates(
        scale=args.scale,
        num_edges=args.edges,
        num_batches=args.batches,
        batch_size=args.batch_size,
        alpha=args.alpha,
        l1_threshold=args.l1_threshold,
        seed=args.seed,
        compact_every_batch=args.compact,
    )
    report = result.render()
    print(report)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report + "\n")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = full_config() if args.full else bench_config()
    workspace = Workspace(config)
    ids = list(EXPERIMENTS) if args.experiment.lower() == "all" else [args.experiment]
    chunks = []
    for experiment_id in ids:
        result = run_experiment(experiment_id, workspace)
        chunks.append(result.render())
    report = "\n\n".join(chunks)
    print(report)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report + "\n")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if is_incremental_method(args.method):
        # Engine-level method: wrap the dataset so the engine can track
        # (a one-shot CLI query just pays the initial solve).
        from repro.graph.dynamic import DynamicGraph

        dynamic = DynamicGraph(load_dataset(args.dataset))
        engine = PPREngine(dynamic, alpha=args.alpha, seed=args.seed)
        result = engine.query(
            args.source,
            method="incremental",
            l1_threshold=args.l1_threshold,
        )
        return _print_query_result(args, dynamic.base, result)
    spec, implied = resolve_method(args.method)  # fail fast, pre dataset load
    graph = load_dataset(args.dataset)
    engine = PPREngine(graph, alpha=args.alpha, seed=args.seed)
    # Offer the full unified parameter set; the spec keeps what it knows.
    candidates = {
        "l1_threshold": args.l1_threshold,
        "epsilon": args.epsilon,
        "seed": args.seed,
    }
    params = {k: v for k, v in candidates.items() if spec.accepts(k)}
    if spec.needs_walk_index and "use_index" not in implied:
        # One query per process: building a full walk index costs more
        # than it saves.  Index variants (speedppr-index, fora+) opt in.
        params["use_index"] = False
    result = engine.query(args.source, method=args.method, **params)
    return _print_query_result(args, graph, result)


def _print_query_result(args: argparse.Namespace, graph, result) -> int:
    print(
        f"{result.method} on {args.dataset} (n={graph.num_nodes}, "
        f"m={graph.num_edges}), source={args.source}: "
        f"{result.seconds:.4f}s"
    )
    for rank, (node, score) in enumerate(result.top_k(args.top), start=1):
        print(f"  #{rank:<3d} node {node:<8d} ppr={score:.6e}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
