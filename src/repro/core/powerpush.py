"""PowerPush — Power Iteration with Forward Push (paper Algorithm 3).

PowerPush is the paper's first contribution: an implementation of
Power Iteration that unifies the *local* strength of Forward Push
(work proportional to the frontier while the mass is concentrated) with
the *global* strength of Power Iteration (cache-friendly sequential
scans once the frontier is wide).  Three ingredients (Section 5):

1. **Asynchronous pushes** — within a phase, pushes use the freshest
   residues, so one push can do the work of several synchronous ones.
2. **Queue-to-scan switch** — start with a FIFO queue; once the number
   of active nodes exceeds ``scan_threshold`` (default ``n / 4``),
   switch to sequential scans over the concatenated edge array.
3. **Dynamic l1-threshold epochs** — run ``epoch_num`` (default 8)
   epochs with geometrically shrinking error targets
   ``lambda^(i/epoch_num)``; the larger early thresholds mean early
   pushes all have high unit-cost benefit, letting residues accumulate
   before being pushed and cutting the total number of residue updates.

Like the other algorithms, PowerPush has a *faithful* scalar mode
matching Algorithm 3 line for line, and a *vectorised* mode where each
scan pass is a simultaneous masked sweep (the asynchronous-within-scan
refinement is then approximated by running passes to the epoch target;
the epoch structure and queue phase are identical).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Literal

import numpy as np

from repro.core.kernels import frontier_push, sweep_active
from repro.core.residues import DeadEndPolicy, PushState
from repro.core.result import PPRResult
from repro.core.validation import (
    check_alpha,
    check_l1_threshold,
    check_source,
)
from repro.errors import ConvergenceError, ParameterError
from repro.graph.digraph import DiGraph
from repro.instrumentation.tracing import ConvergenceTrace

__all__ = ["power_push", "PowerPushConfig"]

Mode = Literal["faithful", "vectorized", "auto"]


class PowerPushConfig:
    """Tunable constants of Algorithm 3.

    Attributes
    ----------
    epoch_num:
        Number of dynamic-threshold epochs (paper default 8).
    scan_threshold_fraction:
        Queue-to-scan switch point as a fraction of ``n`` (paper uses
        ``n / 4``).  Set to 0 to disable the queue phase entirely
        (pure global scans) or to ``float('inf')`` to never switch
        (pure FIFO) — both used by the ablation benchmark.
    """

    __slots__ = ("epoch_num", "scan_threshold_fraction")

    def __init__(
        self,
        epoch_num: int = 8,
        scan_threshold_fraction: float = 0.25,
    ) -> None:
        if epoch_num < 1:
            raise ParameterError(f"epoch_num must be >= 1, got {epoch_num}")
        if scan_threshold_fraction < 0:
            raise ParameterError(
                "scan_threshold_fraction must be >= 0, got "
                f"{scan_threshold_fraction}"
            )
        self.epoch_num = int(epoch_num)
        self.scan_threshold_fraction = float(scan_threshold_fraction)

    def scan_threshold(self, num_nodes: int) -> float:
        """Active-node count above which the scan phase takes over."""
        return self.scan_threshold_fraction * num_nodes


def power_push(
    graph: DiGraph,
    source: int,
    *,
    alpha: float = 0.2,
    l1_threshold: float = 1e-8,
    config: PowerPushConfig | None = None,
    mode: Mode = "auto",
    dead_end_policy: DeadEndPolicy = "redirect-to-source",
    trace: ConvergenceTrace | None = None,
    max_work_factor: float = 64.0,
) -> PPRResult:
    """Answer a high-precision SSPPR query with PowerPush (Algorithm 3).

    Returns a :class:`PPRResult` whose ``estimate`` satisfies
    ``||estimate - pi_s||_1 = sum(residue) <= l1_threshold``.

    Parameters
    ----------
    config:
        Epoch count and scan threshold; defaults to the paper's
        constants (``epoch_num=8``, ``scan_threshold=n/4``).
    mode:
        ``"faithful"`` runs the scalar pseudo-code; ``"vectorized"``
        (chosen by ``"auto"``) runs the NumPy kernels.
    max_work_factor:
        Safety multiplier on the theoretical sweep budget before a
        :class:`ConvergenceError` is raised.
    """
    check_alpha(alpha)
    check_source(graph, source)
    check_l1_threshold(l1_threshold)
    if config is None:
        config = PowerPushConfig()
    if mode == "auto":
        mode = "vectorized"
    if mode not in ("faithful", "vectorized"):
        raise ParameterError(f"unknown mode {mode!r}")

    started = time.perf_counter()
    state = PushState(graph, source, alpha, dead_end_policy=dead_end_policy)
    if trace is not None:
        trace.restart_clock()
        trace.record(0, state.r_sum)

    if graph.num_edges == 0:
        # Only teleport mass exists: the answer is e_s after one push.
        state.push(source)
        state.reserve[source] = 1.0
        state.residue[:] = 0.0
        state.refresh_r_sum()
    elif mode == "faithful":
        _run_faithful(state, l1_threshold, config, trace, max_work_factor)
    else:
        _run_vectorized(state, l1_threshold, config, trace, max_work_factor)

    state.refresh_r_sum()
    if trace is not None:
        trace.record(state.counters.residue_updates, state.r_sum)
    return PPRResult(
        estimate=state.reserve,
        residue=state.residue,
        source=source,
        alpha=alpha,
        counters=state.counters,
        trace=trace,
        seconds=time.perf_counter() - started,
        method="PowerPush",
    )


# ----------------------------------------------------------------------
# Faithful scalar implementation (Algorithm 3 verbatim)
# ----------------------------------------------------------------------
def _run_faithful(
    state: PushState,
    l1_threshold: float,
    config: PowerPushConfig,
    trace: ConvergenceTrace | None,
    max_work_factor: float,
) -> None:
    graph = state.graph
    n, m = graph.num_nodes, graph.num_edges
    r_max = l1_threshold / m
    scan_threshold = config.scan_threshold(n)
    budget = _push_budget(state.alpha, l1_threshold, m, max_work_factor)

    # --- Queue phase (Lines 4-13) -------------------------------------
    queue: deque[int] = deque()
    in_queue = bytearray(n)
    if state.is_active(state.source, r_max):
        queue.append(state.source)
        in_queue[state.source] = 1
        state.counters.queue_appends += 1
    while queue and len(queue) <= scan_threshold and state.r_sum > l1_threshold:
        v = queue.popleft()
        in_queue[v] = 0
        state.push(v)
        _check_budget(state, budget)
        for u in graph.out_neighbors(v):
            if not in_queue[u] and state.is_active(u, r_max):
                queue.append(int(u))
                in_queue[u] = 1
                state.counters.queue_appends += 1
        if trace is not None:
            trace.maybe_record(state.counters.residue_updates, state.r_sum)

    # --- Sequential-scan phase with dynamic thresholds (Lines 14-24) --
    if state.refresh_r_sum() > l1_threshold:
        for epoch in range(1, config.epoch_num + 1):
            state.counters.bump("epochs")
            epoch_r_max = l1_threshold ** (epoch / config.epoch_num) / m
            while state.r_sum > m * epoch_r_max:
                progressed = False
                for v in range(n):
                    if state.is_active(v, epoch_r_max):
                        state.push(v)
                        progressed = True
                        _check_budget(state, budget)
                state.refresh_r_sum()
                if trace is not None:
                    trace.maybe_record(
                        state.counters.residue_updates, state.r_sum
                    )
                if not progressed:
                    break


# ----------------------------------------------------------------------
# Vectorised implementation
# ----------------------------------------------------------------------
def _run_vectorized(
    state: PushState,
    l1_threshold: float,
    config: PowerPushConfig,
    trace: ConvergenceTrace | None,
    max_work_factor: float,
) -> None:
    graph = state.graph
    n, m = graph.num_nodes, graph.num_edges
    r_max = l1_threshold / m
    scan_threshold = config.scan_threshold(n)
    budget = _push_budget(state.alpha, l1_threshold, m, max_work_factor)

    # --- Queue phase: batched FIFO frontiers --------------------------
    # Each batch simultaneously pushes the current active set, which is
    # the S(j) iteration structure of Section 4.2; we stay in this
    # phase while the frontier is small.
    while state.r_sum > l1_threshold:
        frontier = state.active_nodes(r_max)
        if frontier.shape[0] == 0 or frontier.shape[0] > scan_threshold:
            break
        frontier_push(state, frontier)
        state.counters.queue_appends += frontier.shape[0]
        _check_budget(state, budget)
        if trace is not None:
            trace.maybe_record(state.counters.residue_updates, state.r_sum)

    # --- Scan phase with dynamic thresholds ---------------------------
    if state.refresh_r_sum() > l1_threshold:
        degree_f = state.effective_out_degree.astype(np.float64)
        for epoch in range(1, config.epoch_num + 1):
            state.counters.bump("epochs")
            epoch_r_max = l1_threshold ** (epoch / config.epoch_num) / m
            threshold_vec = degree_f * epoch_r_max
            while state.r_sum > m * epoch_r_max:
                pushed = sweep_active(
                    state, epoch_r_max, threshold_vec=threshold_vec
                )
                if pushed == 0:
                    state.refresh_r_sum()
                    break
                _check_budget(state, budget)
                if trace is not None:
                    trace.maybe_record(
                        state.counters.residue_updates, state.r_sum
                    )


def _push_budget(
    alpha: float, l1_threshold: float, m: int, max_work_factor: float
) -> int:
    """Residue-update budget from the O(m log(1/lambda)) bound."""
    import math

    log_term = math.log(max(1.0 / l1_threshold, 2.0))
    return int(max_work_factor * (m * (log_term + 1.0) / alpha + m)) + 1024


def _check_budget(state: PushState, budget: int) -> None:
    if state.counters.residue_updates > budget:
        raise ConvergenceError(
            f"PowerPush exceeded its work budget ({budget} residue updates); "
            f"r_sum={state.refresh_r_sum():.3e}"
        )
