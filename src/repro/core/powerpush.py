"""PowerPush — Power Iteration with Forward Push (paper Algorithm 3).

PowerPush is the paper's first contribution: an implementation of
Power Iteration that unifies the *local* strength of Forward Push
(work proportional to the frontier while the mass is concentrated) with
the *global* strength of Power Iteration (cache-friendly sequential
scans once the frontier is wide).  Three ingredients (Section 5):

1. **Asynchronous pushes** — within a phase, pushes use the freshest
   residues, so one push can do the work of several synchronous ones.
2. **Queue-to-scan switch** — start with a FIFO queue; once the number
   of active nodes exceeds ``scan_threshold`` (default ``n / 4``),
   switch to sequential scans over the concatenated edge array.
3. **Dynamic l1-threshold epochs** — run ``epoch_num`` (default 8)
   epochs with geometrically shrinking error targets
   ``lambda^(i/epoch_num)``; the larger early thresholds mean early
   pushes all have high unit-cost benefit, letting residues accumulate
   before being pushed and cutting the total number of residue updates.

Like the other algorithms, PowerPush has a *faithful* scalar mode
matching Algorithm 3 line for line, and a *vectorised* mode where each
scan pass is a simultaneous masked sweep (the asynchronous-within-scan
refinement is then approximated by running passes to the epoch target;
the epoch structure and queue phase are identical).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Literal

import numpy as np

from repro.backends import KernelBackend, active_backend
from repro.core.kernels import (
    DENSE_SWEEP_FRACTION,
    block_frontier_push,
    block_global_sweep,
    frontier_push,
    sweep_active,
)
from repro.core.residues import BlockPushState, DeadEndPolicy, PushState
from repro.core.result import PPRResult
from repro.core.validation import (
    check_alpha,
    check_l1_threshold,
    check_source,
)
from repro.core.workspace import Workspace
from repro.errors import ConvergenceError, ParameterError
from repro.graph.digraph import DiGraph
from repro.instrumentation.tracing import ConvergenceTrace

__all__ = ["power_push", "power_push_block", "PowerPushConfig"]

Mode = Literal["faithful", "vectorized", "auto"]


class PowerPushConfig:
    """Tunable constants of Algorithm 3.

    Attributes
    ----------
    epoch_num:
        Number of dynamic-threshold epochs (paper default 8).
    scan_threshold_fraction:
        Queue-to-scan switch point as a fraction of ``n`` (paper uses
        ``n / 4``).  Set to 0 to disable the queue phase entirely
        (pure global scans) or to ``float('inf')`` to never switch
        (pure FIFO) — both used by the ablation benchmark.
    """

    __slots__ = ("epoch_num", "scan_threshold_fraction")

    def __init__(
        self,
        epoch_num: int = 8,
        scan_threshold_fraction: float = 0.25,
    ) -> None:
        if epoch_num < 1:
            raise ParameterError(f"epoch_num must be >= 1, got {epoch_num}")
        if scan_threshold_fraction < 0:
            raise ParameterError(
                "scan_threshold_fraction must be >= 0, got "
                f"{scan_threshold_fraction}"
            )
        self.epoch_num = int(epoch_num)
        self.scan_threshold_fraction = float(scan_threshold_fraction)

    def scan_threshold(self, num_nodes: int) -> float:
        """Active-node count above which the scan phase takes over."""
        return self.scan_threshold_fraction * num_nodes


def power_push(
    graph: DiGraph,
    source: int,
    *,
    alpha: float = 0.2,
    l1_threshold: float = 1e-8,
    config: PowerPushConfig | None = None,
    mode: Mode = "auto",
    dead_end_policy: DeadEndPolicy = "redirect-to-source",
    trace: ConvergenceTrace | None = None,
    max_work_factor: float = 64.0,
    backend: str | KernelBackend | None = None,
) -> PPRResult:
    """Answer a high-precision SSPPR query with PowerPush (Algorithm 3).

    Returns a :class:`PPRResult` whose ``estimate`` satisfies
    ``||estimate - pi_s||_1 = sum(residue) <= l1_threshold``.

    Parameters
    ----------
    config:
        Epoch count and scan threshold; defaults to the paper's
        constants (``epoch_num=8``, ``scan_threshold=n/4``).
    mode:
        ``"faithful"`` runs the scalar pseudo-code; ``"vectorized"``
        (chosen by ``"auto"``) runs the push kernels on the selected
        backend.
    max_work_factor:
        Safety multiplier on the theoretical sweep budget before a
        :class:`ConvergenceError` is raised.
    backend:
        Kernel backend name or instance for the vectorised mode
        (``None`` consults ``REPRO_PPR_BACKEND``, defaulting to the
        NumPy reference).  The faithful scalar mode always runs the
        pseudo-code verbatim and ignores it.
    """
    check_alpha(alpha)
    check_source(graph, source)
    check_l1_threshold(l1_threshold)
    kernel_backend = active_backend(backend)
    if config is None:
        config = PowerPushConfig()
    if mode == "auto":
        mode = "vectorized"
    if mode not in ("faithful", "vectorized"):
        raise ParameterError(f"unknown mode {mode!r}")

    started = time.perf_counter()
    state = PushState(graph, source, alpha, dead_end_policy=dead_end_policy)
    if trace is not None:
        trace.restart_clock()
        trace.record(0, state.r_sum)

    if graph.num_edges == 0:
        # Only teleport mass exists: the answer is e_s after one push.
        state.push(source)
        state.reserve[source] = 1.0
        state.residue[:] = 0.0
        state.refresh_r_sum()
    elif mode == "faithful":
        _run_faithful(state, l1_threshold, config, trace, max_work_factor)
    else:
        _run_vectorized(
            state,
            l1_threshold,
            config,
            trace,
            max_work_factor,
            backend=kernel_backend,
        )

    state.refresh_r_sum()
    if trace is not None:
        trace.record(state.counters.residue_updates, state.r_sum)
    return PPRResult(
        estimate=state.reserve,
        residue=state.residue,
        source=source,
        alpha=alpha,
        counters=state.counters,
        trace=trace,
        seconds=time.perf_counter() - started,
        method="PowerPush",
    )


# ----------------------------------------------------------------------
# Faithful scalar implementation (Algorithm 3 verbatim)
# ----------------------------------------------------------------------
def _run_faithful(
    state: PushState,
    l1_threshold: float,
    config: PowerPushConfig,
    trace: ConvergenceTrace | None,
    max_work_factor: float,
) -> None:
    graph = state.graph
    n, m = graph.num_nodes, graph.num_edges
    r_max = l1_threshold / m
    scan_threshold = config.scan_threshold(n)
    budget = _push_budget(state.alpha, l1_threshold, m, max_work_factor)

    # --- Queue phase (Lines 4-13) -------------------------------------
    queue: deque[int] = deque()
    in_queue = bytearray(n)
    if state.is_active(state.source, r_max):
        queue.append(state.source)
        in_queue[state.source] = 1
        state.counters.queue_appends += 1
    while queue and len(queue) <= scan_threshold and state.r_sum > l1_threshold:
        v = queue.popleft()
        in_queue[v] = 0
        state.push(v)
        _check_budget(state, budget)
        for u in graph.out_neighbors(v):
            if not in_queue[u] and state.is_active(u, r_max):
                queue.append(int(u))
                in_queue[u] = 1
                state.counters.queue_appends += 1
        if trace is not None:
            trace.maybe_record(state.counters.residue_updates, state.r_sum)

    # --- Sequential-scan phase with dynamic thresholds (Lines 14-24) --
    if state.refresh_r_sum() > l1_threshold:
        for epoch in range(1, config.epoch_num + 1):
            state.counters.bump("epochs")
            epoch_r_max = l1_threshold ** (epoch / config.epoch_num) / m
            while state.r_sum > m * epoch_r_max:
                progressed = False
                for v in range(n):
                    if state.is_active(v, epoch_r_max):
                        state.push(v)
                        progressed = True
                        _check_budget(state, budget)
                state.refresh_r_sum()
                if trace is not None:
                    trace.maybe_record(
                        state.counters.residue_updates, state.r_sum
                    )
                if not progressed:
                    break


# ----------------------------------------------------------------------
# Vectorised implementation
# ----------------------------------------------------------------------
def _run_vectorized(
    state: PushState,
    l1_threshold: float,
    config: PowerPushConfig,
    trace: ConvergenceTrace | None,
    max_work_factor: float,
    backend: KernelBackend | None = None,
) -> None:
    graph = state.graph
    n, m = graph.num_nodes, graph.num_edges
    r_max = l1_threshold / m
    scan_threshold = config.scan_threshold(n)
    budget = _push_budget(state.alpha, l1_threshold, m, max_work_factor)
    workspace = Workspace()

    # --- Queue phase: batched FIFO frontiers --------------------------
    # Each batch simultaneously pushes the current active set, which is
    # the S(j) iteration structure of Section 4.2; we stay in this
    # phase while the frontier is small.
    while state.r_sum > l1_threshold:
        frontier = state.active_nodes(r_max)
        if frontier.shape[0] == 0 or frontier.shape[0] > scan_threshold:
            break
        frontier_push(state, frontier, workspace=workspace, backend=backend)
        state.counters.queue_appends += frontier.shape[0]
        _check_budget(state, budget)
        if trace is not None:
            trace.maybe_record(state.counters.residue_updates, state.r_sum)

    # --- Scan phase with dynamic thresholds ---------------------------
    if state.refresh_r_sum() > l1_threshold:
        degree_f = state.effective_out_degree.astype(np.float64)
        for epoch in range(1, config.epoch_num + 1):
            state.counters.bump("epochs")
            epoch_r_max = l1_threshold ** (epoch / config.epoch_num) / m
            threshold_vec = degree_f * epoch_r_max
            while state.r_sum > m * epoch_r_max:
                pushed = sweep_active(
                    state,
                    epoch_r_max,
                    threshold_vec=threshold_vec,
                    workspace=workspace,
                    backend=backend,
                )
                if pushed == 0:
                    state.refresh_r_sum()
                    break
                _check_budget(state, budget)
                if trace is not None:
                    trace.maybe_record(
                        state.counters.residue_updates, state.r_sum
                    )


# ----------------------------------------------------------------------
# Block (multi-source) driver
# ----------------------------------------------------------------------
#: Row phases of the block schedule (mirrors _run_vectorized's control
#: flow: FIFO-frontier queue phase, dynamic-threshold scan epochs, done).
_QUEUE, _SCAN, _DONE = 0, 1, 2


def power_push_block(
    graph: DiGraph,
    sources,
    *,
    alpha: float = 0.2,
    l1_threshold: float = 1e-8,
    config: PowerPushConfig | None = None,
    dead_end_policy: DeadEndPolicy = "redirect-to-source",
    max_work_factor: float = 64.0,
    workspace: Workspace | None = None,
    backend: str | KernelBackend | None = None,
) -> list[PPRResult]:
    """Answer many high-precision SSPPR queries in one block solve.

    Runs the vectorised PowerPush schedule over a
    :class:`~repro.core.residues.BlockPushState` holding all sources'
    residue rows: per round, every unfinished row evaluates its own
    phase (queue / scan epoch) against its own ``r_sum`` and frontier,
    then all rows wanting a local push share one union gather/scatter
    and all rows wanting a global sweep share one sparse mat-mat.
    Finished rows retire from the active block, so a batch of mixed
    difficulty never pays for its slowest member on every round.

    Each row's float-operation sequence is *identical* to an
    independent :func:`power_push` run with the same parameters, so
    ``results[i].estimate`` and ``.residue`` are bitwise-equal to the
    single-source answers — the property the serving layer's
    byte-identity contract relies on (and the equivalence/golden tests
    pin down).  Traces are not supported on the block path; per-row
    :class:`~repro.instrumentation.counters.PushCounters` are.

    Returns one :class:`PPRResult` per source, in order; wall time is
    apportioned evenly across rows and ``batch_size`` records the
    block width.
    """
    check_alpha(alpha)
    check_l1_threshold(l1_threshold)
    kernel_backend = active_backend(backend)
    sources = [check_source(graph, int(s)) for s in sources]
    if not sources:
        return []
    if config is None:
        config = PowerPushConfig()
    if graph.num_edges == 0:
        # Only teleport mass exists; the per-source special case is
        # already O(1), so delegate instead of duplicating it.
        return [
            power_push(
                graph,
                source,
                alpha=alpha,
                l1_threshold=l1_threshold,
                config=config,
                dead_end_policy=dead_end_policy,
                max_work_factor=max_work_factor,
            )
            for source in sources
        ]

    started = time.perf_counter()
    state = BlockPushState(
        graph, sources, alpha, dead_end_policy=dead_end_policy
    )
    if workspace is None:
        workspace = Workspace()
    _run_block(
        state,
        l1_threshold,
        config,
        max_work_factor,
        workspace,
        backend=kernel_backend,
    )

    elapsed = time.perf_counter() - started
    num_rows = state.num_rows
    share = elapsed / num_rows
    results = []
    for row in range(num_rows):
        state.refresh_r_sum(row)
        results.append(
            PPRResult(
                estimate=state.reserve[row].copy(),
                residue=state.residue[row].copy(),
                source=int(state.sources[row]),
                alpha=alpha,
                counters=state.row_counters(row),
                seconds=share,
                method="PowerPush",
                batch_size=num_rows,
            )
        )
    return results


def _run_block(
    state: BlockPushState,
    l1_threshold: float,
    config: PowerPushConfig,
    max_work_factor: float,
    workspace: Workspace,
    backend: KernelBackend | None = None,
) -> None:
    """Round-based block schedule; see :func:`power_push_block`.

    Every round each live row settles its push-free transitions (queue
    exit, epoch advances) and either requests one push — local or
    global, decided by its own frontier density — or retires.  The
    requested pushes execute as two shared block kernels.  Because
    rows never exchange mass, running their individual op sequences in
    lockstep rounds leaves each row's arithmetic exactly as in its
    independent run.
    """
    graph = state.graph
    n, m = graph.num_nodes, graph.num_edges
    queue_r_max = l1_threshold / m
    scan_threshold = config.scan_threshold(n)
    epoch_num = config.epoch_num
    budget = _push_budget(state.alpha, l1_threshold, m, max_work_factor)
    degree_f = state.effective_out_degree.astype(np.float64)
    # Threshold vectors are constant per (phase, epoch): build each
    # lazily, once, and share it across all rows sitting in that stage.
    threshold_vecs: dict[int, np.ndarray] = {
        _QUEUE: degree_f * queue_r_max
    }
    epoch_r_maxes = [
        l1_threshold ** (epoch / epoch_num) / m
        for epoch in range(1, epoch_num + 1)
    ]
    epoch_r_max_arr = np.asarray(epoch_r_maxes)

    num_rows = state.num_rows
    dense_threshold = DENSE_SWEEP_FRACTION * n
    phase = np.full(num_rows, _QUEUE, dtype=np.int8)
    # 1-based once scanning; 0 while queueing, which doubles as the
    # stage key (epoch thresholds are 1-based, the queue threshold 0).
    epoch = np.zeros(num_rows, dtype=np.int64)
    #: python-side tallies so steady-state rounds (everyone scanning,
    #: nobody retiring) skip the transition machinery entirely
    status = {"queue": num_rows, "done": 0}

    def retire(row: int) -> None:
        phase[row] = _DONE
        status["done"] += 1

    def enter_scan(row: int) -> None:
        """Queue exit: refresh, then scan from epoch 1 or retire."""
        status["queue"] -= 1
        if state.refresh_r_sum(row) > l1_threshold:
            phase[row] = _SCAN
            epoch[row] = 1
            state.epochs[row] += 1
            advance_epochs(row)
        else:
            retire(row)

    def advance_epochs(row: int) -> None:
        """Skip epochs whose target is already met (each still bumps)."""
        while (
            phase[row] == _SCAN
            and state.r_sum[row] <= m * epoch_r_maxes[epoch[row] - 1]
        ):
            if epoch[row] == epoch_num:
                retire(row)
                return
            epoch[row] += 1
            state.epochs[row] += 1

    def stage_vec(stage: int) -> np.ndarray:
        vec = threshold_vecs.get(stage)
        if vec is None:
            vec = degree_f * epoch_r_maxes[stage - 1]
            threshold_vecs[stage] = vec
        return vec

    live = np.arange(num_rows)
    live_done = 0
    while True:
        if status["done"] != live_done:
            live = np.flatnonzero(phase != _DONE)
            live_done = status["done"]
            if live.shape[0] == 0:
                return

        # Settle push-free queue exits so every surviving row has a
        # well-defined threshold for this round's mask computation.
        if status["queue"]:
            queue_done = (phase[live] == _QUEUE) & (
                state.r_sum[live] <= l1_threshold
            )
            if queue_done.any():
                for row in live[queue_done]:
                    enter_scan(int(row))
                if status["done"] != live_done:
                    live = np.flatnonzero(phase != _DONE)
                    live_done = status["done"]
                    if live.shape[0] == 0:
                        return

        # One broadcast compare per stage shared by all its rows; the
        # common case — every live row in the same stage — compares the
        # whole sub-block in one shot with no mask staging buffer.
        stages = epoch[live]
        first_stage = int(stages[0])
        same_stage = (stages == first_stage).all()
        if same_stage:
            masks = state.active_masks(live, stage_vec(first_stage))
        else:
            masks = np.empty((live.shape[0], n), dtype=bool)
            for stage in np.unique(stages):
                stage = int(stage)
                members = stages == stage
                masks[members] = state.active_masks(
                    live[members], stage_vec(stage)
                )
        num_active = np.count_nonzero(masks, axis=1)

        # Per-row decision, vectorised over the block: a row either
        # pushes this round (local or global, by its own frontier
        # density) or takes a push-free transition and retries.
        nonempty = num_active > 0
        if status["queue"]:
            in_queue = stages == 0
            push_local = np.where(
                in_queue,
                nonempty & (num_active <= scan_threshold),
                nonempty & (num_active <= dense_threshold),
            )
            push_global = ~in_queue & (num_active > dense_threshold)
            queue_exit = in_queue & ~push_local
            scan_stall = ~in_queue & ~nonempty
            for row in live[queue_exit]:
                enter_scan(int(row))
        else:
            in_queue = None
            push_local = nonempty & (num_active <= dense_threshold)
            push_global = num_active > dense_threshold
            scan_stall = ~nonempty
        if scan_stall.any():
            for row in live[scan_stall]:
                # "pushed == 0": refresh, leave the while loop, and
                # step into the next epoch (which always bumps).
                row = int(row)
                state.refresh_r_sum(row)
                if epoch[row] == epoch_num:
                    retire(row)
                else:
                    epoch[row] += 1
                    state.epochs[row] += 1
                    advance_epochs(row)

        if push_local.any():
            block_frontier_push(
                state, live[push_local], masks[push_local],
                workspace=workspace, backend=backend,
            )
        if push_global.any():
            block_global_sweep(
                state, live[push_global], count_all_edges=False,
                workspace=workspace, backend=backend,
            )

        # Post-push bookkeeping, in the same order the single-source
        # loops apply it: queue appends, budget check, loop re-entry.
        if in_queue is not None:
            queue_pushed = push_local & in_queue
            if queue_pushed.any():
                state.queue_appends[live[queue_pushed]] += num_active[
                    queue_pushed
                ]
            pushed = push_local | push_global
            scan_pushed = pushed & ~in_queue
        else:
            pushed = push_local | push_global
            scan_pushed = pushed
        over_budget = pushed & (state.residue_updates[live] > budget)
        if over_budget.any():
            row = int(live[np.flatnonzero(over_budget)[0]])
            raise ConvergenceError(
                f"PowerPush exceeded its work budget ({budget} residue "
                f"updates) on source {int(state.sources[row])}; "
                f"r_sum={state.refresh_r_sum(row):.3e}"
            )
        # The epoch-loop while condition re-check for scan rows that
        # pushed; rows still above their target simply sweep again next
        # round, the rest advance (each advance bumps its epoch).
        if scan_pushed.any():
            targets = m * epoch_r_max_arr[epoch[live] - 1]
            met = scan_pushed & (state.r_sum[live] <= targets)
            if met.any():
                for row in live[met]:
                    advance_epochs(int(row))


def _push_budget(
    alpha: float, l1_threshold: float, m: int, max_work_factor: float
) -> int:
    """Residue-update budget from the O(m log(1/lambda)) bound."""
    import math

    log_term = math.log(max(1.0 / l1_threshold, 2.0))
    return int(max_work_factor * (m * (log_term + 1.0) / alpha + m)) + 1024


def _check_budget(state: PushState, budget: int) -> None:
    if state.counters.residue_updates > budget:
        raise ConvergenceError(
            f"PowerPush exceeded its work budget ({budget} residue updates); "
            f"r_sum={state.refresh_r_sum():.3e}"
        )
