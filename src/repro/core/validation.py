"""Parameter validation shared by every algorithm entry point.

All public algorithm functions funnel their arguments through these
checks so that error messages are uniform and the domain of each
parameter is documented in exactly one place.
"""

from __future__ import annotations

from repro.errors import NodeNotFoundError, ParameterError
from repro.graph.digraph import DiGraph

__all__ = [
    "check_alpha",
    "check_source",
    "check_l1_threshold",
    "check_r_max",
    "check_epsilon",
    "check_mu",
    "check_failure_probability",
    "default_l1_threshold",
]


def check_alpha(alpha: float) -> float:
    """Teleport probability ``alpha`` must lie in ``(0, 1)``.

    The paper allows ``alpha = 0`` formally, but every bound divides by
    ``alpha``, and a zero-teleport walk never stops, so we require it
    strictly positive.
    """
    if not 0.0 < alpha < 1.0:
        raise ParameterError(f"alpha must be in (0, 1), got {alpha}")
    return float(alpha)


def check_source(graph: DiGraph, source: int) -> int:
    """Source node must be a valid id of ``graph``."""
    if not isinstance(source, (int,)) or isinstance(source, bool):
        try:
            source = int(source)
        except (TypeError, ValueError) as exc:
            raise ParameterError(f"source must be an integer, got {source!r}") from exc
    if not 0 <= source < graph.num_nodes:
        raise NodeNotFoundError(
            f"source {source} outside [0, {graph.num_nodes})"
        )
    return int(source)


def check_l1_threshold(l1_threshold: float) -> float:
    """HP-SSPPR error threshold ``lambda`` must lie in ``(0, 1]``."""
    if not 0.0 < l1_threshold <= 1.0:
        raise ParameterError(
            f"l1_threshold (lambda) must be in (0, 1], got {l1_threshold}"
        )
    return float(l1_threshold)


def check_r_max(r_max: float) -> float:
    """Push stop parameter ``r_max`` must lie in ``[0, 1]``."""
    if not 0.0 <= r_max <= 1.0:
        raise ParameterError(f"r_max must be in [0, 1], got {r_max}")
    return float(r_max)


def check_epsilon(epsilon: float) -> float:
    """Approximate-query relative error ``eps`` must be positive."""
    if not epsilon > 0.0:
        raise ParameterError(f"epsilon must be > 0, got {epsilon}")
    return float(epsilon)


def check_mu(mu: float) -> float:
    """PPR threshold ``mu`` must lie in ``(0, 1]``."""
    if not 0.0 < mu <= 1.0:
        raise ParameterError(f"mu must be in (0, 1], got {mu}")
    return float(mu)


def check_failure_probability(p_fail: float) -> float:
    """Failure probability must lie in ``(0, 1)``."""
    if not 0.0 < p_fail < 1.0:
        raise ParameterError(f"failure probability must be in (0, 1), got {p_fail}")
    return float(p_fail)


def default_l1_threshold(graph: DiGraph) -> float:
    """The paper's default ``lambda = min(1e-8, 1/m)``."""
    if graph.num_edges == 0:
        return 1e-8
    return min(1e-8, 1.0 / graph.num_edges)
