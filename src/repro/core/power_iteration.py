"""Power Iteration (PowItr) for high-precision SSPPR (paper Section 3.1).

PowItr maintains the alive-walk distribution ``gamma_s(j)`` and the
underestimate ``pi_hat`` such that after iteration ``j+1``:

* ``gamma_s(j+1) = (1 - alpha) * gamma_s(j) @ P``  (Eq. 3), and
* ``pi_hat = sum_{k<=j} alpha * gamma_s(k)``        (Eq. 5).

The l1-error after ``j+1`` iterations is exactly ``(1 - alpha)^(j+1)``
(Eq. 6), so ``O(log(1/lambda))`` iterations of ``O(m)`` work each give
the ``O(m log(1/lambda))`` bound the paper cites.

This is the *global* approach: every iteration costs ``O(m)`` no matter
how concentrated the remaining mass is.  The residue/reserve state is
shared with the push algorithms, which is what makes the SimFwdPush
equivalence (Lemma 4.1) a literal array comparison in our tests.
"""

from __future__ import annotations

import time

from repro.backends import KernelBackend, active_backend
from repro.core.kernels import global_sweep
from repro.core.residues import DeadEndPolicy, PushState
from repro.core.result import PPRResult
from repro.core.validation import check_alpha, check_l1_threshold, check_source
from repro.errors import ConvergenceError
from repro.graph.digraph import DiGraph
from repro.instrumentation.tracing import ConvergenceTrace

__all__ = ["power_iteration"]


def power_iteration(
    graph: DiGraph,
    source: int,
    *,
    alpha: float = 0.2,
    l1_threshold: float = 1e-8,
    dead_end_policy: DeadEndPolicy = "redirect-to-source",
    max_iterations: int | None = None,
    trace: ConvergenceTrace | None = None,
    backend: "str | KernelBackend | None" = None,
) -> PPRResult:
    """Answer a high-precision SSPPR query with Power Iteration.

    Parameters
    ----------
    graph:
        The directed graph.
    source:
        Query source node id.
    alpha:
        Teleport probability (paper default 0.2).
    l1_threshold:
        The error bound ``lambda``: iteration stops once the exact
        remaining mass ``r_sum <= lambda``.
    max_iterations:
        Safety cap; defaults to the analytic bound
        ``ceil(ln(1/lambda) / ln(1/(1-alpha)))`` plus slack.

    Returns
    -------
    PPRResult
        ``estimate`` with ``||estimate - pi_s||_1 <= l1_threshold``.
    """
    check_alpha(alpha)
    check_source(graph, source)
    check_l1_threshold(l1_threshold)
    kernel_backend = active_backend(backend)
    if max_iterations is None:
        max_iterations = _analytic_iteration_bound(alpha, l1_threshold) + 8

    started = time.perf_counter()
    state = PushState(
        graph, source, alpha, dead_end_policy=dead_end_policy
    )
    if trace is not None:
        trace.restart_clock()
        trace.record(0, state.r_sum)

    iterations = 0
    while state.r_sum > l1_threshold:
        if iterations >= max_iterations:
            raise ConvergenceError(
                f"PowItr exceeded {max_iterations} iterations "
                f"(r_sum={state.r_sum:.3e}, lambda={l1_threshold:.3e})"
            )
        global_sweep(state, count_all_edges=True, backend=kernel_backend)
        iterations += 1
        state.counters.iterations = iterations
        if trace is not None:
            trace.maybe_record(state.counters.residue_updates, state.r_sum)

    if trace is not None:
        trace.record(state.counters.residue_updates, state.r_sum)
    return PPRResult(
        estimate=state.reserve,
        residue=state.residue,
        source=source,
        alpha=alpha,
        counters=state.counters,
        trace=trace,
        seconds=time.perf_counter() - started,
        method="PowItr",
    )


def _analytic_iteration_bound(alpha: float, l1_threshold: float) -> int:
    """Iterations needed so that ``(1 - alpha)^j <= lambda``."""
    import math

    return max(int(math.ceil(math.log(l1_threshold) / math.log(1.0 - alpha))), 1)
