"""SpeedPPR — the paper's approximate SSPPR algorithm (Algorithm 4).

SpeedPPR keeps FORA's two-phase framework but replaces the first phase
with PowerPush plus the ``O(m)`` post-refinement, pushed all the way to
``r_max = 1/W``.  Consequences (Theorem 6.1 and Section 6.2):

* the first phase costs ``O(m log(W/m))`` instead of FORA's
  ``O(1/r_max) = O(sqrt(m W))``, giving overall
  ``O(n log n log(1/eps))`` on scale-free graphs — beating the
  ``O(n log n / eps)`` state of the art;
* after refinement ``r(s,v) <= d_v / W``, so each node needs at most
  ``W_v = ceil(r(s,v) * W) <= d_v`` walks — at most ``m`` in total —
  which is why the SpeedPPR index (``K_v = d_v`` pre-computed walks)
  is bounded by the graph size and *independent of eps*.

When ``m >= W`` the Monte-Carlo method alone is already cheaper
(Section 6's standing assumption is ``m < W``); like the paper, we
switch to it in that regime.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends import KernelBackend
from repro.core.mc_phase import monte_carlo_refine
from repro.core.powerpush import PowerPushConfig, power_push
from repro.core.refinement import refine_to_r_max
from repro.core.residues import DeadEndPolicy, PushState
from repro.core.result import PPRResult
from repro.core.validation import (
    check_alpha,
    check_epsilon,
    check_mu,
    check_source,
)
from repro.graph.digraph import DiGraph
from repro.montecarlo.chernoff import (
    chernoff_walk_count,
    default_failure_probability,
    default_mu,
)
from repro.montecarlo.mc import monte_carlo_ppr
from repro.walks.index import WalkIndex

__all__ = ["speed_ppr"]


def speed_ppr(
    graph: DiGraph,
    source: int,
    *,
    alpha: float = 0.2,
    epsilon: float = 0.5,
    mu: float | None = None,
    p_fail: float | None = None,
    rng: np.random.Generator | None = None,
    walk_index: WalkIndex | None = None,
    config: PowerPushConfig | None = None,
    dead_end_policy: DeadEndPolicy = "redirect-to-source",
    allow_monte_carlo_shortcut: bool = True,
    backend: "str | KernelBackend | None" = None,
) -> PPRResult:
    """Answer an approximate SSPPR query with SpeedPPR (Algorithm 4).

    Parameters
    ----------
    epsilon, mu, p_fail:
        Approximation contract; ``mu`` and ``p_fail`` default to
        ``1/n``.
    rng:
        Random generator for the walk phase (required unless a
        ``walk_index`` is supplied).
    walk_index:
        Pre-computed walks — the SpeedPPR-Index variant.  Any index
        with ``K_v >= d_v`` works for *every* ``epsilon``.
    allow_monte_carlo_shortcut:
        Mirror the paper's ``m >= W`` fallback to plain Monte-Carlo.
    backend:
        Kernel backend for the PowerPush + refinement phase (threaded
        straight through; the walk phase is backend-independent).
    """
    check_alpha(alpha)
    check_source(graph, source)
    check_epsilon(epsilon)
    if mu is None:
        mu = default_mu(graph.num_nodes)
    check_mu(mu)
    if p_fail is None:
        p_fail = default_failure_probability(graph.num_nodes)

    num_walks_w = chernoff_walk_count(epsilon, mu, p_fail=p_fail)
    if (
        allow_monte_carlo_shortcut
        and graph.num_edges >= num_walks_w
        and rng is not None
    ):
        result = monte_carlo_ppr(
            graph, source, alpha=alpha, num_walks=num_walks_w, rng=rng
        )
        result.method = "SpeedPPR[mc-shortcut]"
        return result

    started = time.perf_counter()
    # Phase 1: PowerPush to lambda = m / W, then refine so that no node
    # is active w.r.t. r_max = 1 / W  (Algorithm 4, Lines 2-3).
    l1_threshold = min(graph.num_edges / num_walks_w, 1.0)
    push_result = power_push(
        graph,
        source,
        alpha=alpha,
        l1_threshold=l1_threshold,
        config=config,
        dead_end_policy=dead_end_policy,
        backend=backend,
    )
    state = _state_from_result(graph, source, alpha, dead_end_policy, push_result)
    refine_to_r_max(state, 1.0 / num_walks_w, backend=backend)

    # Phase 2: Eq. 13-14 Monte-Carlo refinement.  After refinement
    # W_v <= d_v, so an index with K_v = d_v always suffices (tiny
    # float slop at the boundary is capped, keeping unbiasedness).
    estimate = monte_carlo_refine(
        graph,
        source,
        alpha,
        state.reserve,
        state.residue,
        num_walks_w,
        rng=rng,
        walk_index=walk_index,
        counters=state.counters,
        on_insufficient="cap",
    )
    return PPRResult(
        estimate=estimate,
        residue=state.residue,
        source=source,
        alpha=alpha,
        counters=state.counters,
        seconds=time.perf_counter() - started,
        method="SpeedPPR-Index" if walk_index is not None else "SpeedPPR",
    )


def _state_from_result(
    graph: DiGraph,
    source: int,
    alpha: float,
    dead_end_policy: DeadEndPolicy,
    result: PPRResult,
) -> PushState:
    """Rewrap a PowerPush result as a live state for further pushing."""
    state = PushState(
        graph,
        source,
        alpha,
        dead_end_policy=dead_end_policy,
        counters=result.counters,
    )
    assert result.residue is not None
    state.reserve = result.estimate
    state.residue = result.residue
    state.refresh_r_sum()
    return state
