"""Simultaneous Forward Push (SimFwdPush, paper Section 4.1).

SimFwdPush is the special Forward-Push variant that proves the
equivalence connection to Power Iteration (Lemma 4.1):

* every node with a non-zero residue is active (``r_max = 0``),
* pushes happen in iterations — all active nodes push *simultaneously*
  based on their residues at the start of the iteration,
* the run stops when ``r_sum <= lambda``.

Lemma 4.1: after each iteration the residue vector equals PowItr's
``gamma_s(j)`` and the reserve vector equals ``pi_s(j)``, exactly.  Our
test-suite verifies this as a literal array comparison — and the check
is meaningful because this module pushes through the gather/scatter
frontier kernel while PowItr uses the sparse mat-vec, i.e. two
independent numeric paths.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends import KernelBackend, active_backend
from repro.core.kernels import frontier_push
from repro.core.workspace import Workspace
from repro.core.residues import DeadEndPolicy, PushState
from repro.core.result import PPRResult
from repro.core.validation import check_alpha, check_l1_threshold, check_source
from repro.errors import ConvergenceError
from repro.graph.digraph import DiGraph
from repro.instrumentation.tracing import ConvergenceTrace

__all__ = ["simultaneous_forward_push"]


def simultaneous_forward_push(
    graph: DiGraph,
    source: int,
    *,
    alpha: float = 0.2,
    l1_threshold: float = 1e-8,
    dead_end_policy: DeadEndPolicy = "redirect-to-source",
    max_iterations: int | None = None,
    trace: ConvergenceTrace | None = None,
    record_iterates: bool = False,
    backend: "str | KernelBackend | None" = None,
) -> PPRResult | tuple[PPRResult, list[dict[str, np.ndarray]]]:
    """Run SimFwdPush until the exact l1-error drops below ``lambda``.

    Parameters
    ----------
    record_iterates:
        When True, additionally return the per-iteration
        ``{"residue": ..., "reserve": ...}`` snapshots, which the
        equivalence tests compare against PowItr's iterates.
    """
    check_alpha(alpha)
    check_source(graph, source)
    check_l1_threshold(l1_threshold)
    kernel_backend = active_backend(backend)
    workspace = Workspace()
    if max_iterations is None:
        import math

        max_iterations = (
            max(int(math.ceil(math.log(l1_threshold) / math.log(1.0 - alpha))), 1)
            + 8
        )

    started = time.perf_counter()
    state = PushState(graph, source, alpha, dead_end_policy=dead_end_policy)
    iterates: list[dict[str, np.ndarray]] = []
    if trace is not None:
        trace.restart_clock()
        trace.record(0, state.r_sum)

    iterations = 0
    while state.r_sum > l1_threshold:
        if iterations >= max_iterations:
            raise ConvergenceError(
                f"SimFwdPush exceeded {max_iterations} iterations "
                f"(r_sum={state.r_sum:.3e}, lambda={l1_threshold:.3e})"
            )
        active = np.flatnonzero(state.residue > 0.0)
        frontier_push(
            state, active, workspace=workspace, backend=kernel_backend
        )
        state.refresh_r_sum()
        iterations += 1
        state.counters.iterations = iterations
        if record_iterates:
            iterates.append(
                {
                    "residue": state.residue.copy(),
                    "reserve": state.reserve.copy(),
                }
            )
        if trace is not None:
            trace.maybe_record(state.counters.residue_updates, state.r_sum)

    if trace is not None:
        trace.record(state.counters.residue_updates, state.r_sum)
    result = PPRResult(
        estimate=state.reserve,
        residue=state.residue,
        source=source,
        alpha=alpha,
        counters=state.counters,
        trace=trace,
        seconds=time.perf_counter() - started,
        method="SimFwdPush",
    )
    if record_iterates:
        return result, iterates
    return result
