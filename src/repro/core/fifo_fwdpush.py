"""First-In-First-Out Forward Push (FIFO-FwdPush, paper Algorithm 2).

This is the "common implementation" whose running time Section 4.2
bounds by ``O(m log(1/lambda))`` (Theorem 4.3) — the positive answer to
the paper's open question.  Two execution modes are provided:

``"faithful"``
    The scalar queue loop of Algorithm 2 verbatim (delegates to
    :func:`repro.core.fwdpush.forward_push` with the FIFO scheduler).
    Used by correctness tests and small graphs.

``"frontier"``
    The vectorised per-iteration form used for benchmarking: iteration
    ``j+1`` simultaneously pushes the active set ``S(j)``, exactly the
    iteration structure Section 4.2 defines for its analysis.  Each
    sweep costs ``O(sum of frontier degrees)`` through the
    gather/scatter kernel, so the total work tracks the paper's
    ``T(j+1)`` quantity (Eq. 11).

Both modes stop when no node is active w.r.t. ``r_max``, i.e. the
guaranteed l1-error is ``m * r_max`` (Eq. 7).
"""

from __future__ import annotations

import time
from typing import Literal

from repro.backends import KernelBackend, active_backend
from repro.core.fwdpush import forward_push
from repro.core.kernels import sweep_active
from repro.core.workspace import Workspace
from repro.core.residues import DeadEndPolicy, PushState
from repro.core.result import PPRResult
from repro.core.validation import (
    check_alpha,
    check_l1_threshold,
    check_r_max,
    check_source,
)
from repro.errors import ConvergenceError, ParameterError
from repro.graph.digraph import DiGraph
from repro.instrumentation.tracing import ConvergenceTrace

__all__ = ["fifo_forward_push", "r_max_for_l1_threshold"]

Mode = Literal["faithful", "frontier", "auto"]


def r_max_for_l1_threshold(graph: DiGraph, l1_threshold: float) -> float:
    """The paper's setting ``r_max = lambda / m`` (Section 3.2)."""
    check_l1_threshold(l1_threshold)
    if graph.num_edges == 0:
        return l1_threshold
    return l1_threshold / graph.num_edges


def fifo_forward_push(
    graph: DiGraph,
    source: int,
    *,
    alpha: float = 0.2,
    r_max: float | None = None,
    l1_threshold: float | None = None,
    mode: Mode = "auto",
    dead_end_policy: DeadEndPolicy = "redirect-to-source",
    max_sweeps: int | None = None,
    trace: ConvergenceTrace | None = None,
    backend: "str | KernelBackend | None" = None,
) -> PPRResult:
    """Run FIFO-FwdPush (Algorithm 2).

    Exactly one of ``r_max`` / ``l1_threshold`` must be given; the
    latter sets ``r_max = l1_threshold / m``.

    Parameters
    ----------
    mode:
        ``"faithful"`` for the scalar queue loop, ``"frontier"`` for the
        vectorised iteration form, ``"auto"`` picks ``"frontier"``.
    backend:
        Kernel backend for the frontier mode (name, instance, or None
        for the env-var/NumPy default); the faithful scalar loop
        ignores it.
    """
    if (r_max is None) == (l1_threshold is None):
        raise ParameterError(
            "specify exactly one of r_max or l1_threshold"
        )
    if r_max is None:
        assert l1_threshold is not None
        r_max = r_max_for_l1_threshold(graph, l1_threshold)
    check_r_max(r_max)
    if r_max == 0.0:
        raise ParameterError("r_max must be positive for FIFO-FwdPush")

    if mode == "auto":
        mode = "frontier"
    if mode == "faithful":
        result = forward_push(
            graph,
            source,
            alpha=alpha,
            r_max=r_max,
            scheduler="fifo",
            dead_end_policy=dead_end_policy,
            trace=trace,
        )
        result.method = "FIFO-FwdPush[faithful]"
        return result
    if mode != "frontier":
        raise ParameterError(f"unknown mode {mode!r}")

    check_alpha(alpha)
    check_source(graph, source)
    kernel_backend = active_backend(backend)
    workspace = Workspace()
    if max_sweeps is None:
        import math

        # Lemma 4.4/4.5: O(log(1/(m r_max))/alpha + 1/alpha) sweeps
        # suffice; each sweep removes an alpha-fraction of removable
        # mass in the worst case.  Pad generously.
        lam = max(r_max * max(graph.num_edges, 1), 1e-300)
        max_sweeps = int(8.0 * (math.log(max(1.0 / lam, 2.0)) + 1.0) / alpha) + 64

    started = time.perf_counter()
    state = PushState(graph, source, alpha, dead_end_policy=dead_end_policy)
    if trace is not None:
        trace.restart_clock()
        trace.record(0, state.r_sum)

    threshold_vec = state.threshold_vector(r_max)
    sweeps = 0
    while True:
        pushed = sweep_active(
            state,
            r_max,
            threshold_vec=threshold_vec,
            workspace=workspace,
            backend=kernel_backend,
        )
        if pushed == 0:
            break
        sweeps += 1
        state.counters.iterations = sweeps
        if sweeps > max_sweeps:
            raise ConvergenceError(
                f"FIFO-FwdPush exceeded {max_sweeps} sweeps "
                f"(r_sum={state.refresh_r_sum():.3e}, r_max={r_max:.3e})"
            )
        if trace is not None:
            trace.maybe_record(state.counters.residue_updates, state.r_sum)

    state.refresh_r_sum()
    if trace is not None:
        trace.record(state.counters.residue_updates, state.r_sum)
    return PPRResult(
        estimate=state.reserve,
        residue=state.residue,
        source=source,
        alpha=alpha,
        counters=state.counters,
        trace=trace,
        seconds=time.perf_counter() - started,
        method="FIFO-FwdPush",
    )
