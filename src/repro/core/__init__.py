"""The paper's algorithms: PowItr, FwdPush variants, PowerPush, SpeedPPR.

All entry points share the same conventions:

* graphs are :class:`repro.graph.DiGraph` objects,
* results are :class:`repro.core.result.PPRResult` objects,
* ``alpha`` defaults to the paper's 0.2,
* high-precision queries take ``l1_threshold`` (the paper's lambda),
  approximate queries take ``epsilon`` (+ optional ``mu``, ``p_fail``).
"""

from repro.core.backward_push import backward_push
from repro.core.fifo_fwdpush import fifo_forward_push, r_max_for_l1_threshold
from repro.core.fwdpush import forward_push
from repro.core.incremental import IncrementalPPR
from repro.core.kernels import (
    block_frontier_push,
    block_global_sweep,
    block_sweep_active,
    frontier_push,
    global_sweep,
    sweep_active,
)
from repro.core.mc_phase import monte_carlo_refine, required_walks
from repro.core.pagerank import pagerank, preference_pagerank
from repro.core.power_iteration import power_iteration
from repro.core.powerpush import PowerPushConfig, power_push, power_push_block
from repro.core.refinement import refine_to_r_max
from repro.core.residues import BlockPushState, DeadEndPolicy, PushState
from repro.core.workspace import Workspace
from repro.core.result import PPRResult
from repro.core.sim_fwdpush import simultaneous_forward_push
from repro.core.speedppr import speed_ppr
from repro.core.topk import TopKResult, top_k_ppr
from repro.core.validation import default_l1_threshold

__all__ = [
    "PPRResult",
    "PushState",
    "DeadEndPolicy",
    "power_iteration",
    "forward_push",
    "backward_push",
    "simultaneous_forward_push",
    "fifo_forward_push",
    "r_max_for_l1_threshold",
    "power_push",
    "power_push_block",
    "PowerPushConfig",
    "BlockPushState",
    "Workspace",
    "block_global_sweep",
    "block_frontier_push",
    "block_sweep_active",
    "IncrementalPPR",
    "refine_to_r_max",
    "speed_ppr",
    "pagerank",
    "preference_pagerank",
    "top_k_ppr",
    "TopKResult",
    "monte_carlo_refine",
    "required_walks",
    "global_sweep",
    "frontier_push",
    "sweep_active",
    "default_l1_threshold",
]
