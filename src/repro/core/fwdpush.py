"""Forward Push (paper Algorithm 1) with pluggable scheduling.

Algorithm 1 repeatedly picks *an arbitrary* active node — one with
``r(s, v) > d_v * r_max`` — and performs a push on it, until no active
node remains.  The choice of "arbitrary" is exactly what Section 4 is
about: the paper proves that a First-In-First-Out order yields the
``O(m log(1/lambda))`` bound.  This module implements the general
algorithm with three schedulers so the ablation benchmark (DESIGN.md
A2) can compare them:

* ``"fifo"``   — Algorithm 2's queue order (the analysed variant),
* ``"lifo"``   — depth-first order (a worst-practice foil),
* ``"max-residue"`` — greedy largest-residue-first via a lazy max-heap.

This is the *faithful scalar* implementation: one Python-level push per
node, matching the pseudo-code line for line.  It is intended for
correctness tests, teaching, and small graphs; the benchmarks use the
vectorised modes in :mod:`repro.core.fifo_fwdpush` and
:mod:`repro.core.powerpush`.  It deliberately takes no ``backend``
parameter: the pluggable kernel backends (:mod:`repro.backends`)
accelerate the *bulk* push kernels, while this loop is the reference
the golden traces replay push by push — swap to the vectorised modes
(which do accept ``backend=``) for speed.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from typing import Literal

from repro.core.residues import DeadEndPolicy, PushState
from repro.core.result import PPRResult
from repro.core.validation import (
    check_alpha,
    check_r_max,
    check_source,
)
from repro.errors import ConvergenceError, ParameterError
from repro.graph.digraph import DiGraph
from repro.instrumentation.tracing import ConvergenceTrace

__all__ = ["forward_push", "Scheduler"]

Scheduler = Literal["fifo", "lifo", "max-residue"]

_VALID_SCHEDULERS: tuple[str, ...] = ("fifo", "lifo", "max-residue")


def forward_push(
    graph: DiGraph,
    source: int,
    *,
    alpha: float = 0.2,
    r_max: float,
    scheduler: Scheduler = "fifo",
    dead_end_policy: DeadEndPolicy = "redirect-to-source",
    max_pushes: int | None = None,
    trace: ConvergenceTrace | None = None,
) -> PPRResult:
    """Run Forward Push until no node is active w.r.t. ``r_max``.

    Parameters
    ----------
    r_max:
        The stop parameter.  At termination every node satisfies
        ``r(s, v) <= d_v * r_max``, so the l1-error is at most
        ``m * r_max`` (Eq. 7).  ``r_max = 0`` never terminates on
        cyclic graphs and is rejected here (use
        :func:`repro.core.sim_fwdpush.simultaneous_forward_push`, which
        adds the ``r_sum <= lambda`` stop rule instead).
    scheduler:
        Order in which active nodes are picked; see module docstring.
    max_pushes:
        Safety cap on push operations; defaults to a generous multiple
        of the theoretical ``O(1 / r_max)`` bound.
    """
    check_alpha(alpha)
    check_source(graph, source)
    check_r_max(r_max)
    if r_max == 0.0:
        raise ParameterError(
            "r_max = 0 does not terminate; use simultaneous_forward_push "
            "with an l1_threshold stop rule instead"
        )
    if scheduler not in _VALID_SCHEDULERS:
        raise ParameterError(
            f"unknown scheduler {scheduler!r}; expected one of {_VALID_SCHEDULERS}"
        )
    if max_pushes is None:
        # O(1/(alpha * r_max)) pushes suffice; pad generously.
        max_pushes = int(4.0 / (alpha * r_max)) + 4 * graph.num_nodes + 64

    started = time.perf_counter()
    state = PushState(graph, source, alpha, dead_end_policy=dead_end_policy)
    if trace is not None:
        trace.restart_clock()
        trace.record(0, state.r_sum)

    if scheduler == "max-residue":
        _run_priority(state, r_max, max_pushes, trace)
    else:
        _run_worklist(state, r_max, max_pushes, trace, lifo=scheduler == "lifo")

    if trace is not None:
        trace.record(state.counters.residue_updates, state.refresh_r_sum())
    return PPRResult(
        estimate=state.reserve,
        residue=state.residue,
        source=source,
        alpha=alpha,
        counters=state.counters,
        trace=trace,
        seconds=time.perf_counter() - started,
        method=f"FwdPush[{scheduler}]",
    )


def _run_worklist(
    state: PushState,
    r_max: float,
    max_pushes: int,
    trace: ConvergenceTrace | None,
    *,
    lifo: bool,
) -> None:
    """FIFO/LIFO worklist loop — Algorithm 2 when ``lifo`` is False."""
    graph = state.graph
    queue: deque[int] = deque()
    in_queue = bytearray(graph.num_nodes)
    if state.is_active(state.source, r_max):
        queue.append(state.source)
        in_queue[state.source] = 1
        state.counters.queue_appends += 1

    pushes = 0
    while True:
        while queue:
            v = queue.pop() if lifo else queue.popleft()
            in_queue[v] = 0
            # Residues only grow while a node waits in the worklist, so
            # a queued node is still active here; the guard protects
            # against float round-off at the threshold boundary.
            if not state.is_active(v, r_max):
                continue
            state.push(v)
            pushes += 1
            if pushes > max_pushes:
                raise ConvergenceError(
                    f"forward push exceeded {max_pushes} pushes "
                    f"(r_sum={state.refresh_r_sum():.3e}, r_max={r_max:.3e})"
                )
            for u in graph.out_neighbors(v):
                if not in_queue[u] and state.is_active(u, r_max):
                    queue.append(int(u))
                    in_queue[u] = 1
                    state.counters.queue_appends += 1
            # A dead-end push routes mass outside the adjacency list
            # (to the source, or everywhere under uniform-teleport);
            # cheap re-check for the source — other beneficiaries are
            # caught by the rescan below when the queue drains.
            if (
                graph.out_degree[v] == 0
                and not in_queue[state.source]
                and state.is_active(state.source, r_max)
            ):
                queue.append(state.source)
                in_queue[state.source] = 1
                state.counters.queue_appends += 1
            if trace is not None:
                trace.maybe_record(state.counters.residue_updates, state.r_sum)
        # Termination rescan: uniform-teleport pushes can activate nodes
        # that were never enqueued; reseed and continue if any remain.
        leftovers = state.active_nodes(r_max)
        if leftovers.shape[0] == 0:
            break
        for u in leftovers.tolist():
            queue.append(u)
            in_queue[u] = 1
            state.counters.queue_appends += 1


def _run_priority(
    state: PushState,
    r_max: float,
    max_pushes: int,
    trace: ConvergenceTrace | None,
) -> None:
    """Largest-residue-first loop with a lazy max-heap."""
    graph = state.graph
    heap: list[tuple[float, int]] = []
    if state.is_active(state.source, r_max):
        heapq.heappush(heap, (-1.0, state.source))

    pushes = 0
    while True:
        while heap:
            _, v = heapq.heappop(heap)
            if not state.is_active(v, r_max):
                continue  # stale entry
            state.push(v)
            pushes += 1
            if pushes > max_pushes:
                raise ConvergenceError(
                    f"forward push exceeded {max_pushes} pushes "
                    f"(r_sum={state.refresh_r_sum():.3e}, r_max={r_max:.3e})"
                )
            for u in graph.out_neighbors(v):
                if state.is_active(u, r_max):
                    heapq.heappush(heap, (-float(state.residue[u]), int(u)))
            if graph.out_degree[v] == 0 and state.is_active(state.source, r_max):
                heapq.heappush(
                    heap, (-float(state.residue[state.source]), state.source)
                )
            if trace is not None:
                trace.maybe_record(state.counters.residue_updates, state.r_sum)
        leftovers = state.active_nodes(r_max)
        if leftovers.shape[0] == 0:
            break
        for u in leftovers.tolist():
            heapq.heappush(heap, (-float(state.residue[u]), int(u)))
