"""Incremental PPR maintenance on evolving graphs (push invariant).

The forward-push invariant that underpins every algorithm in this
library,

.. math::

    r = e_s - \\frac{1}{\\alpha}\\,(I - (1-\\alpha) P^T)\\, p,

is exactly what makes PPR *incrementally maintainable*: it certifies
``||p - pi_s||_1 <= sum(|r|)`` for any ``(p, r)`` pair satisfying it,
and when one out-edge of node ``u`` changes, the pair can be made valid
for the *new* graph by a purely local, degree-scaled correction — no
recomputation anywhere else.  With ``d`` the out-degree of ``u``
*before* the update and ``p_u`` its current reserve:

* **insert** ``(u, w)``::

      p[u] *= (d + 1) / d
      r[u] -= p_u / (alpha * d)
      r[w] += p_u * (1 - alpha) / (alpha * d)

* **delete** ``(u, w)``::

      p[u] *= (d - 1) / d
      r[u] += p_u / (alpha * d)
      r[w] -= p_u * (1 - alpha) / (alpha * d)

(both follow by solving the invariant for the new transition matrix
with a reserve change confined to ``u``; the same rule appears in the
dynamic-PPR literature, e.g. Zhang et al., VLDB 2016).  Corrections can
drive residues *negative*; the push recurrence is linear, so pushes of
negative mass are algebraically identical and the certified error
bound becomes ``sum(|r|)``.

:class:`IncrementalPPR` tracks one source on a
:class:`~repro.graph.dynamic.DynamicGraph`: it lazily replays the
graph's update journal, applies the corrections above, then re-runs
vectorised dynamic-threshold sweeps until ``sum(|r|)`` is back under
the contract — re-certifying with pushes governed by the perturbation
magnitude, instead of a from-scratch solve.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.kernels import DENSE_SWEEP_FRACTION, frontier_edge_targets
from repro.core.powerpush import PowerPushConfig, power_push
from repro.core.result import PPRResult
from repro.core.validation import check_alpha, check_l1_threshold, check_source
from repro.errors import ConvergenceError, ParameterError
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import DynamicGraph
from repro.instrumentation.counters import PushCounters
from repro.instrumentation.tracing import ConvergenceTrace

__all__ = ["IncrementalPPR"]

#: Safety cap on certification sweeps; signed residue mass contracts by
#: at least (1 - alpha) per sweep, so hundreds suffice for any sane
#: l1_threshold — thousands means something is wrong.
_MAX_SWEEPS = 10_000


class IncrementalPPR:
    """Maintained ``(p, r)`` pair for one tracked source.

    Parameters
    ----------
    graph:
        The evolving graph.  Must be dead-end-free (dead ends make the
        transition matrix policy-dependent, which breaks the purely
        local correction; the library's walk indexes carry the same
        restriction).
    source, alpha:
        The tracked query.
    l1_threshold:
        The certification contract: after :meth:`refresh`,
        ``sum(|r|) <= l1_threshold`` and therefore
        ``||p - pi_s||_1 <= l1_threshold``.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        source: int,
        *,
        alpha: float = 0.2,
        l1_threshold: float = 1e-8,
        config: PowerPushConfig | None = None,
    ) -> None:
        if not isinstance(graph, DynamicGraph):
            raise ParameterError(
                "IncrementalPPR requires a DynamicGraph (wrap a DiGraph "
                "with repro.graph.DynamicGraph to track it)"
            )
        check_alpha(alpha)
        check_l1_threshold(l1_threshold)
        self.graph = graph
        self.alpha = float(alpha)
        self.l1_threshold = float(l1_threshold)
        self._config = config
        snapshot = graph.snapshot()
        check_source(snapshot, source)
        self.source = int(source)
        self._require_no_dead_ends(snapshot)
        self._needs_rebuild = False
        self.total_counters = PushCounters()
        self._version = graph.version
        self._solve_from_scratch(snapshot, self.total_counters)

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Graph version the maintained pair is valid for."""
        return self._version

    @property
    def stale(self) -> bool:
        """True when graph updates exist that have not been replayed."""
        return self.graph.version > self._version

    @property
    def error_bound(self) -> float:
        """``sum(|r|)`` — the certified l1-error of the current ``p``.

        Only meaningful for the graph at :attr:`version`; call
        :meth:`refresh` first when :attr:`stale`.
        """
        return float(np.abs(self._r).sum())

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def refresh(self, *, trace: ConvergenceTrace | None = None) -> PPRResult:
        """Repair the pair for the current graph and re-certify.

        Replays the journal (degree-scaled corrections), then sweeps
        until ``sum(|r|) <= l1_threshold`` — the same stop rule
        PowerPush certifies from scratch.  Returns a
        :class:`~repro.core.result.PPRResult` whose counters cover
        *this refresh only* — the cost of absorbing the pending updates
        — so callers can compare against a from-scratch solve.  Note
        the residue vector may hold negative entries; the certified
        l1-error is ``sum(|residue|)`` (also :attr:`error_bound`), not
        the signed ``r_sum``.

        Wall-clock note: a refresh at a new graph version materialises
        the CSR snapshot (and its cached ``P^T``) if nothing else has
        yet — an ``O(m)``-ish cost that any query on the new version
        pays once and every consumer of the same version then shares.
        The *solve* cost on top is what the counters measure, and it
        scales with the perturbation.
        """
        started = time.perf_counter()
        counters = PushCounters()
        if trace is not None:
            trace.restart_clock()
            trace.record(0, self.error_bound)

        if self._version < self.graph.journal_floor:
            # The replayed prefix of the journal was trimmed past us;
            # resync from the current snapshot instead of replaying.
            self._needs_rebuild = True
        else:
            for update in self.graph.updates_since(self._version):
                self._apply_correction(update, counters)
                if self._needs_rebuild:
                    # The rebuild discards (p, r); replaying (and
                    # billing) the remaining corrections would be waste.
                    break
        self._version = self.graph.version

        snapshot = self.graph.snapshot()
        self._require_no_dead_ends(snapshot)
        if self._needs_rebuild:
            self._solve_from_scratch(snapshot, counters)
            self._needs_rebuild = False
        else:
            self._certify(snapshot, counters, trace)

        self.total_counters.merge(counters)
        if trace is not None:
            trace.record(counters.residue_updates, self.error_bound)
        return PPRResult(
            estimate=self._p.copy(),
            residue=self._r.copy(),
            source=self.source,
            alpha=self.alpha,
            counters=counters,
            trace=trace,
            seconds=time.perf_counter() - started,
            method="IncrementalPPR",
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _solve_from_scratch(
        self, snapshot: DiGraph, counters: PushCounters
    ) -> None:
        result = power_push(
            snapshot,
            self.source,
            alpha=self.alpha,
            l1_threshold=self.l1_threshold,
            config=self._config,
        )
        self._p = result.estimate.copy()
        assert result.residue is not None
        self._r = result.residue.copy()
        counters.merge(result.counters)
        counters.bump("full_rebuilds")

    def _apply_correction(self, update, counters: PushCounters) -> None:
        """One journal entry -> the local invariant repair at ``u``."""
        u, w, d = update.source, update.target, update.old_out_degree
        if update.op == "+":
            if d == 0:
                # No valid old transition row to rescale (u was a dead
                # end); the local repair does not exist — fall back to
                # a full rebuild at the end of the replay.
                self._needs_rebuild = True
                return
            scale = (d + 1) / d
            signed = -1.0
        else:
            if d <= 1:
                self._needs_rebuild = True
                return
            scale = (d - 1) / d
            signed = 1.0
        p_u = float(self._p[u])
        self._p[u] = p_u * scale
        correction = p_u / (self.alpha * d)
        self._r[u] += signed * correction
        self._r[w] -= signed * (1.0 - self.alpha) * correction
        counters.residue_updates += 2
        counters.bump("residue_corrections")

    def _certify(
        self,
        snapshot: DiGraph,
        counters: PushCounters,
        trace: ConvergenceTrace | None,
    ) -> None:
        """Signed sweep-pushes until ``sum(|r|) <= l1_threshold``.

        Reuses PowerPush's dynamic-threshold idea: epoch targets shrink
        geometrically from the *current* perturbation mass down to the
        contract, so early sweeps only touch nodes carrying real excess
        and residues accumulate before being pushed.  The total cost is
        therefore governed by ``log(perturbation / l1_threshold)``
        rather than the from-scratch ``log(1 / l1_threshold)``.
        """
        m = snapshot.num_edges
        if m == 0:
            return
        bound = self.error_bound
        if bound <= self.l1_threshold:
            return
        n = snapshot.num_nodes
        degree = snapshot.out_degree.astype(np.float64)
        epochs = (self._config or PowerPushConfig()).epoch_num
        targets = [
            bound ** (1.0 - i / epochs) * self.l1_threshold ** (i / epochs)
            for i in range(1, epochs + 1)
        ]
        sweeps = 0
        for target in targets:
            threshold = degree * (target / m)
            while float(np.abs(self._r).sum()) > target:
                active = np.abs(self._r) > threshold
                num_active = int(np.count_nonzero(active))
                if num_active == 0:
                    # All below the per-node thresholds, which already
                    # implies sum(|r|) <= sum(d_v * target / m) = target.
                    break
                # Same frontier-vs-scan switch as the push kernels: a
                # narrow frontier pays only its own degrees via gather/
                # scatter, a wide one pays one contiguous O(m) mat-vec.
                if num_active <= DENSE_SWEEP_FRACTION * n:
                    self._frontier_sweep(
                        snapshot, np.flatnonzero(active), counters
                    )
                else:
                    mass = np.where(active, self._r, 0.0)
                    self._p += self.alpha * mass
                    self._r -= mass
                    self._r += (1.0 - self.alpha) * (
                        snapshot.transition_matrix_transpose() @ mass
                    )
                    counters.count_bulk_pushes(
                        num_active, int(degree[active].sum())
                    )
                counters.iterations += 1
                sweeps += 1
                if sweeps > _MAX_SWEEPS:
                    raise ConvergenceError(
                        f"incremental certification did not converge in "
                        f"{_MAX_SWEEPS} sweeps "
                        f"(|r| sum = {float(np.abs(self._r).sum()):.3e})"
                    )
                if trace is not None:
                    trace.maybe_record(
                        counters.residue_updates,
                        float(np.abs(self._r).sum()),
                    )

    def _frontier_sweep(
        self,
        snapshot: DiGraph,
        nodes: np.ndarray,
        counters: PushCounters,
    ) -> None:
        """Signed gather/scatter push of exactly ``nodes``.

        The sign-tolerant analog of
        :func:`repro.core.kernels.frontier_push`: costs
        ``O(sum of frontier degrees)`` instead of a full mat-vec, so a
        refresh after a small perturbation is cheap in wall-clock, not
        just in counters.  Dead-end-free graphs only (enforced by
        :meth:`refresh`), so every pushed node has neighbours.
        """
        r_pushed = self._r[nodes].copy()
        self._p[nodes] += self.alpha * r_pushed
        self._r[nodes] = 0.0
        targets, counts = frontier_edge_targets(snapshot, nodes)
        if targets.shape[0]:
            shares = (1.0 - self.alpha) * r_pushed / counts
            self._r += np.bincount(
                targets,
                weights=np.repeat(shares, counts),
                minlength=snapshot.num_nodes,
            )
        counters.count_bulk_pushes(nodes.shape[0], int(targets.shape[0]))

    @staticmethod
    def _require_no_dead_ends(snapshot: DiGraph) -> None:
        if snapshot.has_dead_ends:
            raise ParameterError(
                "incremental PPR maintenance requires a dead-end-free "
                "graph: dead-end mass routing is policy-dependent, which "
                "breaks the local residue correction"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalPPR(source={self.source}, version={self._version}, "
            f"stale={self.stale}, error_bound={self.error_bound:.3e})"
        )
