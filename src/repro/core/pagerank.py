"""Global and preference-vector PageRank on the PowerPush kernels.

The paper closes Section 5 noting that PowItr "is an important
fundamental method" and that PowerPush "would be of independent
interest in other applications beyond the SSPPR queries".  This module
is that extension: the same sweep kernels applied to

* **global PageRank** — the teleport distribution is uniform, and
* **preference-vector PPR** — teleport to an arbitrary distribution
  (e.g. a set of seed nodes), the generalisation used by topic-
  sensitive PageRank.

A single-node preference reduces exactly to the SSPPR definition; the
tests assert that equivalence against :func:`repro.core.powerpush`.

Dead ends redirect their mass to the preference distribution (the
natural generalisation of the paper's redirect-to-source rule).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.result import PPRResult
from repro.core.validation import check_alpha, check_l1_threshold
from repro.errors import ConvergenceError, ParameterError
from repro.graph.digraph import DiGraph
from repro.instrumentation.counters import PushCounters

__all__ = ["pagerank", "preference_pagerank"]


def pagerank(
    graph: DiGraph,
    *,
    alpha: float = 0.15,
    l1_threshold: float = 1e-10,
    max_iterations: int | None = None,
) -> PPRResult:
    """Global PageRank (uniform teleport), classic ``alpha = 0.15``."""
    if graph.num_nodes == 0:
        raise ParameterError("cannot rank an empty graph")
    preference = np.full(graph.num_nodes, 1.0 / graph.num_nodes)
    return preference_pagerank(
        graph,
        preference,
        alpha=alpha,
        l1_threshold=l1_threshold,
        max_iterations=max_iterations,
        method="PageRank",
    )


def preference_pagerank(
    graph: DiGraph,
    preference: np.ndarray,
    *,
    alpha: float = 0.2,
    l1_threshold: float = 1e-10,
    max_iterations: int | None = None,
    method: str = "PreferencePPR",
) -> PPRResult:
    """PPR with an arbitrary teleport distribution ``preference``.

    Solves ``pi = alpha * preference + (1 - alpha) * pi P`` by the
    sweep iteration; residue mass decays by ``(1 - alpha)`` per sweep
    exactly as in the single-source case, so the returned residue sum
    is the realised l1-error bound.
    """
    check_alpha(alpha)
    check_l1_threshold(l1_threshold)
    preference = np.asarray(preference, dtype=np.float64)
    if preference.shape != (graph.num_nodes,):
        raise ParameterError(
            f"preference must have shape ({graph.num_nodes},); "
            f"got {preference.shape}"
        )
    if np.any(preference < 0):
        raise ParameterError("preference entries must be non-negative")
    total = float(preference.sum())
    if not np.isfinite(total) or total <= 0:
        raise ParameterError("preference must have positive finite mass")
    preference = preference / total

    if max_iterations is None:
        import math

        max_iterations = (
            max(int(math.ceil(math.log(l1_threshold) / math.log(1.0 - alpha))), 1)
            + 8
        )

    started = time.perf_counter()
    counters = PushCounters()
    reserve = np.zeros(graph.num_nodes)
    residue = preference.copy()
    r_sum = 1.0
    transition_t = (
        graph.transition_matrix_transpose() if graph.num_edges else None
    )
    dead = graph.dead_ends

    iterations = 0
    while r_sum > l1_threshold:
        if iterations >= max_iterations:
            raise ConvergenceError(
                f"preference_pagerank exceeded {max_iterations} iterations"
            )
        reserve += alpha * residue
        dead_mass = (
            (1.0 - alpha) * float(residue[dead].sum()) if dead.shape[0] else 0.0
        )
        if transition_t is not None:
            residue = transition_t.dot((1.0 - alpha) * residue)
        else:
            residue = np.zeros_like(residue)
            dead_mass = (1.0 - alpha) * r_sum
        if dead_mass:
            residue = residue + dead_mass * preference
        r_sum = float(residue.sum())
        iterations += 1
        counters.count_bulk_pushes(graph.num_nodes, graph.num_edges)
        counters.iterations = iterations

    return PPRResult(
        estimate=reserve,
        residue=residue,
        source=-1,
        alpha=alpha,
        counters=counters,
        seconds=time.perf_counter() - started,
        method=method,
    )
