"""Reusable scratch buffers for the push kernels.

The vectorised kernels allocate several frontier-sized temporaries per
call (gather positions, gathered targets, scatter indexes).  In a query
loop — and especially inside the block solver, which pushes every round
of every epoch through the same kernels — those allocations dominate
the Python-side overhead and churn the allocator.  A :class:`Workspace`
is a tiny keyed buffer pool: kernels request a named buffer of a given
size and dtype, and the pool hands back a prefix view of a cached
array, growing it geometrically when the request outgrows the cache.

The pool is deliberately *not* thread-safe and buffers are *not*
stable across requests: a buffer returned for key ``k`` is only valid
until the next request for ``k``.  Callers therefore create one
workspace per solve (or per solver thread) and thread it through the
kernel calls — see :func:`repro.core.powerpush.power_push_block`.

``requests``/``allocations`` counters make reuse observable: the
kernel benchmark reports them in ``BENCH_kernels.json`` so allocation
regressions show up next to the timing numbers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Keyed pool of reusable scratch arrays (single-threaded)."""

    __slots__ = ("_buffers", "requests", "allocations")

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        #: buffer requests served (reused + freshly allocated)
        self.requests = 0
        #: requests that had to allocate (cache empty or outgrown)
        self.allocations = 0

    def buffer(self, key: str, size: int, dtype=np.float64) -> np.ndarray:
        """A length-``size`` scratch array for ``key`` (contents arbitrary).

        The returned array is a prefix view of a pooled buffer; it is
        invalidated by the next ``buffer(key, ...)`` call with the same
        key, so never hold one across a nested kernel call that might
        request the same key.
        """
        self.requests += 1
        dtype = np.dtype(dtype)
        cached = self._buffers.get(key)
        if cached is not None and cached.dtype == dtype and cached.shape[0] >= size:
            return cached[:size]
        # Grow geometrically so a sequence of slightly-increasing
        # frontiers costs O(log) allocations, not one per call.
        capacity = size
        if cached is not None and cached.dtype == dtype:
            capacity = max(size, 2 * cached.shape[0])
        fresh = np.empty(capacity, dtype=dtype)
        self._buffers[key] = fresh
        self.allocations += 1
        return fresh[:size]

    def buffer2d(
        self, key: str, rows: int, cols: int, dtype=np.float64
    ) -> np.ndarray:
        """A ``(rows, cols)`` scratch matrix backed by the 1-D pool.

        Same contract as :meth:`buffer` (a reshaped prefix view,
        invalidated by the next request for ``key``); the kernels'
        block paths use it for their row-major staging matrices.
        """
        return self.buffer(key, rows * cols, dtype).reshape(rows, cols)

    @property
    def reused(self) -> int:
        """Requests served without allocating."""
        return self.requests - self.allocations

    def stats(self) -> dict[str, int]:
        """Counters for benchmark reports."""
        return {
            "requests": self.requests,
            "allocations": self.allocations,
            "reused": self.reused,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        held = sum(buf.nbytes for buf in self._buffers.values())
        return (
            f"Workspace(keys={len(self._buffers)}, bytes={held}, "
            f"requests={self.requests}, allocations={self.allocations})"
        )
