"""The shared Monte-Carlo refinement phase (paper Eq. 13-14).

FORA, SpeedPPR and ResAcc all finish the same way: given the reserve
vector ``pi_hat`` and residue vector ``r`` left by a push phase, each
node ``v`` with ``r(s, v) > 0`` launches ``W_v = ceil(r(s, v) * W)``
alpha-walks, and every walk stopping at ``u`` adds ``r(s, v) / W_v`` to
``pi_hat(s, u)`` (Eq. 13).  The final estimate (Eq. 14) is unbiased
because ``pi_s = pi_hat + sum_v r(s, v) * pi_v`` (the linearity
invariant of forward push) and each walk from ``v`` is an unbiased
sample of ``pi_v``.

Walks either run live through the engine or come from a pre-computed
:class:`~repro.walks.index.WalkIndex` (the FORA+ / SpeedPPR-Index
variants).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.errors import IndexMismatchError, ParameterError
from repro.graph.digraph import DiGraph
from repro.instrumentation.counters import PushCounters
from repro.walks.engine import simulate_walk_stops
from repro.walks.index import WalkIndex

__all__ = ["monte_carlo_refine", "required_walks"]

OnInsufficient = Literal["error", "cap"]


def required_walks(residue: np.ndarray, num_walks_w: float) -> np.ndarray:
    """Per-node walk budget ``W_v = ceil(r(s,v) * W)`` (0 where r = 0)."""
    if num_walks_w <= 0:
        raise ParameterError(f"W must be positive, got {num_walks_w}")
    return np.ceil(np.maximum(residue, 0.0) * num_walks_w).astype(np.int64)


def monte_carlo_refine(
    graph: DiGraph,
    source: int,
    alpha: float,
    reserve: np.ndarray,
    residue: np.ndarray,
    num_walks_w: float,
    *,
    rng: np.random.Generator | None = None,
    walk_index: WalkIndex | None = None,
    counters: PushCounters | None = None,
    on_insufficient: OnInsufficient = "error",
) -> np.ndarray:
    """Run the Eq. 13-14 refinement and return the final estimate.

    Parameters
    ----------
    reserve, residue:
        The push phase's output; neither array is modified.
    num_walks_w:
        The Chernoff budget ``W`` (Eq. 12).
    rng:
        Required when ``walk_index`` is None (live walks).
    walk_index:
        Pre-computed walks; node ``v`` consumes its first ``W_v``
        entries.
    on_insufficient:
        With an index, what to do when ``W_v`` exceeds the
        pre-computed count ``K_v``: ``"error"`` raises
        :class:`IndexMismatchError`; ``"cap"`` silently uses ``K_v``
        walks (statistically safe — the estimator stays unbiased with
        any positive walk count — at slightly higher variance).
    """
    if walk_index is None and rng is None:
        raise ParameterError("live Monte-Carlo phase requires an rng")
    if walk_index is not None:
        walk_index.check_graph(graph)
        if abs(walk_index.alpha - alpha) > 1e-12:
            raise IndexMismatchError(
                f"index built for alpha={walk_index.alpha}, query uses {alpha}"
            )

    estimate = reserve.astype(np.float64, copy=True)
    nodes = np.flatnonzero(residue > 0.0)
    if nodes.shape[0] == 0:
        return estimate

    walks_needed = required_walks(residue[nodes], num_walks_w)

    if walk_index is not None:
        available = (
            walk_index.indptr[nodes + 1] - walk_index.indptr[nodes]
        ).astype(np.int64)
        short = walks_needed > available
        if np.any(short):
            if on_insufficient == "error":
                worst = nodes[short][0]
                raise IndexMismatchError(
                    f"node {int(worst)} needs "
                    f"{int(walks_needed[short][0])} walks but the index "
                    f"holds {int(available[short][0])} "
                    f"(policy={walk_index.policy!r}); rebuild the index "
                    "or pass on_insufficient='cap'"
                )
            walks_needed = np.minimum(walks_needed, available)
            if counters is not None:
                counters.bump("index_capped_nodes", int(short.sum()))
        stops = _gather_index_stops(walk_index, nodes, walks_needed)
        steps = 0
    else:
        starts = np.repeat(nodes, walks_needed)
        assert rng is not None
        stops, steps = simulate_walk_stops(
            graph, starts, alpha=alpha, source=source, rng=rng
        )

    total_walks = int(walks_needed.sum())
    if total_walks:
        live = walks_needed > 0
        weights = np.zeros(nodes.shape[0], dtype=np.float64)
        weights[live] = residue[nodes[live]] / walks_needed[live]
        per_walk_weight = np.repeat(weights, walks_needed)
        estimate += np.bincount(
            stops, weights=per_walk_weight, minlength=graph.num_nodes
        )
    if counters is not None:
        counters.random_walks += total_walks
        counters.walk_steps += steps
    return estimate


def _gather_index_stops(
    index: WalkIndex, nodes: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Concatenate the first ``counts[i]`` pre-computed stops of each node."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = index.indptr[nodes]
    offsets = np.empty(counts.shape[0], dtype=np.int64)
    offsets[0] = 0
    np.cumsum(counts[:-1], out=offsets[1:])
    positions = np.repeat(starts - offsets, counts) + np.arange(total)
    return index.stops[positions].astype(np.int64)
