"""Vectorised push kernels shared by the algorithm implementations.

Every push-family algorithm in the paper reduces to two bulk moves:

* a **global sweep** — push *every* node simultaneously; this is one
  Power-Iteration step and costs ``O(m)`` regardless of how much
  residue exists (implemented as one sparse mat-vec with the cached
  ``P^T``), and
* a **frontier push** — push only a given set of nodes; this costs
  ``O(sum of frontier degrees)`` (implemented as a gather of the
  frontier's adjacency ranges followed by one ``bincount`` scatter).

The switch between them is exactly the paper's "global sequential scan
vs. local random access" trade-off (Section 5): for small frontiers the
gather/scatter wins; once the frontier covers a sizeable fraction of
the graph the contiguous mat-vec is faster.  :func:`sweep_active`
chooses automatically using the same kind of threshold PowerPush uses.

All kernels perform *simultaneous* pushes: contributions are computed
from the residues at entry.  They mutate the :class:`PushState` in
place and keep its incremental ``r_sum`` and counters up to date.
"""

from __future__ import annotations

import numpy as np

from repro.core.residues import PushState

__all__ = [
    "frontier_edge_targets",
    "global_sweep",
    "frontier_push",
    "sweep_active",
]

# Fraction of all nodes above which `sweep_active` abandons the
# gather/scatter path for the contiguous mat-vec.  Mirrors PowerPush's
# scan_threshold = n/4 default.
DENSE_SWEEP_FRACTION = 0.25


def frontier_edge_targets(
    graph, nodes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the out-adjacency lists of ``nodes``.

    Returns ``(targets, counts)`` where ``targets`` is the concatenation
    of each node's out-neighbour list (in node order) and ``counts``
    holds each node's out-degree.  This is the vectorised "multi-range
    gather" that replaces the per-node random access of the scalar push
    loop.
    """
    indptr = graph.out_indptr
    starts = indptr[nodes]
    counts = (indptr[nodes + 1] - starts).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=graph.out_indices.dtype), counts
    offsets = np.empty(counts.shape[0], dtype=np.int64)
    offsets[0] = 0
    np.cumsum(counts[:-1], out=offsets[1:])
    positions = np.repeat(starts - offsets, counts) + np.arange(total)
    return graph.out_indices[positions], counts


def global_sweep(
    state: PushState,
    *,
    count_all_edges: bool = True,
) -> None:
    """One simultaneous push of every node — a Power-Iteration step.

    ``pi_hat += alpha * r`` and ``r <- (1 - alpha) * r P`` via the
    cached transposed transition matrix; dead-end mass follows the
    state's policy.

    Parameters
    ----------
    count_all_edges:
        When True (PowItr semantics) the sweep is billed ``m`` residue
        updates — the global approach touches every edge.  When False
        (SimFwdPush semantics) only the out-degrees of nodes holding
        residue are billed.
    """
    graph = state.graph
    r = state.residue
    alpha = state.alpha

    state.reserve += alpha * r
    moved = graph.transition_matrix_transpose().dot((1.0 - alpha) * r)

    dead = graph.dead_ends
    dead_mass = 0.0
    if dead.shape[0]:
        dead_mass = (1.0 - alpha) * float(r[dead].sum())

    if count_all_edges:
        state.counters.count_bulk_pushes(graph.num_nodes, graph.num_edges)
    else:
        holders = r > 0.0
        state.counters.count_bulk_pushes(
            int(np.count_nonzero(holders)),
            int(np.dot(graph.out_degree, holders)),
        )

    state.residue = moved
    _apply_dead_end_mass(state, dead_mass)
    state.refresh_r_sum()


def frontier_push(state: PushState, nodes: np.ndarray) -> None:
    """Simultaneously push exactly ``nodes`` (gather/scatter path).

    Contributions are based on the residues at entry; the pushed nodes'
    residues are zeroed first so self-loop edges re-deposit correctly.
    """
    if nodes.shape[0] == 0:
        return
    graph = state.graph
    alpha = state.alpha
    r_pushed = state.residue[nodes].copy()
    pushed_mass = float(r_pushed.sum())

    state.reserve[nodes] += alpha * r_pushed
    state.residue[nodes] = 0.0

    targets, counts = frontier_edge_targets(graph, nodes)
    live = counts > 0
    if targets.shape[0]:
        shares = np.zeros(nodes.shape[0], dtype=np.float64)
        shares[live] = (1.0 - alpha) * r_pushed[live] / counts[live]
        contributions = np.repeat(shares, counts)
        state.residue += np.bincount(
            targets, weights=contributions, minlength=graph.num_nodes
        )

    dead_mass = (1.0 - alpha) * float(r_pushed[~live].sum())
    num_dead = int((~live).sum())
    state.counters.count_bulk_pushes(
        nodes.shape[0], int(targets.shape[0]) + num_dead
    )
    _apply_dead_end_mass(state, dead_mass)
    state.note_r_sum_delta(-alpha * pushed_mass)


def sweep_active(
    state: PushState,
    r_max: float,
    *,
    dense_fraction: float = DENSE_SWEEP_FRACTION,
    threshold_vec: np.ndarray | None = None,
) -> int:
    """Push all currently-active nodes once; return how many were pushed.

    Chooses between the local gather/scatter path and the global path
    depending on the frontier size — the vectorised analog of
    PowerPush's queue-vs-sequential-scan switch.  The global path
    pushes *every* residue-holding node (not only the active ones):
    a full sweep costs exactly one mat-vec, whereas masking costs the
    same mat-vec plus several ``O(n)`` passes, so once the frontier is
    wide the unmasked sweep strictly dominates.  Pushing an inactive
    node is always legal (it only converts more residue), so the
    l1-error guarantee is unaffected.

    Parameters
    ----------
    threshold_vec:
        Optional precomputed ``out_degree * r_max`` array.  Callers
        that sweep repeatedly at a fixed ``r_max`` (epoch loops) pass
        it to avoid recomputing the products every sweep.
    """
    graph = state.graph
    if threshold_vec is None:
        active = state.active_mask(r_max)
    else:
        active = state.residue > threshold_vec
    num_active = int(np.count_nonzero(active))
    if num_active == 0:
        return 0

    if num_active <= dense_fraction * graph.num_nodes:
        frontier_push(state, np.flatnonzero(active))
    else:
        global_sweep(state, count_all_edges=False)
    return num_active


def _apply_dead_end_mass(state: PushState, dead_mass: float) -> None:
    """Route mass emitted by dead ends according to the state's policy."""
    if dead_mass == 0.0:
        return
    if state.dead_end_policy == "redirect-to-source":
        state.residue[state.source] += dead_mass
    elif state.dead_end_policy == "uniform-teleport":
        state.residue += dead_mass / state.graph.num_nodes
    else:  # self-loop handled structurally; mass cannot appear here
        raise AssertionError(
            "structural self-loop graphs cannot emit dead-end mass"
        )
