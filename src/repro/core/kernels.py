"""Vectorised push kernels shared by the algorithm implementations.

Every push-family algorithm in the paper reduces to two bulk moves:

* a **global sweep** — push *every* node simultaneously; this is one
  Power-Iteration step and costs ``O(m)`` regardless of how much
  residue exists (implemented as one sparse mat-vec with the cached
  ``P^T``), and
* a **frontier push** — push only a given set of nodes; this costs
  ``O(sum of frontier degrees)`` (implemented as a gather of the
  frontier's adjacency ranges followed by one ``bincount`` scatter).

The switch between them is exactly the paper's "global sequential scan
vs. local random access" trade-off (Section 5): for small frontiers the
gather/scatter wins; once the frontier covers a sizeable fraction of
the graph the contiguous mat-vec is faster.  :func:`sweep_active`
chooses automatically using the same kind of threshold PowerPush uses.

All kernels perform *simultaneous* pushes: contributions are computed
from the residues at entry.  They mutate the :class:`PushState` in
place and keep its incremental ``r_sum`` and counters up to date.

Block (multi-source) kernels and their cost model
-------------------------------------------------
Each kernel has a block variant operating on a
:class:`~repro.core.residues.BlockPushState` with ``B`` residue rows.
Amortising the adjacency scan over simultaneous sources changes the
constants, not the asymptotics:

* :func:`block_global_sweep` is one sparse *mat-mat* ``P^T @ R^T``
  instead of ``B`` mat-vecs.  The ``O(m)`` pass over the CSR arrays —
  the memory-bound part — is paid **once** for all ``B`` rows; each
  nonzero touched streams ``B`` contiguous residue values, so the cost
  is ``O(m + m·B)`` flops behind a single ``O(m)`` index scan instead
  of ``B`` separate scans.
* :func:`block_frontier_push` gathers the adjacency ranges of the
  **union** frontier once (``O(sum of union degrees)``) and scatters
  all rows through one flat 2-D ``bincount`` over ``row * n + target``
  indexes.  Rows pay only for their *own* active nodes' shares; nodes
  active in no row contribute exact ``+0.0`` terms, which keeps every
  row bitwise-identical to an independent single-source push while the
  index arithmetic is shared.
* :func:`block_sweep_active` applies the global/local switch *per
  row*: hot rows (wide frontiers) join the mat-mat scan while cold
  rows (narrow frontiers) join the union gather — the paper's density
  trade-off, decided independently for every source in the block.

Scratch buffers: the frontier kernels accept an optional
:class:`~repro.core.workspace.Workspace`; callers that push in a loop
(the solvers) thread one through so the frontier-sized temporaries are
reused instead of reallocated every call.  This, the bitwise gather
discipline above, and the ``backend=`` threading below are enforced
mechanically: ``repro-ppr lint`` (``repro.analysis``) checks
``workspace-discipline``, ``no-column-fancy-gather``, and
``backend-parity`` on every CI run — see CONTRIBUTING.md for the
invariant -> rule table.

Pluggable backends and what the compiled path removes
-----------------------------------------------------
Every kernel accepts an optional ``backend``
(:class:`~repro.backends.KernelBackend`); ``None`` — the default, and
what the ``numpy`` reference backend resolves to — runs the NumPy
bodies in this module, so golden traces stay byte-identical.  A
compiled backend (``numba``) replaces the *constant-factor* terms of
the cost model above, not its asymptotics:

* the frontier push's three ``O(total)`` staging passes (position
  cumsum, target gather, share ``repeat``) and the ``O(n)``
  ``bincount`` scatter collapse into **one** loop over the frontier's
  CSR ranges — each edge is touched exactly once and the share stays
  in a register, so a sparse late-epoch frontier costs
  ``O(sum of frontier degrees)`` with no ``O(n)``-sized scatter term
  and no per-call NumPy dispatch overhead;
* the global sweep's scipy mat-vec dispatch and the separate ``O(n)``
  reserve/billing passes fuse into one loop over ``P^T``;
* the block kernels drop the union-frontier staging entirely — the
  ``(B x total)`` share/weight matrices the 2-D ``bincount`` scatter
  needs (zero-filled even where a row is inactive) are replaced by
  per-row loops that only walk the row's own active ranges, run in
  parallel over the row dimension (``prange``).

Empty frontiers are handled *before* backend dispatch: a push with no
nodes (or a block push with no active mask) returns immediately
without requesting a single workspace buffer, so late epochs that
probe an exhausted frontier cost nothing on any backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.residues import BlockPushState, PushState
from repro.core.workspace import Workspace

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    # Runtime import would be circular: repro.backends pulls in
    # repro.core at its own import time.  Dispatch below only calls
    # methods on the passed object, so the type is annotation-only.
    from repro.backends.base import KernelBackend

try:  # pragma: no cover - import guard for exotic scipy builds
    from scipy.sparse._sparsetools import csr_matvecs as _csr_matvecs
except ImportError:  # pragma: no cover
    _csr_matvecs = None

__all__ = [
    "frontier_edge_targets",
    "global_sweep",
    "frontier_push",
    "sweep_active",
    "block_global_sweep",
    "block_frontier_push",
    "block_sweep_active",
]

# Fraction of all nodes above which `sweep_active` abandons the
# gather/scatter path for the contiguous mat-vec.  Mirrors PowerPush's
# scan_threshold = n/4 default.
DENSE_SWEEP_FRACTION = 0.25

# Shared zero-length results for the empty-frontier fast paths: late
# epochs probe exhausted/dead frontiers often, and those probes should
# allocate nothing at all (see the regression tests).
_EMPTY_INT32 = np.empty(0, dtype=np.int32)
_EMPTY_INT32.flags.writeable = False
_EMPTY_INT64 = np.empty(0, dtype=np.int64)
_EMPTY_INT64.flags.writeable = False


def frontier_edge_targets(
    graph, nodes: np.ndarray, *, workspace: Workspace | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the out-adjacency lists of ``nodes``.

    Returns ``(targets, counts)`` where ``targets`` is the concatenation
    of each node's out-neighbour list (in node order) and ``counts``
    holds each node's out-degree.  This is the vectorised "multi-range
    gather" that replaces the per-node random access of the scalar push
    loop.

    The gather positions are built by an in-place boundary-delta cumsum
    (first element of each range, ``+1`` within a range) instead of the
    old ``np.repeat`` + ``np.arange`` construction, which materialised
    three extra ``O(total)`` temporaries on every call.  With a
    ``workspace`` the position and target arrays are pooled scratch
    buffers — the returned ``targets`` is then only valid until the
    next workspace request, so consume it before pushing again.
    """
    if nodes.shape[0] == 0:
        # Fast path: no nodes means no gather — return shared empties
        # without touching the workspace or allocating.
        return _EMPTY_INT32, _EMPTY_INT64
    indptr = graph.out_indptr
    starts = indptr[nodes]
    counts = (indptr[nodes + 1] - starts).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return _EMPTY_INT32, counts

    if workspace is not None:
        positions = workspace.buffer("gather_positions", total, np.int64)
    else:
        positions = np.empty(total, dtype=np.int64)
    live = counts > 0
    starts_live = starts[live]
    # Fully written below ([0] then the cumsum), so empty scratch is safe.
    offsets_live = _scratch(
        workspace, "gather_offsets", starts_live.shape[0], np.int64
    )
    offsets_live[0] = 0
    np.cumsum(counts[live][:-1], out=offsets_live[1:])
    # positions = cumsum of [start_0, 1, 1, ..., jump_1, 1, 1, ...]
    # where jump_k re-bases the running value onto range k's start.
    positions[:] = 1
    positions[0] = starts_live[0]
    if starts_live.shape[0] > 1:
        range_ends = starts_live[:-1] + np.diff(offsets_live)
        positions[offsets_live[1:]] = starts_live[1:] - range_ends + 1
    np.cumsum(positions, out=positions)

    if workspace is not None:
        targets = workspace.buffer(
            "gather_targets", total, graph.out_indices.dtype
        )
        np.take(graph.out_indices, positions, out=targets)
    else:
        targets = graph.out_indices[positions]
    return targets, counts


def global_sweep(
    state: PushState,
    *,
    count_all_edges: bool = True,
    backend: "KernelBackend | None" = None,
) -> None:
    """One simultaneous push of every node — a Power-Iteration step.

    ``pi_hat += alpha * r`` and ``r <- (1 - alpha) * r P`` via the
    cached transposed transition matrix; dead-end mass follows the
    state's policy.

    Parameters
    ----------
    count_all_edges:
        When True (PowItr semantics) the sweep is billed ``m`` residue
        updates — the global approach touches every edge.  When False
        (SimFwdPush semantics) only the out-degrees of nodes holding
        residue are billed.
    backend:
        Optional non-reference :class:`~repro.backends.KernelBackend`
        to run the sweep on; ``None`` runs the NumPy body below.
    """
    if backend is not None:
        backend.global_sweep(state, count_all_edges=count_all_edges)
        return
    graph = state.graph
    r = state.residue
    alpha = state.alpha

    state.reserve += alpha * r
    moved = graph.transition_matrix_transpose().dot((1.0 - alpha) * r)

    dead = graph.dead_ends
    dead_mass = 0.0
    if dead.shape[0]:
        dead_mass = (1.0 - alpha) * float(r[dead].sum())

    if count_all_edges:
        state.counters.count_bulk_pushes(graph.num_nodes, graph.num_edges)
    else:
        holders = r > 0.0
        state.counters.count_bulk_pushes(
            int(np.count_nonzero(holders)),
            int(np.dot(graph.out_degree, holders)),
        )

    state.residue = moved
    _apply_dead_end_mass(state, dead_mass)
    state.refresh_r_sum()


def frontier_push(
    state: PushState,
    nodes: np.ndarray,
    *,
    workspace: Workspace | None = None,
    backend: "KernelBackend | None" = None,
) -> None:
    """Simultaneously push exactly ``nodes`` (gather/scatter path).

    Contributions are based on the residues at entry; the pushed nodes'
    residues are zeroed first so self-loop edges re-deposit correctly.

    An empty ``nodes`` returns before dispatching to any backend and
    before requesting any workspace buffer (the empty-frontier fast
    path late epochs rely on).
    """
    if nodes.shape[0] == 0:
        return
    if backend is not None:
        backend.frontier_push(state, nodes, workspace=workspace)
        return
    graph = state.graph
    alpha = state.alpha
    r_pushed = state.residue[nodes].copy()
    pushed_mass = float(r_pushed.sum())

    state.reserve[nodes] += alpha * r_pushed
    state.residue[nodes] = 0.0

    targets, counts = frontier_edge_targets(graph, nodes, workspace=workspace)
    live = counts > 0
    if targets.shape[0]:
        shares = _scratch(workspace, "frontier_shares", nodes.shape[0], np.float64)
        shares[:] = 0.0
        shares[live] = (1.0 - alpha) * r_pushed[live] / counts[live]
        contributions = np.repeat(shares, counts)
        state.residue += np.bincount(
            targets, weights=contributions, minlength=graph.num_nodes
        )

    dead_mass = (1.0 - alpha) * float(r_pushed[~live].sum())
    num_dead = int((~live).sum())
    state.counters.count_bulk_pushes(
        nodes.shape[0], int(targets.shape[0]) + num_dead
    )
    _apply_dead_end_mass(state, dead_mass)
    state.note_r_sum_delta(-alpha * pushed_mass)


def sweep_active(
    state: PushState,
    r_max: float,
    *,
    dense_fraction: float = DENSE_SWEEP_FRACTION,
    threshold_vec: np.ndarray | None = None,
    workspace: Workspace | None = None,
    backend: "KernelBackend | None" = None,
) -> int:
    """Push all currently-active nodes once; return how many were pushed.

    Chooses between the local gather/scatter path and the global path
    depending on the frontier size — the vectorised analog of
    PowerPush's queue-vs-sequential-scan switch.  The global path
    pushes *every* residue-holding node (not only the active ones):
    a full sweep costs exactly one mat-vec, whereas masking costs the
    same mat-vec plus several ``O(n)`` passes, so once the frontier is
    wide the unmasked sweep strictly dominates.  Pushing an inactive
    node is always legal (it only converts more residue), so the
    l1-error guarantee is unaffected.

    Parameters
    ----------
    threshold_vec:
        Optional precomputed ``out_degree * r_max`` array.  Callers
        that sweep repeatedly at a fixed ``r_max`` (epoch loops) pass
        it to avoid recomputing the products every sweep.
    """
    if backend is not None:
        return backend.sweep_active(
            state,
            r_max,
            dense_fraction=dense_fraction,
            threshold_vec=threshold_vec,
            workspace=workspace,
        )
    graph = state.graph
    if threshold_vec is None:
        active = state.active_mask(r_max)
    else:
        active = state.residue > threshold_vec
    num_active = int(np.count_nonzero(active))
    if num_active == 0:
        return 0

    if num_active <= dense_fraction * graph.num_nodes:
        frontier_push(state, np.flatnonzero(active), workspace=workspace)
    else:
        global_sweep(state, count_all_edges=False)
    return num_active


def _apply_dead_end_mass(state: PushState, dead_mass: float) -> None:
    """Route mass emitted by dead ends according to the state's policy."""
    if dead_mass == 0.0:
        return
    if state.dead_end_policy == "redirect-to-source":
        state.residue[state.source] += dead_mass
    elif state.dead_end_policy == "uniform-teleport":
        state.residue += dead_mass / state.graph.num_nodes
    else:  # self-loop handled structurally; mass cannot appear here
        raise AssertionError(
            "structural self-loop graphs cannot emit dead-end mass"
        )


# ----------------------------------------------------------------------
# Block (multi-source) kernels
# ----------------------------------------------------------------------
# Bitwise-equality discipline: every per-row float value below is
# produced by the same operation sequence the single-source kernels
# apply — compact gathers of a row's own active nodes for the sums
# (never masked sums, whose pairwise grouping differs), elementwise
# broadcasts for the products, and scatters whose only extra terms are
# exact ``+0.0`` additions.  The sparse mat-mat accumulates each output
# column over the same nonzeros in the same order as the mat-vec, so it
# is bitwise-identical per column.  The equivalence tests pin all of
# this down.


def _scratch(
    workspace: Workspace | None, key: str, size: int, dtype
) -> np.ndarray:
    """A pooled buffer when a workspace is threaded, else a fresh one."""
    if workspace is not None:
        return workspace.buffer(key, size, dtype)
    return np.empty(size, dtype=dtype)


def _is_identity(rows: np.ndarray, num_rows: int) -> bool:
    """Whether ``rows`` is exactly ``0..num_rows-1`` in order.

    The O(B) check guards the in-place whole-block fast paths: a
    permuted (or duplicated) full-size ``rows`` must take the general
    gather path, otherwise per-row quantities would be routed to the
    wrong rows.
    """
    return rows.shape[0] == num_rows and bool(
        (rows == np.arange(num_rows)).all()
    )


def _block_propagate(
    graph, scaled: np.ndarray, workspace: Workspace | None
) -> np.ndarray:
    """``P^T @ scaled.T`` into pooled buffers; returns the ``(n, R)`` result.

    Calls the same scipy CSR kernel ``P^T.dot`` dispatches to
    (``csr_matvecs`` accumulates each output column over the nonzeros
    in mat-vec order, so columns are bitwise mat-vec results), but
    skips the dispatch layers and reuses the transpose/result scratch
    — at serving-size graphs those per-call costs rival the numeric
    work.  The result is only valid until the next call with the same
    workspace.
    """
    matrix = graph.transition_matrix_transpose()
    num_rows, n = scaled.shape
    if _csr_matvecs is None or workspace is None:
        return matrix.dot(np.ascontiguousarray(scaled.T))
    operand = workspace.buffer2d("matmat_in", n, num_rows)
    operand[:] = scaled.T
    moved = workspace.buffer2d("matmat_out", n, num_rows)
    moved[:] = 0.0
    _csr_matvecs(
        n,
        n,
        num_rows,
        matrix.indptr,
        matrix.indices,
        matrix.data,
        operand.reshape(-1),
        moved.reshape(-1),
    )
    return moved


def block_global_sweep(
    state: BlockPushState,
    rows: np.ndarray,
    *,
    count_all_edges: bool = False,
    workspace: Workspace | None = None,
    backend: "KernelBackend | None" = None,
) -> None:
    """One Power-Iteration step for every row in ``rows`` at once.

    One sparse mat-mat with the cached ``P^T`` replaces ``len(rows)``
    mat-vecs: the CSR index scan — the memory-bound part of a sweep —
    is paid once for the whole block.
    """
    if rows.shape[0] == 0:
        return
    if backend is not None:
        backend.block_global_sweep(
            state, rows, count_all_edges=count_all_edges, workspace=workspace
        )
        return
    graph = state.graph
    alpha = state.alpha
    # Sweeping the whole block in order (the common lockstep case)
    # works on the matrices in place; a strict subset — or a permuted
    # full set — pays one gather/scatter pair.
    whole_block = _is_identity(rows, state.num_rows)
    r_block = state.residue if whole_block else state.residue[rows]

    if whole_block:
        state.reserve += alpha * r_block
    else:
        state.reserve[rows] += alpha * r_block
    scaled = (1.0 - alpha) * r_block
    # One O(m) scan of the CSR arrays serves every row: the mat-mat
    # streams each nonzero's len(rows) right-hand values contiguously,
    # and the per-column accumulation order matches the mat-vec's, so
    # each row lands bitwise where its own mat-vec would.
    moved = _block_propagate(graph, scaled, workspace)

    dead = graph.dead_ends
    dead_masses = None
    if dead.shape[0]:
        # C-contiguous (R, D) compact gather (np.take; the plain
        # ``[:, dead]`` fancy index yields a transposed buffer whose
        # strided rows reduce *sequentially*, not pairwise): each row
        # of the row-wise reduction is then the same pairwise sum over
        # the same 1-D values the single-source kernel reduces.
        dead_masses = (1.0 - alpha) * np.take(r_block, dead, axis=1).sum(
            axis=1
        )

    if count_all_edges:
        state.count_bulk_pushes(rows, graph.num_nodes, graph.num_edges)
    else:
        # Billing is integer arithmetic — vectorising it across rows is
        # exact by construction.
        holders = r_block > 0.0
        state.count_bulk_pushes(
            rows,
            np.count_nonzero(holders, axis=1),
            holders @ graph.out_degree,
        )

    if whole_block:
        state.residue[:] = moved.T
    else:
        state.residue[rows] = moved.T
    if dead_masses is not None:
        policy = state.dead_end_policy
        if policy == "redirect-to-source":
            state.residue[rows, state.sources[rows]] += dead_masses
        elif policy == "uniform-teleport":
            if whole_block:
                state.residue += (dead_masses / graph.num_nodes)[:, None]
            else:
                state.residue[rows] += (
                    dead_masses / graph.num_nodes
                )[:, None]
        elif np.any(dead_masses != 0.0):
            # self-loop handled structurally; mass cannot appear here
            raise AssertionError(
                "structural self-loop graphs cannot emit dead-end mass"
            )
    # One row-wise reduction replaces per-row refresh calls;
    # bitwise-equal to summing each contiguous row on its own.
    if whole_block:
        state.r_sum[:] = state.residue.sum(axis=1)
    else:
        state.r_sum[rows] = state.residue[rows].sum(axis=1)


def block_frontier_push(
    state: BlockPushState,
    rows: np.ndarray,
    masks: np.ndarray,
    *,
    workspace: Workspace | None = None,
    backend: "KernelBackend | None" = None,
) -> None:
    """Push each row's own frontier through one shared gather/scatter.

    Parameters
    ----------
    rows:
        Row indices into the block, aligned with ``masks``.
    masks:
        ``(len(rows), n)`` boolean matrix; ``masks[i]`` is row
        ``rows[i]``'s frontier.  Every row must have at least one
        active node (callers filter empty frontiers, mirroring the
        single-source kernel's early return).

    The adjacency ranges of the **union** frontier are gathered once;
    rows scatter through a single flat ``bincount`` over
    ``local_row * n + target`` indexes.  A union node inactive in some
    row contributes an exact ``+0.0`` there, so each row's result is
    bitwise what :func:`frontier_push` on its own frontier produces.

    An empty ``rows`` (or all-empty ``masks``) returns before backend
    dispatch without requesting any workspace buffer.
    """
    if rows.shape[0] == 0:
        return
    if backend is not None:
        backend.block_frontier_push(state, rows, masks, workspace=workspace)
        return
    graph = state.graph
    alpha = state.alpha
    n = graph.num_nodes
    num_rows = rows.shape[0]

    # Row-major nonzero: per row, active columns ascending — the exact
    # node order the single-source kernel pushes in.
    local_rows, cols = np.nonzero(masks)
    if cols.shape[0] == 0:
        return
    global_rows = rows[local_rows]
    r_pushed = state.residue[global_rows, cols]
    degrees = graph.out_degree[cols]
    live = degrees > 0

    # Per-row segment boundaries within the flattened (row, col) pairs.
    frontier_sizes = np.count_nonzero(masks, axis=1)
    segments = _scratch(workspace, "block_segments", num_rows + 1, np.int64)
    segments[0] = 0
    np.cumsum(frontier_sizes, out=segments[1:])

    state.reserve[global_rows, cols] += alpha * r_pushed
    state.residue[global_rows, cols] = 0.0

    union_mask = masks.any(axis=0)
    union_nodes = np.flatnonzero(union_mask)
    targets, counts = frontier_edge_targets(
        graph, union_nodes, workspace=workspace
    )
    total = int(targets.shape[0])
    if total:
        # Shares are laid out over the *live* union nodes only: a dead
        # union node contributes no edges, so the single-source
        # ``np.repeat(shares, counts)`` skips it anyway and the
        # per-edge values are identical.  Building contributions as a
        # gather (share of the edge's owner) instead of a repeat lets
        # the big (R x total) weight matrix live in pooled scratch.
        live_union = counts > 0
        live_nodes = union_nodes[live_union]
        num_live = live_nodes.shape[0]
        live_positions = np.searchsorted(live_nodes, cols[live])

        shares = _scratch(
            workspace, "push_shares", num_rows * num_live, np.float64
        ).reshape(num_rows, num_live)
        shares[:] = 0.0
        shares[local_rows[live], live_positions] = (
            (1.0 - alpha) * r_pushed[live] / degrees[live]
        )

        # edge -> live-owner index, by the same boundary-delta cumsum
        # trick the gather uses (0 within a range, +1 at boundaries).
        edge_owner = _scratch(workspace, "scatter_owner", total, np.int64)
        edge_owner[:] = 0
        live_counts = counts[live_union]
        if num_live > 1:
            # Fully written by the cumsum, so empty scratch is safe.
            bounds = _scratch(
                workspace, "scatter_bounds", num_live - 1, np.int64
            )
            np.cumsum(live_counts[:-1], out=bounds)
            edge_owner[bounds] = 1
            edge_owner[0] = 0
            np.cumsum(edge_owner, out=edge_owner)
        weights = _scratch(
            workspace, "scatter_weights", num_rows * total, np.float64
        ).reshape(num_rows, total)
        np.take(shares, edge_owner, axis=1, out=weights)

        flat_targets = _scratch(
            workspace, "scatter_targets", num_rows * total, np.int64
        )
        flat_view = flat_targets.reshape(num_rows, total)
        flat_view[:] = targets[None, :]
        flat_view += (np.arange(num_rows, dtype=np.int64) * n)[:, None]
        scattered = np.bincount(
            flat_targets,
            weights=weights.reshape(-1),
            minlength=num_rows * n,
        ).reshape(num_rows, n)
        state.residue[rows] += scattered

    # Billing vectorises (integers); the residue-mass sums stay per-row
    # compact-slice reductions of the grouped gather — identical 1-D
    # arrays (hence identical pairwise sums) to what the single-source
    # kernel reduces.
    any_dead = bool(np.any(~live))
    dead_counts = (
        np.bincount(local_rows[~live], minlength=num_rows)
        if any_dead
        else 0
    )
    degree_sums = np.add.reduceat(degrees, segments[:-1])
    state.count_bulk_pushes(rows, frontier_sizes, degree_sums + dead_counts)
    dead_in_row = ~live
    for position in range(num_rows):
        begin, end = int(segments[position]), int(segments[position + 1])
        row = int(rows[position])
        row_r = r_pushed[begin:end]
        pushed_mass = float(row_r.sum())
        if any_dead:
            row_dead = dead_in_row[begin:end]
            dead_mass = (1.0 - alpha) * float(row_r[row_dead].sum())
            _apply_block_dead_end_mass(state, row, dead_mass)
        state.note_r_sum_delta(row, -alpha * pushed_mass)


def block_sweep_active(
    state: BlockPushState,
    rows: np.ndarray,
    masks: np.ndarray,
    *,
    dense_fraction: float = DENSE_SWEEP_FRACTION,
    workspace: Workspace | None = None,
    backend: "KernelBackend | None" = None,
) -> np.ndarray:
    """Sweep each row once, switching global/local **per row**.

    ``masks`` holds each row's activity mask (callers compute it
    against the row's current threshold).  Rows whose frontier exceeds
    ``dense_fraction * n`` join one block mat-mat scan; the rest join
    one union gather/scatter — hot rows scan while cold rows push.
    Returns the per-row active counts (0 marks a row that did not
    push).
    """
    if backend is not None:
        return backend.block_sweep_active(
            state,
            rows,
            masks,
            dense_fraction=dense_fraction,
            workspace=workspace,
        )
    graph = state.graph
    num_active = np.count_nonzero(masks, axis=1)
    local = (num_active > 0) & (num_active <= dense_fraction * graph.num_nodes)
    dense = num_active > dense_fraction * graph.num_nodes
    if local.any():
        block_frontier_push(
            state, rows[local], masks[local], workspace=workspace
        )
    if dense.any():
        block_global_sweep(
            state, rows[dense], count_all_edges=False, workspace=workspace
        )
    return num_active


def _apply_block_dead_end_mass(
    state: BlockPushState, row: int, dead_mass: float
) -> None:
    """Route one row's dead-end mass according to the shared policy."""
    if dead_mass == 0.0:
        return
    if state.dead_end_policy == "redirect-to-source":
        state.residue[row, state.sources[row]] += dead_mass
    elif state.dead_end_policy == "uniform-teleport":
        state.residue[row] += dead_mass / state.graph.num_nodes
    else:  # self-loop handled structurally; mass cannot appear here
        raise AssertionError(
            "structural self-loop graphs cannot emit dead-end mass"
        )
