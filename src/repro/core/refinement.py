"""The O(m) post-refinement step (paper Section 5, Remark; Lemma 4.5).

PowerPush's epoch loop stops once ``r_sum <= lambda``, which does *not*
imply the FwdPush termination condition ``r(s,v) <= d_v * r_max`` for
every node.  SpeedPPR (Algorithm 4, Line 3) needs that stronger
per-node guarantee so its Monte-Carlo phase requires at most ``d_v``
walks per node.  Lemma 4.5 shows that finishing the remaining pushes
from a state with ``r_sum <= lambda`` costs only ``O(m)`` extra time.

:func:`refine_to_r_max` performs exactly those remaining pushes on an
existing :class:`PushState`, using the auto-switching sweep kernel.
"""

from __future__ import annotations

from repro.backends import KernelBackend, active_backend
from repro.core.kernels import sweep_active
from repro.core.residues import PushState
from repro.core.workspace import Workspace
from repro.core.validation import check_r_max
from repro.errors import ConvergenceError, ParameterError

__all__ = ["refine_to_r_max"]


def refine_to_r_max(
    state: PushState,
    r_max: float,
    *,
    max_sweeps: int | None = None,
    backend: "str | KernelBackend | None" = None,
) -> PushState:
    """Push until no node is active w.r.t. ``r_max``; return the state.

    The state is modified in place (and also returned for chaining).
    The remaining sweeps run on the selected kernel ``backend`` (None
    resolves the env-var/NumPy default).
    """
    check_r_max(r_max)
    if r_max == 0.0:
        raise ParameterError("r_max must be positive for refinement")
    kernel_backend = active_backend(backend)
    workspace = Workspace()
    if max_sweeps is None:
        import math

        # From r_sum <= m * r_max the remaining work is O(m)
        # (Lemma 4.5); translate into a sweep budget with slack, based
        # on the current mass rather than assuming the caller got to
        # lambda already.
        state.refresh_r_sum()
        excess = max(state.r_sum / max(r_max, 1e-300), 2.0)
        max_sweeps = int(8.0 * (math.log(excess) + 1.0) / state.alpha) + 64

    threshold_vec = state.threshold_vector(r_max)
    sweeps = 0
    while True:
        pushed = sweep_active(
            state,
            r_max,
            threshold_vec=threshold_vec,
            workspace=workspace,
            backend=kernel_backend,
        )
        if pushed == 0:
            break
        sweeps += 1
        if sweeps > max_sweeps:
            raise ConvergenceError(
                f"refinement exceeded {max_sweeps} sweeps "
                f"(r_sum={state.refresh_r_sum():.3e}, r_max={r_max:.3e})"
            )
    state.refresh_r_sum()
    return state
