"""Certified top-k SSPPR queries on top of PowerPush.

Top-k PPR queries (the related-work line the paper cites [10, 12-15,
38, 39, 42]) ask only for the ``k`` nodes with the largest
``pi(s, v)``.  Forward-push state gives free deterministic bounds:
with non-negative residues,

    ``pi_hat(s, v) <= pi(s, v) <= pi_hat(s, v) + r_sum``

for every node.  So the estimated top-k is *provably* the true top-k
once the k-th largest reserve exceeds the (k+1)-th largest reserve by
more than ``r_sum``.  :func:`top_k_ppr` runs PowerPush with a
geometrically tightening threshold until that certificate holds (or a
floor threshold is reached — ties within machine precision can never
be separated), returning the ranking plus its certification status.

This is the lower/upper-bound refinement pattern of the local top-k
literature, driven by the paper's solver.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.powerpush import PowerPushConfig, power_push
from repro.core.residues import DeadEndPolicy
from repro.core.result import PPRResult
from repro.core.validation import check_alpha, check_source
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph

__all__ = ["TopKResult", "top_k_ppr"]


@dataclass
class TopKResult:
    """The answer to a top-k query.

    Attributes
    ----------
    ranking:
        ``(node, estimate)`` pairs, descending; exactly ``k`` entries
        (fewer only if the graph has fewer nodes).
    certified:
        True when the separation certificate holds: the true top-k set
        equals the returned set (order within the set may still be
        ambiguous for near-ties closer than ``gap``).
    gap:
        Separation between the k-th and (k+1)-th reserve values.
    l1_threshold:
        The PowerPush threshold at which the run stopped.
    result:
        The underlying :class:`PPRResult` (estimates for *all* nodes).
    """

    ranking: list[tuple[int, float]]
    certified: bool
    gap: float
    l1_threshold: float
    result: PPRResult


def top_k_ppr(
    graph: DiGraph,
    source: int,
    k: int,
    *,
    alpha: float = 0.2,
    initial_l1_threshold: float = 1e-3,
    floor_l1_threshold: float = 1e-12,
    shrink_factor: float = 100.0,
    config: PowerPushConfig | None = None,
    dead_end_policy: DeadEndPolicy = "redirect-to-source",
    backend=None,
) -> TopKResult:
    """Answer a top-k SSPPR query with a certified stopping rule.

    Parameters
    ----------
    k:
        Number of nodes requested (``1 <= k``).
    initial_l1_threshold, floor_l1_threshold, shrink_factor:
        The adaptive schedule: start loose, divide the threshold by
        ``shrink_factor`` until the certificate holds or the floor is
        hit.
    backend:
        Kernel backend for the underlying PowerPush runs (name,
        :class:`~repro.backends.KernelBackend`, or None for the
        env-var/NumPy default).
    """
    check_alpha(alpha)
    check_source(graph, source)
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    if not 0 < floor_l1_threshold <= initial_l1_threshold <= 1.0:
        raise ParameterError(
            "need 0 < floor_l1_threshold <= initial_l1_threshold <= 1"
        )
    if shrink_factor <= 1.0:
        raise ParameterError(
            f"shrink_factor must be > 1, got {shrink_factor}"
        )

    l1_threshold = initial_l1_threshold
    while True:
        result = power_push(
            graph,
            source,
            alpha=alpha,
            l1_threshold=l1_threshold,
            config=config,
            dead_end_policy=dead_end_policy,
            backend=backend,
        )
        ranking = result.top_k(min(k + 1, graph.num_nodes))
        if len(ranking) <= k:
            # The graph has at most k nodes: trivially certified.
            return TopKResult(
                ranking=ranking[:k],
                certified=True,
                gap=float("inf"),
                l1_threshold=l1_threshold,
                result=result,
            )
        gap = ranking[k - 1][1] - ranking[k][1]
        if gap > result.r_sum:
            return TopKResult(
                ranking=ranking[:k],
                certified=True,
                gap=gap,
                l1_threshold=l1_threshold,
                result=result,
            )
        if l1_threshold <= floor_l1_threshold:
            return TopKResult(
                ranking=ranking[:k],
                certified=False,
                gap=gap,
                l1_threshold=l1_threshold,
                result=result,
            )
        l1_threshold = max(
            l1_threshold / shrink_factor, floor_l1_threshold
        )
