"""Backward Push — single-target PPR (Andersen et al. 2007).

The reverse sibling of Forward Push, used by the bidirectional methods
the paper's related work surveys (BiPPR, HubPPR, TopPPR): given a
*target* ``t``, estimate ``pi(v, t)`` for **every** source ``v`` at
once.  Where forward push maintains the invariant

    ``pi_s = pi_hat + sum_v r(s, v) * pi_v``          (row linearity),

backward push maintains the column invariant

    ``pi(v, t) = p(v) + sum_u r(u) * pi(v, u)``  for all ``v``,

starting from ``r = e_t``.  A push on ``u`` moves ``alpha * r(u)`` to
``p(u)`` and ``(1 - alpha) * r(u) / d_w`` to each *in*-neighbour ``w``
(the ``1/d_w`` is the pushing-back through ``w``'s out-edge into
``u``).  At termination with ``max_u r(u) <= r_max``, every estimate
has *additive* error ``|p(v) - pi(v, t)| <= r_max``  (because
``sum_u pi(v, u) <= 1``).

The run cost is ``O(sum of in-degrees touched)`` and famously depends
on the target's popularity — pushing back from a celebrity node
touches much of the graph.  Like the forward algorithms, this
implementation offers a faithful scalar queue and counts operations.

Backward push requires a dead-end-free graph: a conceptual dead-end
edge to the *source* has no fixed transpose (the source is the
variable here), so the standard literature assumption applies.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.core.result import PPRResult
from repro.core.validation import check_alpha, check_source
from repro.errors import ConvergenceError, ParameterError
from repro.graph.digraph import DiGraph
from repro.instrumentation.counters import PushCounters

__all__ = ["backward_push"]


def backward_push(
    graph: DiGraph,
    target: int,
    *,
    alpha: float = 0.2,
    r_max: float = 1e-6,
    max_pushes: int | None = None,
) -> PPRResult:
    """Estimate ``pi(v, target)`` for every ``v`` with additive error.

    Returns a :class:`PPRResult` whose ``estimate[v]`` approximates
    ``pi(v, target)`` within ``r_max`` (one-sided: the estimate is an
    underestimate).  ``residue`` holds the final backward residues.

    Raises
    ------
    ParameterError
        If the graph has dead ends (see module docstring) or
        ``r_max <= 0``.
    """
    check_alpha(alpha)
    check_source(graph, target)  # same domain check as a source id
    if r_max <= 0.0:
        raise ParameterError(f"r_max must be positive, got {r_max}")
    if graph.has_dead_ends:
        raise ParameterError(
            "backward push requires a dead-end-free graph; apply "
            "repro.graph.apply_dead_end_rule(graph, 'self-loop') first"
        )
    if max_pushes is None:
        max_pushes = int(16.0 / (alpha * r_max)) + 4 * graph.num_nodes + 64

    started = time.perf_counter()
    n = graph.num_nodes
    reserve = np.zeros(n, dtype=np.float64)
    residue = np.zeros(n, dtype=np.float64)
    residue[target] = 1.0
    counters = PushCounters()

    out_degree = graph.out_degree
    queue: deque[int] = deque([target])
    in_queue = bytearray(n)
    in_queue[target] = 1

    pushes = 0
    while queue:
        u = queue.popleft()
        in_queue[u] = 0
        r_u = float(residue[u])
        if r_u <= r_max:
            continue
        residue[u] = 0.0
        reserve[u] += alpha * r_u
        spread = (1.0 - alpha) * r_u
        in_neighbors = graph.in_neighbors(u)
        for w in in_neighbors:
            w = int(w)
            residue[w] += spread / out_degree[w]
            if not in_queue[w] and residue[w] > r_max:
                queue.append(w)
                in_queue[w] = 1
                counters.queue_appends += 1
        counters.count_push(int(in_neighbors.shape[0]))
        pushes += 1
        if pushes > max_pushes:
            raise ConvergenceError(
                f"backward push exceeded {max_pushes} pushes "
                f"(target={target}, r_max={r_max:.3e})"
            )

    return PPRResult(
        estimate=reserve,
        residue=residue,
        source=target,  # echoes the query node (the target here)
        alpha=alpha,
        counters=counters,
        seconds=time.perf_counter() - started,
        method="BackwardPush",
    )
