"""Reserve/residue state and the push primitive (paper Section 3.2).

Every Forward-Push-family algorithm maintains, per node ``v``:

* a **reserve** ``pi_hat(s, v)`` — the settled underestimate of the PPR,
* a **residue** ``r(s, v)`` — unprocessed probability mass of the alive
  random walk currently at ``v``.

:class:`PushState` bundles both vectors with the graph, source, alpha,
a dead-end policy, and instrumentation.  Its :meth:`push` method is the
*faithful scalar* push of Algorithm 1 — used by the reference
implementations and the unit tests that replay the paper's Figure 2/3
traces.  The vectorised kernels in :mod:`repro.core.kernels` operate on
the same state object.

Mass invariant
--------------
A push moves ``alpha * r_v`` into the reserve and ``(1 - alpha) * r_v``
onto out-neighbours' residues, so the quantity
``sum(reserve) + sum(residue)`` is exactly 1 at all times (with the
``redirect-to-source`` or ``self-loop`` dead-end policies).  The
property-based tests assert this invariant under arbitrary push
sequences.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.core.validation import check_alpha, check_source
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.instrumentation.counters import PushCounters

__all__ = ["DeadEndPolicy", "PushState"]

DeadEndPolicy = Literal["redirect-to-source", "self-loop", "uniform-teleport"]

_VALID_POLICIES: tuple[str, ...] = (
    "redirect-to-source",
    "self-loop",
    "uniform-teleport",
)


class PushState:
    """Mutable reserve/residue state for one SSPPR query.

    Parameters
    ----------
    graph, source, alpha:
        The query.  ``alpha`` is the teleport (stop) probability.
    dead_end_policy:
        What a push on an out-degree-0 node does with the ``1 - alpha``
        continue-mass.  ``redirect-to-source`` (paper default) sends it
        back to the source; ``self-loop`` leaves it on the node;
        ``uniform-teleport`` spreads it over all nodes.
    counters:
        Optional shared counter object (phases of a composite algorithm
        pass the same one through).
    """

    __slots__ = (
        "graph",
        "source",
        "alpha",
        "dead_end_policy",
        "reserve",
        "residue",
        "counters",
        "_r_sum",
        "_effective_out_degree",
    )

    def __init__(
        self,
        graph: DiGraph,
        source: int,
        alpha: float = 0.2,
        *,
        dead_end_policy: DeadEndPolicy = "redirect-to-source",
        counters: PushCounters | None = None,
    ) -> None:
        if dead_end_policy not in _VALID_POLICIES:
            raise ParameterError(
                f"unknown dead-end policy {dead_end_policy!r}; "
                f"expected one of {_VALID_POLICIES}"
            )
        self.graph = graph
        self.source = check_source(graph, source)
        self.alpha = check_alpha(alpha)
        self.dead_end_policy: DeadEndPolicy = dead_end_policy
        self.reserve = np.zeros(graph.num_nodes, dtype=np.float64)
        self.residue = np.zeros(graph.num_nodes, dtype=np.float64)
        self.residue[self.source] = 1.0
        self.counters = counters if counters is not None else PushCounters()
        self._r_sum = 1.0
        self._effective_out_degree: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Residue-mass bookkeeping
    # ------------------------------------------------------------------
    @property
    def r_sum(self) -> float:
        """Total residue mass — the current guaranteed l1-error (Eq. 7).

        Maintained incrementally; call :meth:`refresh_r_sum` to squash
        accumulated floating-point drift at iteration boundaries.
        """
        return self._r_sum

    def refresh_r_sum(self) -> float:
        """Recompute ``r_sum`` exactly from the residue vector."""
        self._r_sum = float(self.residue.sum())
        return self._r_sum

    def note_r_sum_delta(self, delta: float) -> None:
        """Adjust the cached ``r_sum`` (used by the vectorised kernels)."""
        self._r_sum += delta

    # ------------------------------------------------------------------
    # Activity tests
    # ------------------------------------------------------------------
    @property
    def effective_out_degree(self) -> np.ndarray:
        """Out-degrees with dead ends replaced by their *conceptual* degree.

        The paper removes dead ends by conceptually adding an edge to
        the source, so a dead end's conceptual out-degree is 1 (or
        ``n`` under the uniform-teleport policy).  Using the conceptual
        degree in the activity test ``r > d_v * r_max`` is what makes
        push algorithms terminate on graphs with dead ends: with the
        raw degree 0, any node that keeps receiving mass (e.g. from the
        uniform spread) would stay active forever.
        """
        if self._effective_out_degree is None:
            degree = self.graph.out_degree
            if self.graph.has_dead_ends:
                degree = degree.copy()
                conceptual = (
                    self.graph.num_nodes
                    if self.dead_end_policy == "uniform-teleport"
                    else 1
                )
                degree[self.graph.dead_ends] = conceptual
                degree.flags.writeable = False
            self._effective_out_degree = degree
        return self._effective_out_degree

    def is_active(self, v: int, r_max: float) -> bool:
        """Paper definition: ``v`` is active iff ``r(s,v) > d_v * r_max``.

        Dead ends use their conceptual degree (see
        :attr:`effective_out_degree`).
        """
        return self.residue[v] > self.effective_out_degree[v] * r_max

    def active_mask(self, r_max: float) -> np.ndarray:
        """Boolean mask of all currently active nodes."""
        return self.residue > self.effective_out_degree * r_max

    def threshold_vector(self, r_max: float) -> np.ndarray:
        """Precomputed ``effective_out_degree * r_max`` for sweep loops."""
        return self.effective_out_degree.astype(np.float64) * r_max

    def active_nodes(self, r_max: float) -> np.ndarray:
        """Ids of all currently active nodes (ascending)."""
        return np.flatnonzero(self.active_mask(r_max))

    # ------------------------------------------------------------------
    # The push primitive (faithful scalar version of Algorithm 1)
    # ------------------------------------------------------------------
    def push(self, v: int) -> float:
        """Perform one push operation on node ``v``; return its old residue.

        Implementation note: the residue of ``v`` is zeroed *before*
        distributing, so a self-loop edge correctly re-deposits mass on
        ``v`` instead of being erased (the pseudo-code's final
        ``r(s,v) <- 0`` assumes no self-loops).
        """
        r_v = float(self.residue[v])
        if r_v == 0.0:
            self.counters.count_push(int(self.graph.out_degree[v]))
            return 0.0
        self.residue[v] = 0.0
        self.reserve[v] += self.alpha * r_v
        spread = (1.0 - self.alpha) * r_v

        neighbors = self.graph.out_neighbors(v)
        degree = neighbors.shape[0]
        if degree > 0:
            share = spread / degree
            # np.add.at handles repeated neighbours (parallel edges).
            np.add.at(self.residue, neighbors, share)
            self.counters.count_push(degree)
        else:
            self._spread_dead_end(spread)
            self.counters.count_push(1)
        self._r_sum -= self.alpha * r_v
        return r_v

    def _spread_dead_end(self, spread: float) -> None:
        if self.dead_end_policy == "redirect-to-source":
            self.residue[self.source] += spread
        elif self.dead_end_policy == "self-loop":
            # A dynamic self-loop would keep the dead end active forever
            # (its activity threshold is d_v * r_max = 0), so this policy
            # must be applied structurally before querying.
            raise ParameterError(
                "self-loop dead-end policy requires structural self-loops; "
                "apply repro.graph.apply_dead_end_rule(graph, 'self-loop') first"
            )
        else:  # uniform-teleport
            self.residue += spread / self.graph.num_nodes

    # ------------------------------------------------------------------
    # Invariants & conversions
    # ------------------------------------------------------------------
    def mass_total(self) -> float:
        """``sum(reserve) + sum(residue)`` — must equal 1 (see module doc)."""
        return float(self.reserve.sum() + self.residue.sum())

    def check_invariants(self, atol: float = 1e-9) -> None:
        """Assert conservation and non-negativity; used by tests."""
        if not np.all(self.reserve >= -atol):
            raise AssertionError("reserve went negative")
        if not np.all(self.residue >= -atol):
            raise AssertionError("residue went negative")
        total = self.mass_total()
        if abs(total - 1.0) > max(atol, 1e-9 * self.graph.num_edges):
            raise AssertionError(
                f"mass not conserved: reserve+residue = {total!r}"
            )
