"""Reserve/residue state and the push primitive (paper Section 3.2).

Every Forward-Push-family algorithm maintains, per node ``v``:

* a **reserve** ``pi_hat(s, v)`` — the settled underestimate of the PPR,
* a **residue** ``r(s, v)`` — unprocessed probability mass of the alive
  random walk currently at ``v``.

:class:`PushState` bundles both vectors with the graph, source, alpha,
a dead-end policy, and instrumentation.  Its :meth:`push` method is the
*faithful scalar* push of Algorithm 1 — used by the reference
implementations and the unit tests that replay the paper's Figure 2/3
traces.  The vectorised kernels in :mod:`repro.core.kernels` operate on
the same state object.

Mass invariant
--------------
A push moves ``alpha * r_v`` into the reserve and ``(1 - alpha) * r_v``
onto out-neighbours' residues, so the quantity
``sum(reserve) + sum(residue)`` is exactly 1 at all times (with the
``redirect-to-source`` or ``self-loop`` dead-end policies).  The
property-based tests assert this invariant under arbitrary push
sequences.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.core.validation import check_alpha, check_source
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.instrumentation.counters import PushCounters

__all__ = [
    "DeadEndPolicy",
    "PushState",
    "BlockPushState",
    "effective_out_degree",
]

DeadEndPolicy = Literal["redirect-to-source", "self-loop", "uniform-teleport"]

_VALID_POLICIES: tuple[str, ...] = (
    "redirect-to-source",
    "self-loop",
    "uniform-teleport",
)


def effective_out_degree(graph: DiGraph, dead_end_policy: str) -> np.ndarray:
    """Out-degrees with dead ends replaced by their *conceptual* degree.

    The paper removes dead ends by conceptually adding an edge to the
    source, so a dead end's conceptual out-degree is 1 (or ``n`` under
    the uniform-teleport policy).  Using the conceptual degree in the
    activity test ``r > d_v * r_max`` is what makes push algorithms
    terminate on graphs with dead ends.  Shared by :class:`PushState`
    and :class:`BlockPushState` so the two activity tests can never
    drift apart.
    """
    degree = graph.out_degree
    if graph.has_dead_ends:
        degree = degree.copy()
        conceptual = (
            graph.num_nodes if dead_end_policy == "uniform-teleport" else 1
        )
        degree[graph.dead_ends] = conceptual
        degree.flags.writeable = False
    return degree


class PushState:
    """Mutable reserve/residue state for one SSPPR query.

    Parameters
    ----------
    graph, source, alpha:
        The query.  ``alpha`` is the teleport (stop) probability.
    dead_end_policy:
        What a push on an out-degree-0 node does with the ``1 - alpha``
        continue-mass.  ``redirect-to-source`` (paper default) sends it
        back to the source; ``self-loop`` leaves it on the node;
        ``uniform-teleport`` spreads it over all nodes.
    counters:
        Optional shared counter object (phases of a composite algorithm
        pass the same one through).
    """

    __slots__ = (
        "graph",
        "source",
        "alpha",
        "dead_end_policy",
        "reserve",
        "residue",
        "counters",
        "_r_sum",
        "_effective_out_degree",
    )

    def __init__(
        self,
        graph: DiGraph,
        source: int,
        alpha: float = 0.2,
        *,
        dead_end_policy: DeadEndPolicy = "redirect-to-source",
        counters: PushCounters | None = None,
    ) -> None:
        if dead_end_policy not in _VALID_POLICIES:
            raise ParameterError(
                f"unknown dead-end policy {dead_end_policy!r}; "
                f"expected one of {_VALID_POLICIES}"
            )
        self.graph = graph
        self.source = check_source(graph, source)
        self.alpha = check_alpha(alpha)
        self.dead_end_policy: DeadEndPolicy = dead_end_policy
        self.reserve = np.zeros(graph.num_nodes, dtype=np.float64)
        self.residue = np.zeros(graph.num_nodes, dtype=np.float64)
        self.residue[self.source] = 1.0
        self.counters = counters if counters is not None else PushCounters()
        self._r_sum = 1.0
        self._effective_out_degree: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Residue-mass bookkeeping
    # ------------------------------------------------------------------
    @property
    def r_sum(self) -> float:
        """Total residue mass — the current guaranteed l1-error (Eq. 7).

        Maintained incrementally; call :meth:`refresh_r_sum` to squash
        accumulated floating-point drift at iteration boundaries.
        """
        return self._r_sum

    def refresh_r_sum(self) -> float:
        """Recompute ``r_sum`` exactly from the residue vector."""
        self._r_sum = float(self.residue.sum())
        return self._r_sum

    def note_r_sum_delta(self, delta: float) -> None:
        """Adjust the cached ``r_sum`` (used by the vectorised kernels)."""
        self._r_sum += delta

    # ------------------------------------------------------------------
    # Activity tests
    # ------------------------------------------------------------------
    @property
    def effective_out_degree(self) -> np.ndarray:
        """Out-degrees with dead ends replaced by their *conceptual* degree.

        The paper removes dead ends by conceptually adding an edge to
        the source, so a dead end's conceptual out-degree is 1 (or
        ``n`` under the uniform-teleport policy).  Using the conceptual
        degree in the activity test ``r > d_v * r_max`` is what makes
        push algorithms terminate on graphs with dead ends: with the
        raw degree 0, any node that keeps receiving mass (e.g. from the
        uniform spread) would stay active forever.
        """
        if self._effective_out_degree is None:
            self._effective_out_degree = effective_out_degree(
                self.graph, self.dead_end_policy
            )
        return self._effective_out_degree

    def is_active(self, v: int, r_max: float) -> bool:
        """Paper definition: ``v`` is active iff ``r(s,v) > d_v * r_max``.

        Dead ends use their conceptual degree (see
        :attr:`effective_out_degree`).
        """
        return self.residue[v] > self.effective_out_degree[v] * r_max

    def active_mask(self, r_max: float) -> np.ndarray:
        """Boolean mask of all currently active nodes."""
        return self.residue > self.effective_out_degree * r_max

    def threshold_vector(self, r_max: float) -> np.ndarray:
        """Precomputed ``effective_out_degree * r_max`` for sweep loops."""
        return self.effective_out_degree.astype(np.float64) * r_max

    def active_nodes(self, r_max: float) -> np.ndarray:
        """Ids of all currently active nodes (ascending)."""
        return np.flatnonzero(self.active_mask(r_max))

    # ------------------------------------------------------------------
    # The push primitive (faithful scalar version of Algorithm 1)
    # ------------------------------------------------------------------
    def push(self, v: int) -> float:
        """Perform one push operation on node ``v``; return its old residue.

        Implementation note: the residue of ``v`` is zeroed *before*
        distributing, so a self-loop edge correctly re-deposits mass on
        ``v`` instead of being erased (the pseudo-code's final
        ``r(s,v) <- 0`` assumes no self-loops).
        """
        r_v = float(self.residue[v])
        if r_v == 0.0:
            self.counters.count_push(int(self.graph.out_degree[v]))
            return 0.0
        self.residue[v] = 0.0
        self.reserve[v] += self.alpha * r_v
        spread = (1.0 - self.alpha) * r_v

        neighbors = self.graph.out_neighbors(v)
        degree = neighbors.shape[0]
        if degree > 0:
            share = spread / degree
            # np.add.at handles repeated neighbours (parallel edges).
            np.add.at(self.residue, neighbors, share)
            self.counters.count_push(degree)
        else:
            self._spread_dead_end(spread)
            self.counters.count_push(1)
        self._r_sum -= self.alpha * r_v
        return r_v

    def _spread_dead_end(self, spread: float) -> None:
        if self.dead_end_policy == "redirect-to-source":
            self.residue[self.source] += spread
        elif self.dead_end_policy == "self-loop":
            # A dynamic self-loop would keep the dead end active forever
            # (its activity threshold is d_v * r_max = 0), so this policy
            # must be applied structurally before querying.
            raise ParameterError(
                "self-loop dead-end policy requires structural self-loops; "
                "apply repro.graph.apply_dead_end_rule(graph, 'self-loop') first"
            )
        else:  # uniform-teleport
            self.residue += spread / self.graph.num_nodes

    # ------------------------------------------------------------------
    # Invariants & conversions
    # ------------------------------------------------------------------
    def mass_total(self) -> float:
        """``sum(reserve) + sum(residue)`` — must equal 1 (see module doc)."""
        return float(self.reserve.sum() + self.residue.sum())

    def check_invariants(self, atol: float = 1e-9) -> None:
        """Assert conservation and non-negativity; used by tests."""
        if not np.all(self.reserve >= -atol):
            raise AssertionError("reserve went negative")
        if not np.all(self.residue >= -atol):
            raise AssertionError("residue went negative")
        total = self.mass_total()
        if abs(total - 1.0) > max(atol, 1e-9 * self.graph.num_edges):
            raise AssertionError(
                f"mass not conserved: reserve+residue = {total!r}"
            )


class BlockPushState:
    """Reserve/residue state for ``B`` simultaneous SSPPR queries.

    The multi-source generalisation of :class:`PushState`: ``reserve``
    and ``residue`` are ``(B, n)`` matrices (row ``i`` is source
    ``sources[i]``'s vectors), ``r_sum`` is a length-``B`` array, and
    instrumentation is kept as per-row *counter arrays* (billing is
    integer arithmetic, so it vectorises exactly; ``row_counters``
    materialises a :class:`PushCounters` per row on demand).  Rows are
    fully independent — the block kernels in :mod:`repro.core.kernels`
    are written so each row's float-operation sequence is *identical*
    to what the single-source kernels would perform, which is what
    lets :func:`repro.core.powerpush.power_push_block` promise bitwise
    equality with per-source solves.

    All rows share one graph, alpha, and dead-end policy (that is what
    makes the adjacency work shareable); heterogeneous queries belong
    in separate blocks.
    """

    __slots__ = (
        "graph",
        "sources",
        "alpha",
        "dead_end_policy",
        "reserve",
        "residue",
        "pushes",
        "residue_updates",
        "queue_appends",
        "epochs",
        "_r_sum",
        "_effective_out_degree",
    )

    def __init__(
        self,
        graph: DiGraph,
        sources,
        alpha: float = 0.2,
        *,
        dead_end_policy: DeadEndPolicy = "redirect-to-source",
    ) -> None:
        if dead_end_policy not in _VALID_POLICIES:
            raise ParameterError(
                f"unknown dead-end policy {dead_end_policy!r}; "
                f"expected one of {_VALID_POLICIES}"
            )
        sources = [check_source(graph, int(s)) for s in sources]
        if not sources:
            raise ParameterError("BlockPushState needs at least one source")
        self.graph = graph
        self.sources = np.asarray(sources, dtype=np.int64)
        self.alpha = check_alpha(alpha)
        self.dead_end_policy: DeadEndPolicy = dead_end_policy
        num_rows = self.sources.shape[0]
        self.reserve = np.zeros((num_rows, graph.num_nodes), dtype=np.float64)
        self.residue = np.zeros((num_rows, graph.num_nodes), dtype=np.float64)
        self.residue[np.arange(num_rows), self.sources] = 1.0
        self.pushes = np.zeros(num_rows, dtype=np.int64)
        self.residue_updates = np.zeros(num_rows, dtype=np.int64)
        self.queue_appends = np.zeros(num_rows, dtype=np.int64)
        self.epochs = np.zeros(num_rows, dtype=np.int64)
        self._r_sum = np.ones(num_rows, dtype=np.float64)
        self._effective_out_degree: np.ndarray | None = None

    @property
    def num_rows(self) -> int:
        """Number of simultaneous sources ``B``."""
        return self.sources.shape[0]

    @property
    def r_sum(self) -> np.ndarray:
        """Per-row residue mass (the incremental l1-error bounds)."""
        return self._r_sum

    def refresh_r_sum(self, row: int) -> float:
        """Recompute one row's ``r_sum`` exactly from its residue row.

        Summed per row (a contiguous length-``n`` view) so the pairwise
        reduction matches :meth:`PushState.refresh_r_sum` bitwise.
        """
        self._r_sum[row] = float(self.residue[row].sum())
        return self._r_sum[row]

    def note_r_sum_delta(self, row: int, delta: float) -> None:
        """Adjust one row's cached ``r_sum`` (vectorised kernels)."""
        self._r_sum[row] += delta

    def note_r_sum_deltas(self, rows: np.ndarray, deltas: np.ndarray) -> None:
        """Adjust many rows' cached ``r_sum`` in one scatter.

        ``rows`` must be distinct (the block kernels' contract); used
        by compiled backends whose per-row masses arrive as an array.
        """
        self._r_sum[rows] += deltas

    @property
    def effective_out_degree(self) -> np.ndarray:
        """Shared conceptual out-degrees (see :func:`effective_out_degree`)."""
        if self._effective_out_degree is None:
            self._effective_out_degree = effective_out_degree(
                self.graph, self.dead_end_policy
            )
        return self._effective_out_degree

    def active_masks(
        self, rows: np.ndarray, threshold_vec: np.ndarray
    ) -> np.ndarray:
        """Per-row activity masks of ``rows`` against one threshold vector.

        One broadcast compare over the ``(len(rows), n)`` sub-block —
        elementwise, hence bitwise-identical to the per-source
        ``residue > threshold_vec`` test.
        """
        if rows.shape[0] == self.num_rows and bool(
            (rows == np.arange(self.num_rows)).all()
        ):
            return self.residue > threshold_vec
        return self.residue[rows] > threshold_vec[None, :]

    def count_bulk_pushes(
        self, rows: np.ndarray, num_nodes, num_updates
    ) -> None:
        """Bill a vectorised push round to each row in ``rows``.

        ``num_nodes``/``num_updates`` are scalars or per-row arrays;
        integer arithmetic, so exactly what per-row
        :meth:`PushCounters.count_bulk_pushes` calls would record.
        """
        self.pushes[rows] += num_nodes
        self.residue_updates[rows] += num_updates

    def row_counters(self, row: int) -> PushCounters:
        """One row's instrumentation as a :class:`PushCounters`.

        ``epochs`` appears in ``extras`` only once the row entered the
        scan phase, matching when the single-source loop first bumps
        it.
        """
        counters = PushCounters(
            pushes=int(self.pushes[row]),
            residue_updates=int(self.residue_updates[row]),
            queue_appends=int(self.queue_appends[row]),
        )
        if self.epochs[row]:
            counters.extras["epochs"] = int(self.epochs[row])
        return counters

    def mass_total(self, row: int) -> float:
        """``sum(reserve) + sum(residue)`` of one row (invariant check)."""
        return float(self.reserve[row].sum() + self.residue[row].sum())
