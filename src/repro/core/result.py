"""Result object returned by every SSPPR algorithm in this library."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.instrumentation.counters import PushCounters
from repro.instrumentation.tracing import ConvergenceTrace

__all__ = ["PPRResult"]


@dataclass
class PPRResult:
    """The answer to one Single-Source PPR query.

    Attributes
    ----------
    estimate:
        The estimated PPR vector ``pi_hat`` (length ``n``).  For push
        algorithms this is the reserve vector; for Monte-Carlo methods
        the empirical frequencies.
    residue:
        The final residue vector ``r`` for push-based algorithms, or
        ``None`` for pure Monte-Carlo.  When present, ``sum(residue)``
        equals the algorithm's guaranteed l1-error (Eq. 7).
    source, alpha:
        Echo of the query parameters.
    counters:
        Operation counts accumulated during the run.
    trace:
        Optional convergence trace (Figures 5-6) if one was requested.
    seconds:
        Wall-clock time of the algorithm body.  Results produced by a
        block solve report their even share of the batch's wall time
        (the vectorised kernels have no per-source measurement).
    method:
        Name of the algorithm that produced the result.
    batch_size:
        How many sources were co-solved in the block that produced
        this result (1 for an independent single-source solve).  The
        answer itself is independent of the batch — block rows are
        bitwise-identical to single-source runs — so this is
        provenance for benchmarks and serving stats, not a parameter.
    """

    estimate: np.ndarray
    residue: np.ndarray | None
    source: int
    alpha: float
    counters: PushCounters = field(default_factory=PushCounters)
    trace: ConvergenceTrace | None = None
    seconds: float = 0.0
    method: str = ""
    batch_size: int = 1

    @property
    def r_sum(self) -> float:
        """Total residue mass = guaranteed l1-error (push methods only)."""
        if self.residue is None:
            return float("nan")
        return float(self.residue.sum())

    def top_k(self, k: int) -> list[tuple[int, float]]:
        """The ``k`` nodes with the largest estimated PPR, descending.

        Ties break by ascending node id for determinism.
        """
        k = min(max(k, 0), self.estimate.shape[0])
        if k == 0:
            return []
        # argsort on (-value, id): stable sort on ids then values.
        order = np.argsort(-self.estimate, kind="stable")[:k]
        return [(int(v), float(self.estimate[v])) for v in order]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PPRResult(method={self.method!r}, source={self.source}, "
            f"n={self.estimate.shape[0]}, r_sum={self.r_sum:.3e}, "
            f"seconds={self.seconds:.4f})"
        )
