"""Synthetic serving workloads: Zipfian sources, read/write mix, arrivals.

Real query traffic is skewed — a few hot sources absorb most requests
(the regime both the result cache and the paper's index reuse are
built for).  :class:`WorkloadGenerator` reproduces that shape
deterministically from a seed:

* **sources** follow a Zipf law over a hot set sampled from the node
  id space (``p(rank) ∝ rank^-s``),
* a configurable **read/write mix** interleaves edge-update operations
  with queries (writes are *sampled lazily* against the live graph at
  apply time, because a valid edge edit depends on the graph's current
  state — the generator only fixes their positions and their RNG),
* **arrival** is either *closed-loop* (a fixed worker pool, next
  request on completion) or *open-loop* (Poisson arrivals at a target
  rate, load independent of service time — the honest way to measure
  tail latency).

The generator emits a plain :class:`Workload` — an operation list any
harness can replay; :mod:`repro.serving.loadtest` drives it against an
:class:`~repro.serving.server.EngineServer` and a serial baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ParameterError

__all__ = ["Operation", "Workload", "WorkloadGenerator"]

#: Salt mixed into the workload seed for the lazy update-sampling RNG,
#: so query-source and edge-update streams never correlate.
UPDATE_RNG_SALT = 0x5EED_CAFE


@dataclass(frozen=True)
class Operation:
    """One workload step: a query against a source, or an edge update.

    ``at`` is the arrival offset in seconds from workload start for
    open-loop runs (0.0 everywhere in closed-loop workloads, where
    arrival is completion-driven).  Updates carry ``source == -1``;
    the concrete edge edit is sampled at apply time from the
    workload's update RNG.
    """

    index: int
    kind: str  # "query" | "update"
    source: int
    at: float


@dataclass(frozen=True)
class Workload:
    """A replayable operation sequence plus the knobs that shaped it."""

    operations: tuple[Operation, ...]
    num_sources: int
    zipf_exponent: float
    read_fraction: float
    arrival: str
    arrival_rate: float
    seed: int

    @property
    def num_queries(self) -> int:
        return sum(1 for op in self.operations if op.kind == "query")

    @property
    def num_updates(self) -> int:
        return len(self.operations) - self.num_queries

    @property
    def distinct_sources(self) -> int:
        return len({op.source for op in self.operations if op.kind == "query"})

    def queries(self) -> Iterator[Operation]:
        return (op for op in self.operations if op.kind == "query")

    def update_rng(self) -> np.random.Generator:
        """The generator a harness must sample edge updates from.

        Both the served run and the serial baseline draw from an
        identically-seeded stream and apply updates in operation
        order, so the two runs mutate their graphs identically.
        """
        return np.random.default_rng(self.seed + UPDATE_RNG_SALT)

    def describe(self) -> str:
        return (
            f"{len(self.operations)} ops ({self.num_queries} queries / "
            f"{self.num_updates} updates), zipf s={self.zipf_exponent} "
            f"over {self.num_sources} hot sources, {self.arrival}-loop"
            + (
                f" @ {self.arrival_rate:.0f} req/s"
                if self.arrival == "open"
                else ""
            )
        )


class WorkloadGenerator:
    """Deterministic generator of serving workloads for one graph size.

    Parameters
    ----------
    num_nodes:
        Node-id space queries draw sources from.
    num_sources:
        Size of the Zipfian hot set (distinct query sources).
    zipf_exponent:
        Skew ``s`` of ``p(rank) ∝ rank^-s``; larger = hotter head.
        ``0`` degenerates to uniform over the hot set.
    read_fraction:
        Probability an operation is a query (1.0 = read-only).
    arrival:
        ``"closed"`` (completion-driven) or ``"open"`` (Poisson
        timestamps at ``arrival_rate`` requests/second).
    seed:
        Everything — hot-set choice, source draws, mix, arrivals, and
        the update-sampling stream — derives from this.
    """

    def __init__(
        self,
        num_nodes: int,
        *,
        num_sources: int = 64,
        zipf_exponent: float = 1.1,
        read_fraction: float = 1.0,
        arrival: str = "closed",
        arrival_rate: float = 500.0,
        seed: int = 0,
    ) -> None:
        if num_nodes < 1:
            raise ParameterError(f"num_nodes must be >= 1, got {num_nodes}")
        if not 1 <= num_sources <= num_nodes:
            raise ParameterError(
                f"num_sources must be in [1, {num_nodes}], got {num_sources}"
            )
        if zipf_exponent < 0:
            raise ParameterError(
                f"zipf_exponent must be >= 0, got {zipf_exponent}"
            )
        if not 0.0 <= read_fraction <= 1.0:
            raise ParameterError(
                f"read_fraction must be in [0, 1], got {read_fraction}"
            )
        if arrival not in ("closed", "open"):
            raise ParameterError(
                f"arrival must be 'closed' or 'open', got {arrival!r}"
            )
        if arrival_rate <= 0:
            raise ParameterError(
                f"arrival_rate must be positive, got {arrival_rate}"
            )
        self.num_nodes = int(num_nodes)
        self.num_sources = int(num_sources)
        self.zipf_exponent = float(zipf_exponent)
        self.read_fraction = float(read_fraction)
        self.arrival = arrival
        self.arrival_rate = float(arrival_rate)
        self.seed = int(seed)

    def generate(self, num_ops: int) -> Workload:
        """Materialise ``num_ops`` operations (deterministic per seed)."""
        if num_ops < 1:
            raise ParameterError(f"num_ops must be >= 1, got {num_ops}")
        rng = np.random.default_rng(self.seed)
        hot = rng.choice(self.num_nodes, size=self.num_sources, replace=False)
        ranks = np.arange(1, self.num_sources + 1, dtype=np.float64)
        weights = ranks ** (-self.zipf_exponent)
        weights /= weights.sum()
        sources = rng.choice(hot, size=num_ops, p=weights)
        is_query = rng.random(num_ops) < self.read_fraction
        if self.arrival == "open":
            gaps = rng.exponential(1.0 / self.arrival_rate, size=num_ops)
            arrivals = np.cumsum(gaps)
        else:
            arrivals = np.zeros(num_ops)
        operations = tuple(
            Operation(
                index=i,
                kind="query" if is_query[i] else "update",
                source=int(sources[i]) if is_query[i] else -1,
                at=float(arrivals[i]),
            )
            for i in range(num_ops)
        )
        return Workload(
            operations=operations,
            num_sources=self.num_sources,
            zipf_exponent=self.zipf_exponent,
            read_fraction=self.read_fraction,
            arrival=self.arrival,
            arrival_rate=self.arrival_rate,
            seed=self.seed,
        )
