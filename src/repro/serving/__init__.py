"""Concurrent PPR serving: scheduler + versioned cache + server + load.

The per-query machinery (:mod:`repro.api`) answers one query well;
this package makes it a *service*:

* :class:`~repro.serving.server.EngineServer` — the thread-safe front
  door: futures in, :class:`~repro.serving.scheduler.ServedResult`
  out, graph updates serialised against in-flight reads.
* :class:`~repro.serving.scheduler.QueryScheduler` — micro-batch
  window that coalesces compatible concurrent requests into one
  ``batch_query``.
* :class:`~repro.serving.cache.ResultCache` — LRU + TTL memoisation of
  full answers, stamped with the graph version exactly like the
  engine's index caches.
* :class:`~repro.serving.locks.RWLock` — the readers-writer primitive
  the consistency guarantee rests on.
* :class:`~repro.serving.workload.WorkloadGenerator` /
  :func:`~repro.serving.loadtest.run_loadtest` — synthetic Zipfian
  traffic and the load/soak harness behind ``repro-ppr loadtest`` and
  ``benchmarks/bench_serving.py``.
* :class:`~repro.serving.sharded.ShardedDispatcher` /
  :class:`~repro.serving.shm.SharedGraphImage` — the process-parallel
  tier: N worker processes each run an :class:`EngineServer` over one
  zero-copy shared-memory graph image, fronted by consistent-hash
  routing on the source id (cache affinity) with ``apply_updates``
  broadcast as a versioned barrier.
* :class:`~repro.serving.frontdoor.AsyncFrontDoor` — the asyncio
  admission tier over either backend: per-request deadlines, SLO-aware
  shedding/degradation, and an arrival-rate-adaptive micro-batch
  window.
* :mod:`~repro.serving.supervisor` /
  :mod:`~repro.serving.faults` — the self-healing tier: restart
  policies (jittered backoff + budget), per-shard circuit breakers,
  deadline-aware read retries, and a seeded schedule-driven
  :class:`~repro.serving.faults.FaultInjector` so chaos runs replay
  exactly.

Both serving tiers accept ``wal_dir=`` to persist edge updates through
:mod:`repro.durability` — a fsynced write-ahead log plus atomic
checkpoints, recovered on cold restart before the first query is
admitted (see that package for the crash contract).
"""

from repro.serving.cache import (
    CacheStats,
    ResultCache,
    make_cache_key,
    resolve_request,
)
from repro.serving.faults import FaultInjector, FaultSpec
from repro.serving.frontdoor import AsyncFrontDoor, FrontDoorStats
from repro.serving.loadtest import (
    LoadtestReport,
    LoadtestStats,
    RunMetrics,
    run_loadtest,
)
from repro.serving.locks import RWLock
from repro.serving.scheduler import QueryScheduler, SchedulerStats, ServedResult
from repro.serving.server import EngineServer
from repro.serving.sharded import ShardedDispatcher, WorkerConfig
from repro.serving.shm import SharedGraphHandle, SharedGraphImage
from repro.serving.supervisor import CircuitBreaker, RestartPolicy, RetryPolicy
from repro.serving.workload import Operation, Workload, WorkloadGenerator

__all__ = [
    "AsyncFrontDoor",
    "FrontDoorStats",
    "CircuitBreaker",
    "FaultInjector",
    "FaultSpec",
    "RestartPolicy",
    "RetryPolicy",
    "EngineServer",
    "QueryScheduler",
    "SchedulerStats",
    "ServedResult",
    "ResultCache",
    "CacheStats",
    "make_cache_key",
    "resolve_request",
    "RWLock",
    "ShardedDispatcher",
    "WorkerConfig",
    "SharedGraphHandle",
    "SharedGraphImage",
    "WorkloadGenerator",
    "Workload",
    "Operation",
    "LoadtestReport",
    "LoadtestStats",
    "RunMetrics",
    "run_loadtest",
]
