"""Versioned result cache: ``(source, method, params) -> PPRResult``.

Zipfian query traffic answers the same hot sources over and over; the
cheapest query is the one never recomputed.  :class:`ResultCache`
memoises full query results under an LRU + TTL policy, with every
entry **stamped with the graph version it was computed at** — exactly
the staleness discipline :class:`~repro.api.engine.PPREngine` applies
to its walk/BePI/FORA indexes.  A lookup must present the current
version; an entry stamped otherwise is dropped on sight (counted in
``stats.stale_drops``), so after ``apply_updates`` no request can be
answered from a pre-update vector.

Keys canonicalise the request through the solver registry —
``fora+`` and ``fora`` + ``use_index=True`` share an entry, parameter
order never matters — and requests carrying live objects (a ``rng``
generator, a trace sink) are declared uncacheable
(:func:`make_cache_key` returns ``None``) rather than mis-shared.

The cache is thread-safe on its own, but version consistency across
*concurrent* readers and writers needs lookups and fills to happen
under :class:`~repro.serving.locks.RWLock` read sections —
:class:`~repro.serving.server.EngineServer` wires that.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.api.engine import (
    is_incremental_method,
    validate_incremental_params,
)
from repro.api.registry import resolve_method
from repro.core.result import PPRResult
from repro.errors import ParameterError

__all__ = [
    "CacheStats",
    "ResultCache",
    "make_cache_key",
    "resolve_request",
]

#: Parameter values that may appear in a cache key.  Anything else
#: (generators, traces, arrays, pre-built indexes) makes the request
#: uncacheable — sharing such objects across requests would be wrong.
_HASHABLE_SCALARS = (int, float, str, bool, type(None))


def resolve_request(
    source: int,
    method: str,
    params: Mapping[str, Any],
    *,
    defaults: Mapping[str, Any] | None = None,
) -> tuple[str, dict[str, Any], tuple | None]:
    """Resolve a request once for the serving hot path.

    Returns ``(canonical_method, merged_params, cache_key)`` where the
    canonical name and merged parameters have alias-implied overrides
    (``fora+`` => ``use_index=True``) folded in and validated against
    the solver's schema, and ``cache_key`` is ``None`` when the request
    is uncacheable.  Raises
    :class:`~repro.errors.UnknownMethodError` for unknown methods and
    :class:`~repro.errors.ParameterError` for parameters outside the
    schema, so typos surface at submit time, not deep in a worker
    thread.  The serving layer calls this exactly once per request;
    key, grouping, and dispatch all reuse the result.

    ``defaults`` are engine-level fallbacks (the server passes its
    engine's ``alpha``/``dead_end_policy``): each one the solver
    accepts is folded in via ``setdefault``, so a request that spells
    out a default explicitly gets the same key — and therefore the
    same cache entry and batch slot — as one that omits it.
    """
    if is_incremental_method(method):
        canonical = "incremental"
        merged: dict[str, Any] = dict(params)
        validate_incremental_params(merged)
    else:
        spec, merged = resolve_method(method)
        merged.update(params)
        spec.validate_params(merged)
        for name, value in (defaults or {}).items():
            if spec.accepts(name):
                merged.setdefault(name, value)
        canonical = spec.name
    for value in merged.values():
        if not isinstance(value, _HASHABLE_SCALARS):
            return canonical, merged, None
    key = (canonical, int(source), tuple(sorted(merged.items())))
    return canonical, merged, key


def make_cache_key(
    source: int, method: str, params: Mapping[str, Any]
) -> tuple | None:
    """Canonical cache key for a query, or ``None`` when uncacheable.

    Two requests get the same key iff the engine would answer them
    identically (given equal seeds); see :func:`resolve_request` for
    the canonicalisation rules.
    """
    return resolve_request(source, method, params)[2]


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` lifetime."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    expirations: int = 0
    stale_drops: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "stale_drops": self.stale_drops,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    result: PPRResult
    version: int
    expires_at: float | None


class ResultCache:
    """Thread-safe LRU + TTL cache of version-stamped query results.

    Parameters
    ----------
    capacity:
        Maximum entries; the least-recently-used entry is evicted when
        a fill would exceed it.
    ttl:
        Optional time-to-live in seconds.  ``None`` disables expiry —
        version stamps already bound staleness on evolving graphs, so
        TTL mainly serves static graphs whose *popularity* drifts.
    clock:
        Injectable monotonic clock (tests pin it to step manually).
    """

    def __init__(
        self,
        capacity: int = 4096,
        *,
        ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ParameterError(f"cache capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ParameterError(f"cache ttl must be positive, got {ttl}")
        self.capacity = int(capacity)
        self.ttl = ttl
        self._clock = clock
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._mutex = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def get(
        self, key: tuple, version: int, *, count_miss: bool = True
    ) -> PPRResult | None:
        """The cached result for ``key`` at ``version``, or ``None``.

        A hit refreshes the entry's LRU position.  An entry stamped
        with a different graph version, or one past its TTL, is
        dropped and reported as a miss — the caller recomputes and
        re-fills at the current version.

        ``count_miss=False`` records a miss outcome silently (hits are
        always counted): a caller probing the same request twice — the
        server checks at submit and again at dispatch — passes it on
        the first probe so each request contributes at most one miss
        to ``stats`` and ``hit_rate`` stays honest.
        """
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                if count_miss:
                    self.stats.misses += 1
                return None
            if entry.version != version:
                del self._entries[key]
                self.stats.stale_drops += 1
                if count_miss:
                    self.stats.misses += 1
                return None
            if entry.expires_at is not None and self._clock() >= entry.expires_at:
                del self._entries[key]
                self.stats.expirations += 1
                if count_miss:
                    self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.result

    def put(self, key: tuple, result: PPRResult, version: int) -> None:
        """Fill ``key`` with ``result`` computed at graph ``version``.

        The entry's arrays are frozen (``writeable=False``): every hit
        shares the one stored object, so an in-place mutation by any
        consumer would silently corrupt all future answers — freezing
        turns that bug into an immediate ``ValueError`` at the mutation
        site.
        """
        result.estimate.setflags(write=False)
        if result.residue is not None:
            result.residue.setflags(write=False)
        expires_at = None if self.ttl is None else self._clock() + self.ttl
        with self._mutex:
            self._entries[key] = _Entry(result, int(version), expires_at)
            self._entries.move_to_end(key)
            self.stats.insertions += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self, version: int | None = None) -> int:
        """Drop stale entries; return how many were dropped.

        With ``version`` given, every entry stamped with a *different*
        version goes (the writer path calls this with the post-update
        version, clearing all pre-update answers in one sweep).  With
        ``version=None`` the cache is cleared outright.
        """
        with self._mutex:
            if version is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                stale = [
                    key
                    for key, entry in self._entries.items()
                    if entry.version != version
                ]
                for key in stale:
                    del self._entries[key]
                dropped = len(stale)
            self.stats.invalidations += dropped
            return dropped

    def version_of(self, key: tuple) -> int | None:
        """Version stamp of ``key``'s entry (no LRU touch), or ``None``."""
        with self._mutex:
            entry = self._entries.get(key)
            return None if entry is None else entry.version

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultCache(size={len(self)}/{self.capacity}, "
            f"ttl={self.ttl}, hit_rate={self.stats.hit_rate:.2f})"
        )
