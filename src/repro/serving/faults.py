"""Deterministic fault injection for the sharded serving tier.

Chaos testing is only useful when a failing run can be replayed
exactly, so faults here are *scheduled*, not sampled at runtime: a
:class:`FaultInjector` carries an explicit list of
:class:`FaultSpec` entries ("kill worker 1 when the 40th request is
submitted", "drop worker 0's 3rd reply") and both sides of the process
boundary trigger them off deterministic counters — the dispatcher's
submit count for process-level faults, the worker's own reply/barrier
ordinals for in-worker faults.  :meth:`FaultInjector.random_schedule`
builds a randomized schedule from a seed, so ``--chaos-seed`` in the
bench reproduces the whole run bit for bit.

Fault kinds
-----------

Parent-side (triggered by the dispatcher at submit count ``at``):

* ``kill``  — SIGKILL worker ``worker`` (hard crash; supervision must
  respawn it and replay the update journal).
* ``stop``  — SIGSTOP worker ``worker`` (a stalled-but-alive shard:
  supervision must *not* respawn it, but timeouts/breakers must route
  around it).
* ``cont``  — SIGCONT worker ``worker`` (recovery from ``stop``).

Worker-side (shipped to the worker inside its ``WorkerConfig`` and
triggered by worker-local ordinals, so they survive respawns and queue
reordering deterministically):

* ``delay_reply`` — sleep ``delay`` seconds before sending reply
  number ``at`` (0-based count of result/error replies).
* ``drop_reply``  — swallow reply number ``at`` entirely (the
  dispatcher's request timeout + bounded retry must recover it).
* ``crash_update`` — ``os._exit`` mid-barrier, *after* applying
  update broadcast number ``at`` but *before* acking it (the barrier
  must settle on the survivors and the respawn must catch up past the
  batch it died inside).

Worker-side plans arm a worker's *first* incarnation only: the
trigger ordinals are worker-local, so re-arming them on a respawn
would re-fire the same faults during journal replay (a
``crash_update`` would crash-loop the respawn straight through its
restart budget, which is the opposite of what a recovery test wants
to measure).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ParameterError

__all__ = ["FaultInjector", "FaultSpec", "WorkerFaultPlan"]

#: Kinds the dispatcher triggers by submit count (process signals).
PARENT_KINDS = frozenset({"kill", "stop", "cont"})
#: Kinds the worker triggers by its own local ordinals.
WORKER_KINDS = frozenset({"delay_reply", "drop_reply", "crash_update"})


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``at`` is the trigger ordinal: the dispatcher-wide submit count
    for parent kinds, the worker-local reply/barrier ordinal
    (0-based) for worker kinds.  ``delay`` is only meaningful for
    ``delay_reply``.
    """

    kind: str
    worker: int
    at: int
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in PARENT_KINDS | WORKER_KINDS:
            raise ParameterError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(PARENT_KINDS | WORKER_KINDS)}"
            )
        if self.worker < 0:
            raise ParameterError(f"worker must be >= 0, got {self.worker}")
        if self.at < 0:
            raise ParameterError(f"at must be >= 0, got {self.at}")
        if self.delay < 0:
            raise ParameterError(f"delay must be >= 0, got {self.delay}")


class FaultInjector:
    """A replayable fault schedule threaded through the dispatcher.

    The dispatcher calls :meth:`parent_faults_at` once per submitted
    request (with its running submit count) and fires whatever comes
    back; worker-side specs are extracted once per worker with
    :meth:`worker_plan` and shipped in the worker's config.  The
    injector never acts on its own — it is a pure schedule plus fired
    counters, safe to share across dispatcher threads.
    """

    def __init__(self, schedule: Iterable[FaultSpec]) -> None:
        specs = list(schedule)
        for spec in specs:
            if not isinstance(spec, FaultSpec):
                raise ParameterError(
                    "FaultInjector schedule entries must be FaultSpec, "
                    f"got {type(spec).__name__}"
                )
        self._schedule = tuple(specs)
        self._lock = threading.Lock()
        self._parent_due: dict[int, list[FaultSpec]] = {}
        for spec in specs:
            if spec.kind in PARENT_KINDS:
                self._parent_due.setdefault(spec.at, []).append(spec)
        self._fired: list[FaultSpec] = []

    @classmethod
    def random_schedule(
        cls,
        *,
        workers: int,
        requests: int,
        kills: int = 1,
        stops: int = 0,
        drops: int = 0,
        delays: int = 0,
        delay_s: float = 0.05,
        seed: int = 0,
    ) -> "FaultInjector":
        """Build a seed-deterministic schedule over a known workload.

        Kill/stop points are drawn from the middle 80% of the request
        range so the workload is warm when the fault lands and has
        time to recover before the run drains.  Every ``stop`` gets a
        matching ``cont`` a short slice of requests later.
        """
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if requests < 10:
            raise ParameterError(
                f"requests must be >= 10 for a schedule, got {requests}"
            )
        rng = np.random.default_rng(seed)
        lo, hi = max(1, requests // 10), max(2, (9 * requests) // 10)
        schedule: list[FaultSpec] = []

        def draw_at() -> int:
            return int(rng.integers(lo, hi))

        def draw_worker() -> int:
            return int(rng.integers(0, workers))

        for _ in range(kills):
            schedule.append(FaultSpec("kill", draw_worker(), draw_at()))
        for _ in range(stops):
            worker = draw_worker()
            at = draw_at()
            resume = min(requests - 1, at + max(2, requests // 10))
            schedule.append(FaultSpec("stop", worker, at))
            schedule.append(FaultSpec("cont", worker, resume))
        for _ in range(drops):
            schedule.append(
                FaultSpec("drop_reply", draw_worker(), int(rng.integers(0, 8)))
            )
        for _ in range(delays):
            schedule.append(
                FaultSpec(
                    "delay_reply",
                    draw_worker(),
                    int(rng.integers(0, 16)),
                    delay=delay_s,
                )
            )
        return cls(schedule)

    @property
    def schedule(self) -> tuple[FaultSpec, ...]:
        return self._schedule

    def parent_faults_at(self, submit_count: int) -> list[FaultSpec]:
        """Parent-side faults due at this submit count (fired once)."""
        with self._lock:
            due = self._parent_due.pop(submit_count, [])
            self._fired.extend(due)
            return due

    def worker_plan(self, worker_id: int) -> tuple[FaultSpec, ...]:
        """Worker-side specs for ``worker_id`` (shipped in its config)."""
        return tuple(
            spec
            for spec in self._schedule
            if spec.kind in WORKER_KINDS and spec.worker == worker_id
        )

    def fired(self) -> list[FaultSpec]:
        """Parent-side faults actually injected so far."""
        with self._lock:
            return list(self._fired)

    def summary(self) -> dict[str, int]:
        """Scheduled fault counts by kind (for reports and gating)."""
        counts: dict[str, int] = {}
        for spec in self._schedule:
            counts[spec.kind] = counts.get(spec.kind, 0) + 1
        return counts


class WorkerFaultPlan:
    """Worker-local trigger state built from that worker's specs.

    Lives inside the worker process; consulted on every reply and
    every update broadcast with monotonically increasing local
    ordinals, so the same schedule always fires at the same points.
    """

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        self._delay: dict[int, float] = {}
        self._drop: set[int] = set()
        self._crash_updates: set[int] = set()
        for spec in specs:
            if spec.kind == "delay_reply":
                self._delay[spec.at] = spec.delay
            elif spec.kind == "drop_reply":
                self._drop.add(spec.at)
            elif spec.kind == "crash_update":
                self._crash_updates.add(spec.at)
        self._replies = 0
        self._updates = 0

    def __bool__(self) -> bool:
        return bool(self._delay or self._drop or self._crash_updates)

    def on_reply(self) -> tuple[str, float] | None:
        """Action for the next reply: ``("drop"|"delay", seconds)``."""
        ordinal = self._replies
        self._replies += 1
        if ordinal in self._drop:
            return ("drop", 0.0)
        if ordinal in self._delay:
            return ("delay", self._delay[ordinal])
        return None

    def on_update_applied(self) -> bool:
        """Whether to crash after applying this update broadcast."""
        ordinal = self._updates
        self._updates += 1
        return ordinal in self._crash_updates
