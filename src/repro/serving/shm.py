"""Shared-memory CSR graph images: one graph, N processes, zero copies.

The sharded serving tier (:mod:`repro.serving.sharded`) runs one
:class:`~repro.serving.server.EngineServer` per *process* so numpy
solves stop contending on the GIL.  Replicating a multi-GB CSR per
worker would defeat the point, so the graph's hot arrays — the out-CSR
(``indptr``/``indices``), the cached ``P^T`` CSR
(``indptr``/``indices``/``data``) and the flattened ``edge_sources``
gather index — are placed once in a single
:mod:`multiprocessing.shared_memory` segment and every worker maps the
same physical pages read-only.  :meth:`SharedGraphImage.graph`
reconstructs a :class:`~repro.graph.digraph.DiGraph` over those
zero-copy views, with the expensive push caches pre-attached via
:meth:`~repro.graph.digraph.DiGraph.adopt_push_caches` so no worker
ever rebuilds ``P^T``.

Lifecycle discipline (enforced by the ``shm-discipline`` lint rule):

* the **owner** (the process that called :meth:`export_graph`) must
  :meth:`unlink` the segment **exactly once** — ``unlink`` is
  idempotent, guarded by the owning pid so a forked child that
  inherited the object can never unlink the parent's segment;
* **every** process that mapped the segment calls :meth:`close`
  (idempotent, best-effort: outstanding numpy views make the unmap
  fail benignly and the OS reclaims the mapping at process exit);
* an :mod:`atexit` fallback cleans owned segments even when the owner
  forgets, and the interpreter's ``resource_tracker`` backstops a
  SIGKILLed owner — a killed worker leaks nothing because workers
  never own segments.

Attachments are *untracked*: a non-owner registering with the resource
tracker would have the tracker unlink the segment when that process
exits, yanking the graph out from under its siblings (bpo-38119).  On
Python >= 3.13 this uses ``track=False``; earlier versions unregister
manually.
"""

from __future__ import annotations

import atexit
import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Mapping

import numpy as np

from repro.errors import ParameterError
from repro.graph.digraph import DiGraph

__all__ = [
    "ArraySpec",
    "SharedGraphHandle",
    "SharedGraphImage",
    "SEGMENT_PREFIX",
    "live_segments",
]

#: Prefix of every segment this module creates; the serving benchmark
#: scans ``/dev/shm`` for it to assert nothing leaked.  Kept short:
#: POSIX shm names are limited to 31 bytes on some platforms.
SEGMENT_PREFIX = "rppr"

#: Byte alignment of each array within the segment (cache-line sized,
#: and a multiple of every dtype's itemsize we store).
_ALIGN = 64

#: The graph arrays one image carries, in layout order.
_FIELDS = (
    "out_indptr",
    "out_indices",
    "edge_sources",
    "pt_indptr",
    "pt_indices",
    "pt_data",
)


@dataclass(frozen=True)
class ArraySpec:
    """Location of one array inside the shared segment."""

    offset: int
    dtype: str
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class SharedGraphHandle:
    """Picklable descriptor a worker needs to attach a graph image.

    Carries no live resources — send it through a
    ``multiprocessing`` pipe/queue or as a spawn argument and call
    :meth:`SharedGraphImage.attach` on the other side.
    """

    segment: str
    graph_name: str
    num_nodes: int
    num_edges: int
    arrays: Mapping[str, ArraySpec]


def _segment_name() -> str:
    """A short, unique POSIX shm name (pid + random token)."""
    return f"{SEGMENT_PREFIX}_{os.getpid():x}_{secrets.token_hex(3)}"


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to ``name`` without resource-tracker registration.

    A non-owning attachment must not be tracked: the tracker would
    unlink the segment when *this* process exits, destroying it for
    every sibling still serving from it (bpo-38119).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track= parameter
        segment = shared_memory.SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # repro: allow[lock-discipline] -- best-effort
            # unregister: tracker internals moved; worst case is a
            # spurious "leaked shared_memory" warning at exit, never a
            # wrong unlink of a live segment from the owner side.
            pass
        return segment


#: Images with cleanup still pending, keyed by id — the atexit hook
#: walks this so an owner that never called unlink (crash path, test
#: abort) still removes its segments from /dev/shm.
_LIVE_IMAGES: dict[int, "SharedGraphImage"] = {}
_ATEXIT_INSTALLED = False


def _cleanup_at_exit() -> None:
    for image in list(_LIVE_IMAGES.values()):
        image.cleanup()


def _register_live(image: "SharedGraphImage") -> None:
    global _ATEXIT_INSTALLED
    _LIVE_IMAGES[id(image)] = image
    if not _ATEXIT_INSTALLED:
        atexit.register(_cleanup_at_exit)
        _ATEXIT_INSTALLED = True


def live_segments() -> list[str]:
    """Segment names this process still has cleanup pending for."""
    return sorted(
        image.segment_name for image in _LIVE_IMAGES.values()
    )


class SharedGraphImage:
    """One graph's hot arrays in a shared-memory segment.

    Construct through :meth:`export_graph` (owner side) or
    :meth:`attach` (worker side); the constructor itself is internal.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        handle: SharedGraphHandle,
        *,
        owner: bool,
    ) -> None:
        self._segment: shared_memory.SharedMemory | None = segment
        self._handle = handle
        self._owner = owner
        #: pid that may unlink: a forked child inherits this object but
        #: must never destroy the parent's segment.
        self._owner_pid = os.getpid() if owner else -1
        self._unlinked = False
        _register_live(self)

    # -- construction ----------------------------------------------------
    @classmethod
    def export_graph(cls, graph: DiGraph) -> "SharedGraphImage":
        """Copy ``graph``'s hot arrays into a fresh shared segment.

        Materialises the push caches first (``P^T``, ``edge_sources``)
        so attachers inherit them instead of rebuilding.  The calling
        process owns the segment and must :meth:`unlink` it exactly
        once when every worker is done (or rely on the atexit
        fallback).
        """
        graph.warm_push_caches()
        pt_indptr, pt_indices, pt_data = graph.pt_csr_arrays()
        arrays: dict[str, np.ndarray] = {
            "out_indptr": graph.out_indptr,
            "out_indices": graph.out_indices,
            "edge_sources": graph.edge_sources,
            "pt_indptr": pt_indptr,
            "pt_indices": pt_indices,
            "pt_data": pt_data,
        }
        specs: dict[str, ArraySpec] = {}
        total = 0
        for field in _FIELDS:
            array = arrays[field]
            offset = -(-total // _ALIGN) * _ALIGN
            specs[field] = ArraySpec(
                offset=offset,
                dtype=str(array.dtype),
                shape=tuple(array.shape),
            )
            total = offset + array.nbytes
        segment = shared_memory.SharedMemory(
            name=_segment_name(), create=True, size=max(total, 1)
        )
        try:
            for field in _FIELDS:
                spec = specs[field]
                view: np.ndarray = np.ndarray(
                    spec.shape,
                    dtype=spec.dtype,
                    buffer=segment.buf,
                    offset=spec.offset,
                )
                view[...] = arrays[field]
                del view  # keep no exported pointers into the buffer
            handle = SharedGraphHandle(
                segment=segment.name,
                graph_name=graph.name,
                num_nodes=graph.num_nodes,
                num_edges=graph.num_edges,
                arrays=specs,
            )
        except BaseException:
            # A half-built image must not leak its segment.
            try:
                segment.close()
            finally:
                segment.unlink()
            raise
        return cls(segment, handle, owner=True)

    @classmethod
    def attach(cls, handle: SharedGraphHandle) -> "SharedGraphImage":
        """Map an exported image in this process (zero-copy, untracked).

        The attachment never owns the segment: :meth:`unlink` refuses,
        and process exit releases only this mapping.
        """
        return cls(_attach_untracked(handle.segment), handle, owner=False)

    # -- accessors -------------------------------------------------------
    @property
    def handle(self) -> SharedGraphHandle:
        """The picklable descriptor workers attach through."""
        return self._handle

    @property
    def segment_name(self) -> str:
        return self._handle.segment

    @property
    def owner(self) -> bool:
        """Whether this process created (and must unlink) the segment."""
        return self._owner

    @property
    def closed(self) -> bool:
        return self._segment is None

    def _array(self, field: str) -> np.ndarray:
        if self._segment is None:
            raise ParameterError(
                f"shared graph image {self.segment_name!r} is closed"
            )
        spec = self._handle.arrays[field]
        view: np.ndarray = np.ndarray(
            spec.shape,
            dtype=spec.dtype,
            buffer=self._segment.buf,
            offset=spec.offset,
        )
        view.flags.writeable = False
        return view

    def graph(self) -> DiGraph:
        """The shared graph as a :class:`DiGraph` over zero-copy views.

        The returned graph's CSR arrays, ``edge_sources`` and ``P^T``
        all alias the shared segment — construction is O(1) in the
        graph size.  Keep the image open for as long as the graph (or
        any engine built on it) is in use.
        """
        graph = DiGraph(
            self._array("out_indptr"),
            self._array("out_indices"),
            name=self._handle.graph_name,
            validate=False,
        )
        graph.adopt_push_caches(
            pt_arrays=(
                self._array("pt_indptr"),
                self._array("pt_indices"),
                self._array("pt_data"),
            ),
            edge_sources=self._array("edge_sources"),
        )
        return graph

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Release this process's mapping (idempotent, best-effort).

        Numpy views handed out by :meth:`graph` keep the buffer
        exported; if any are still alive the unmap raises
        ``BufferError`` internally, which is swallowed — the mapping
        is then reclaimed at process exit, which is safe because only
        :meth:`unlink` affects other processes.
        """
        segment = self._segment
        if segment is None:
            return
        self._segment = None
        try:
            segment.close()
        except BufferError:
            # Live views (graph/engine still referenced) pin the mmap;
            # the OS releases it with the process.  Deliberately not an
            # error: close() must be callable from teardown paths that
            # cannot prove every view is dead.
            pass
        if not self._owner:
            _LIVE_IMAGES.pop(id(self), None)

    def unlink(self) -> None:
        """Remove the segment from the system (owner only, exactly once).

        Idempotent; raises :class:`~repro.errors.ParameterError` when
        called on a non-owning attachment, and silently refuses in a
        forked child of the owner (the pid guard) so an inherited
        image object can never destroy the parent's live segment.
        """
        if not self._owner:
            raise ParameterError(
                f"segment {self.segment_name!r} is attached, not owned; "
                f"only the exporting process may unlink it"
            )
        if self._unlinked or os.getpid() != self._owner_pid:
            return
        self._unlinked = True
        _LIVE_IMAGES.pop(id(self), None)
        try:
            shared_memory.SharedMemory(name=self._handle.segment).unlink()
        except FileNotFoundError:
            # Already gone (resource-tracker backstop beat us to it).
            pass

    def cleanup(self) -> None:
        """Close, and unlink when owned: the one-call teardown.

        Safe from ``atexit`` and ``finally`` blocks in any process —
        non-owners only drop their mapping.
        """
        try:
            self.close()
        finally:
            if self._owner and os.getpid() == self._owner_pid:
                self.unlink()

    def __enter__(self) -> "SharedGraphImage":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.cleanup()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else "open"
        role = "owner" if self._owner else "attached"
        return (
            f"SharedGraphImage({self.segment_name!r}, "
            f"n={self._handle.num_nodes}, m={self._handle.num_edges}, "
            f"{role}, {state})"
        )
