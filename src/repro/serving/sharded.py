"""Multi-process sharded serving over one shared-memory graph image.

The thread-based :class:`~repro.serving.server.EngineServer` coalesces
and caches well, but every solve outside the compiled-kernel regions
still contends on the GIL, so an 8-thread server gets one core's worth
of numpy.  This module is the process-parallel tier the AccPPR harness
(PAPERS.md; SNIPPETS.md §3) motivates — a ``multiprocessing`` pool
driving per-source solves over one pre-built CSR — with the serving
semantics of PR 3 kept intact *per worker*:

* the graph's hot arrays live once in a
  :class:`~repro.serving.shm.SharedGraphImage`; every worker process
  maps the same physical pages zero-copy and runs a full
  :class:`EngineServer` (micro-batch scheduler + version-stamped
  :class:`~repro.serving.cache.ResultCache`) over them;
* the :class:`ShardedDispatcher` in the parent routes each request by
  **consistent hashing on the source id**, so repeat queries for a hot
  source always land on the same worker — its cache keeps hitting and
  its micro-batches stay coherent — and removing a crashed worker
  re-routes only that worker's arc of the ring;
* ``apply_updates`` broadcasts as a **versioned barrier** under the
  dispatcher's writer lock: every worker applies the same batch to its
  copy-on-write :class:`~repro.graph.dynamic.DynamicGraph` overlay
  (the shared base stays immutable) and acks with its new version;
  the dispatcher verifies the versions agree before letting reads
  resume, so no request is ever answered from a pre-update vector.

Because every seeded answer is a pure function of ``(seed, source)``
(:func:`repro.api.engine.per_source_rng`), *where* a request runs
cannot change *what* it answers: process-mode responses are
byte-identical to the single-process path, which is exactly how the
tests check this module.

Request/response framing is plain picklable tuples over per-worker
``multiprocessing`` queues; per-worker FIFO ordering is what makes the
update barrier correct (queries enqueued before the barrier are
answered at the old version, the barrier message follows them, and new
queries wait on the writer lock).

Self-healing (PR 9): the dispatcher runs a supervisor thread that
notices worker death (``process.is_alive()``, surfaced promptly by the
timed collector waits), respawns the shard over the *same* shared
image after a jittered exponential backoff
(:class:`~repro.serving.supervisor.RestartPolicy`), replays the
dispatcher's update journal so the fresh worker reaches the current
graph version, and only then restores its arc on the ring.  A restart
budget turns a crash-looping shard into a permanent removal with a
``degraded_capacity`` stats flag instead of an outage.  Reads get a
deadline-aware bounded retry (:class:`RetryPolicy`) and per-shard
circuit breakers (:class:`CircuitBreaker`) — all safe because answers
are pure functions of ``(seed, source)``, so a retried or rerouted
request cannot change bytes.  A seeded
:class:`~repro.serving.faults.FaultInjector` threads deterministic
fault schedules through ``submit`` (process signals) and the worker
loop (reply drops/delays, mid-barrier crashes) so chaos runs replay
exactly.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import queue
import signal
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from multiprocessing import get_all_start_methods, get_context
from pathlib import Path
from types import FrameType
from typing import Any, Iterable, Mapping

from repro.api.engine import PPREngine
from repro.errors import (
    DeadlineExceeded,
    NodeNotFoundError,
    ParameterError,
    WorkerUnavailableError,
)
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import DynamicGraph
from repro.serving.cache import resolve_request
from repro.serving.faults import FaultInjector, FaultSpec, WorkerFaultPlan
from repro.serving.locks import RWLock
from repro.serving.scheduler import ServedResult
from repro.serving.server import EngineServer
from repro.serving.shm import SharedGraphHandle, SharedGraphImage
from repro.serving.supervisor import CircuitBreaker, RestartPolicy, RetryPolicy

__all__ = ["ShardedDispatcher", "WorkerConfig"]

#: Collector/barrier poll quantum (seconds): every blocking wait in the
#: dispatcher is a timed wait at this granularity so worker death is
#: noticed promptly and no future can hang forever.
_POLL = 0.05

#: Default per-worker vnode count on the hash ring.  Enough that each
#: worker's share of sources stays within a few percent of uniform and
#: a removed worker's arc scatters evenly over the survivors.
_DEFAULT_VNODES = 48


@dataclass(frozen=True)
class WorkerConfig:
    """Picklable per-worker :class:`EngineServer` construction recipe."""

    alpha: float = 0.2
    seed: int = 0
    dead_end_policy: str = "redirect-to-source"
    dynamic: bool = False
    cache_capacity: int = 4096
    cache_ttl: float | None = None
    window: float = 0.002
    max_batch: int = 64
    backend: str | None = None
    #: Worker-side fault schedule (chaos runs only; empty in production).
    faults: tuple[FaultSpec, ...] = ()
    #: Version the worker's DynamicGraph overlay starts at.  Nonzero
    #: after cold-restart recovery: the shared base is the recovered
    #: snapshot and version numbering continues from the durable state.
    initial_version: int = 0


def _raise_exit(signum: int, frame: FrameType | None) -> None:
    """SIGTERM -> SystemExit so worker ``finally`` blocks run."""
    raise SystemExit(0)


def _worker_main(
    worker_id: int,
    handle: SharedGraphHandle,
    config: WorkerConfig,
    requests: Any,
    responses: Any,
) -> None:
    """One shard: attach the shared image, serve until told to stop.

    Runs in a child process (module-level so the spawn start method can
    pickle it).  Messages in, messages out:

    * ``("query", req_id, source, method, params, fresh, deadline)`` ->
      ``("result", req_id, ServedResult)`` or
      ``("error", req_id, exc)`` — ``deadline`` is a
      ``time.monotonic()`` timestamp, meaningful across the process
      boundary because ``CLOCK_MONOTONIC`` is system-wide
    * ``("update", barrier_id, updates)`` ->
      ``("updated", barrier_id, version)`` or
      ``("update-error", barrier_id, exc)``
    * ``("stats", req_id)`` -> ``("stats", req_id, dict)``
    * ``("stop",)`` -> clean exit.

    The worker also emits unsolicited
    ``("heartbeat", graph_version, cache_size, monotonic_ts)``
    messages — once at startup and once per idle second — which the
    dispatcher uses for health visibility and for asserting that a
    respawned worker starts at the journal-replayed graph version with
    an empty result cache (stale memoised answers must not survive a
    respawn).

    The request queue is drained in bursts: everything immediately
    available is submitted to the local server *before* blocking on
    results, so the per-worker micro-batch window sees real company
    and coalesced windows still become one multi-source block solve.
    A worker never owns the shared segment — teardown only closes its
    own mapping, so a SIGKILLed worker cannot leak ``/dev/shm``
    entries (satisfying the ``shm-discipline`` contract from the
    child side).
    """
    signal.signal(signal.SIGTERM, _raise_exit)
    image = SharedGraphImage.attach(handle)
    try:
        engine = PPREngine.from_shared_graph(
            image,
            dynamic=config.dynamic,
            initial_version=config.initial_version,
            alpha=config.alpha,
            seed=config.seed,
            dead_end_policy=config.dead_end_policy,
            backend=config.backend,
        )
        server = EngineServer(
            engine,
            cache_capacity=config.cache_capacity,
            cache_ttl=config.cache_ttl,
            window=config.window,
            max_batch=config.max_batch,
        )
        with server:
            _serve_messages(
                worker_id,
                server,
                requests,
                responses,
                config.max_batch,
                WorkerFaultPlan(config.faults),
            )
    finally:
        image.close()


#: Seconds between unsolicited worker heartbeats, busy or idle.
_HEARTBEAT_INTERVAL = 1.0


def _heartbeat(server: EngineServer, responses: Any) -> None:
    """Emit one unsolicited health/version/cache report."""
    responses.put(
        (
            "heartbeat",
            server.graph_version,
            server.cache_size,
            time.monotonic(),
        )
    )


def _serve_messages(
    worker_id: int,
    server: EngineServer,
    requests: Any,
    responses: Any,
    max_burst: int,
    plan: WorkerFaultPlan,
) -> None:
    """The worker's receive loop; returns on ``("stop",)`` / orphaning."""
    _heartbeat(server, responses)
    last_beat = time.monotonic()
    while True:
        try:
            message = requests.get(timeout=1.0)
        except queue.Empty:
            if os.getppid() == 1:
                # Re-parented to init: the dispatcher died without a
                # stop message; exit rather than serve nobody.
                return
            _heartbeat(server, responses)
            last_beat = time.monotonic()
            continue
        burst = [message]
        while len(burst) < max_burst:
            try:
                burst.append(requests.get_nowait())
            except queue.Empty:
                break
        pending: list[tuple[int, Future]] = []
        for message in burst:
            kind = message[0]
            if kind == "query":
                _, req_id, source, method, params, fresh, deadline = message
                try:
                    future = server.submit(
                        source,
                        method,
                        fresh=fresh,
                        deadline=deadline,
                        **params,
                    )
                except Exception as exc:  # noqa: BLE001 - forwarded
                    _put_reply(responses, plan, ("error", req_id, exc))
                    continue
                pending.append((req_id, future))
                continue
            # Control messages order against queries: everything
            # submitted before them must resolve first.
            _flush(worker_id, pending, responses, plan)
            pending = []
            if kind == "stop":
                return
            if kind == "update":
                _, barrier_id, updates = message
                try:
                    version = server.apply_updates(updates)
                except Exception as exc:  # noqa: BLE001 - forwarded
                    responses.put(("update-error", barrier_id, exc))
                else:
                    if plan and plan.on_update_applied():
                        # Scheduled chaos: die *after* applying the
                        # batch, *before* acking — the worst spot for
                        # the barrier.  ``os._exit`` skips ``finally``
                        # blocks, like a real SIGKILL would.
                        os._exit(17)
                    responses.put(("updated", barrier_id, version))
            elif kind == "stats":
                responses.put(("stats", message[1], server.stats()))
        _flush(worker_id, pending, responses, plan)
        # Time-based, not idle-based: a worker saturated with traffic
        # (or a parent polling stats) must still report its version
        # and cache freshness.
        now = time.monotonic()
        if now - last_beat >= _HEARTBEAT_INTERVAL:
            _heartbeat(server, responses)
            last_beat = now


def _put_reply(
    responses: Any, plan: WorkerFaultPlan, message: tuple
) -> None:
    """Send one query reply, honouring the worker's fault plan."""
    if plan:
        action = plan.on_reply()
        if action is not None:
            kind, seconds = action
            if kind == "drop":
                return
            time.sleep(seconds)
    responses.put(message)


def _flush(
    worker_id: int,
    pending: list[tuple[int, Future]],
    responses: Any,
    plan: WorkerFaultPlan,
) -> None:
    """Resolve a burst of submitted futures back to the dispatcher."""
    for req_id, future in pending:
        try:
            served: ServedResult = future.result()
        except Exception as exc:  # noqa: BLE001 - forwarded
            _put_reply(responses, plan, ("error", req_id, exc))
        else:
            _put_reply(
                responses,
                plan,
                ("result", req_id, replace(served, worker=worker_id)),
            )


def _ring_point(token: str) -> int:
    """Stable 64-bit position on the hash ring for ``token``."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class _HashRing:
    """Consistent hashing of source ids onto worker ids.

    Each worker contributes ``vnodes`` points; a source routes to the
    first point clockwise from its own hash.  Removing a worker moves
    only the sources on its arcs — every other source keeps its worker
    (and therefore its warm cache).
    """

    def __init__(self, vnodes: int) -> None:
        self._vnodes = vnodes
        self._points: list[int] = []
        self._owners: dict[int, int] = {}

    def add(self, worker_id: int) -> None:
        for v in range(self._vnodes):
            point = _ring_point(f"{worker_id}:{v}")
            # blake2b collisions across our tiny point sets are
            # vanishingly unlikely; first owner keeps the point.
            if point in self._owners:
                continue
            bisect.insort(self._points, point)
            self._owners[point] = worker_id

    def remove(self, worker_id: int) -> None:
        dropped = [
            point
            for point, owner in self._owners.items()
            if owner == worker_id
        ]
        for point in dropped:
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]

    def route(self, source: int) -> int:
        if not self._points:
            raise RuntimeError("no live workers")
        position = _ring_point(f"s:{source}")
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def route_order(self, source: int) -> list[int]:
        """All owners in clockwise preference order from ``source``.

        The first entry is :meth:`route`'s answer; the rest are the
        fallback order a breaker-aware router walks when the primary
        shard's circuit is open.  Deduplicated, so the list length is
        the live worker count.
        """
        if not self._points:
            raise RuntimeError("no live workers")
        position = _ring_point(f"s:{source}")
        start = bisect.bisect_right(self._points, position)
        order: list[int] = []
        seen: set[int] = set()
        count = len(self._points)
        for step in range(count):
            owner = self._owners[self._points[(start + step) % count]]
            if owner not in seen:
                seen.add(owner)
                order.append(owner)
        return order

    def __len__(self) -> int:
        return len(set(self._owners.values()))


@dataclass
class _PendingRequest:
    """What the dispatcher must remember to reroute or fail a request."""

    future: Future
    source: int
    method: str
    params: dict[str, Any]
    fresh: bool
    deadline: float | None = None
    #: Re-submissions so far (reroutes + timeout retries); bounded by
    #: the dispatcher's :class:`RetryPolicy`.
    attempts: int = 0
    #: ``time.monotonic()`` of the latest enqueue, for timeout scans.
    enqueued_at: float = 0.0


@dataclass
class _WorkerState:
    """Parent-side bookkeeping for one shard."""

    worker_id: int
    process: Any
    requests: Any
    responses: Any
    collector: threading.Thread | None = None
    pending: dict[int, _PendingRequest] = field(default_factory=dict)
    alive: bool = True
    #: Incarnation counter: bumps on every respawn of this worker id.
    generation: int = 0
    #: Respawns consumed from the restart budget (spawn failures count).
    restarts: int = 0
    #: Budget exhausted — permanently removed, never respawned again.
    removed: bool = False
    #: ``time.monotonic()`` when the collector declared this shard dead.
    died_at: float = 0.0
    #: Latest unsolicited heartbeat: (monotonic ts, version, cache size).
    last_heartbeat: float = 0.0
    reported_version: int = -1
    reported_cache_size: int = -1
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)


@dataclass
class _Barrier:
    """One in-flight ``apply_updates`` broadcast."""

    expected: set[int]
    versions: dict[int, int] = field(default_factory=dict)
    errors: list[BaseException] = field(default_factory=list)
    #: Workers whose outcome is an error (keyed, so a worker that acks
    #: and then dies cannot stand in for one that never answered).
    failed: set[int] = field(default_factory=set)
    done: threading.Event = field(default_factory=threading.Event)

    def settle_if_complete(self) -> None:
        """Settle once every *still-expected* worker has an outcome.

        Set-based on purpose: a worker that dies mid-barrier is
        discarded from ``expected`` and the barrier settles on the
        survivors' version agreement.  The old count-based check
        (``len(versions) + len(errors) >= len(expected)``) could
        settle early when an acked worker later died — its stale ack
        counted against a shrunken ``expected`` that still contained a
        worker with no outcome at all.
        """
        if self.expected <= (set(self.versions) | self.failed):
            self.done.set()


class ShardedDispatcher:
    """Route queries to N worker processes sharing one graph image.

    Parameters
    ----------
    graph_or_image:
        A :class:`DiGraph` / :class:`DynamicGraph` to export into
        shared memory (the dispatcher owns the segment and unlinks it
        on close), or an already-exported
        :class:`~repro.serving.shm.SharedGraphImage` whose lifecycle
        the caller keeps.  A :class:`DynamicGraph` is snapshotted —
        its current logical graph becomes the shared base — and
        implies ``dynamic=True``.
    workers:
        Number of shard processes (>= 1).
    dynamic:
        Whether workers wrap the shared base in a per-process
        :class:`DynamicGraph` overlay so :meth:`apply_updates` works.
        Default: inferred from the graph argument.
    alpha, seed, dead_end_policy, backend:
        Per-worker engine construction (identical in every shard —
        answers must not depend on placement).
    cache_capacity, cache_ttl, window, max_batch:
        Per-worker :class:`EngineServer` knobs.
    start_method:
        ``multiprocessing`` start method; default ``"fork"`` where
        available (inherits the warmed import state), else the
        platform default.  Workers attach the image by handle either
        way, so spawn works identically, just slower to start.
    vnodes:
        Hash-ring points per worker.
    update_timeout:
        Seconds to wait for every worker's barrier ack in
        :meth:`apply_updates` before declaring the cluster wedged.
    restart_policy:
        :class:`~repro.serving.supervisor.RestartPolicy` for crashed
        shards (default: jittered exponential backoff, budget of 3
        respawns per worker).  ``max_restarts`` is a shorthand that
        overrides just the budget; ``max_restarts=0`` disables
        respawning (a dead worker is removed permanently, the
        pre-supervision behaviour).
    retry_policy:
        :class:`~repro.serving.supervisor.RetryPolicy` bounding read
        re-submissions (reroutes off dead shards, timeout retries).
        Retried answers are byte-identical by construction.
    request_timeout:
        Seconds a routed request may sit unanswered before the
        supervisor counts a shard failure and retries it elsewhere.
        ``None`` (default) disables the scan — death detection alone
        reroutes; set it for chaos runs where replies can be dropped.
    breaker_threshold, breaker_reset:
        Per-shard circuit breaker: consecutive failures to trip open,
        and seconds before the half-open probe.
    fault_injector:
        Deterministic chaos schedule
        (:class:`~repro.serving.faults.FaultInjector`); ``None`` in
        production.
    wal_dir, wal_fsync, checkpoint_every:
        ``wal_dir`` makes the cluster durable: the parent keeps a
        mirror :class:`DynamicGraph` of the barriered update stream,
        logs every agreed batch to a write-ahead log (fsynced before
        the version ack unless ``wal_fsync=False``, checkpointed
        every ``checkpoint_every`` updates), and a restart on the
        same directory recovers the pre-crash graph — the recovered
        snapshot becomes the shared base and every worker's version
        counter continues from the recovered version.
        ``graph_or_image`` then only seeds a virgin directory (a
        pre-exported :class:`SharedGraphImage` cannot be combined
        with ``wal_dir``: recovery must be free to export a different
        base).  See :mod:`repro.durability`.

    The dispatcher mirrors :class:`EngineServer`'s surface —
    ``submit``/``query``/``batch``/``apply_updates``/``stats``/
    ``close`` and the context manager — so the loadtest harness and
    the CLI switch between thread mode and process mode with one flag.
    """

    def __init__(
        self,
        graph_or_image: DiGraph | DynamicGraph | SharedGraphImage,
        *,
        workers: int = 2,
        dynamic: bool | None = None,
        alpha: float = 0.2,
        seed: int = 0,
        dead_end_policy: str = "redirect-to-source",
        backend: str | None = None,
        cache_capacity: int = 4096,
        cache_ttl: float | None = None,
        window: float = 0.002,
        max_batch: int = 64,
        start_method: str | None = None,
        vnodes: int = _DEFAULT_VNODES,
        update_timeout: float = 30.0,
        restart_policy: RestartPolicy | None = None,
        max_restarts: int | None = None,
        retry_policy: RetryPolicy | None = None,
        request_timeout: float | None = None,
        breaker_threshold: int = 3,
        breaker_reset: float = 1.0,
        fault_injector: FaultInjector | None = None,
        wal_dir: str | Path | None = None,
        wal_fsync: bool = True,
        checkpoint_every: int | None = None,
    ) -> None:
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if vnodes < 1:
            raise ParameterError(f"vnodes must be >= 1, got {vnodes}")
        self._durability = None
        self._mirror: DynamicGraph | None = None
        initial_version = 0
        if wal_dir is not None:
            if isinstance(graph_or_image, SharedGraphImage):
                raise ParameterError(
                    "wal_dir cannot be combined with a pre-exported "
                    "SharedGraphImage: recovery must be free to export "
                    "the recovered snapshot as the shared base"
                )
            if dynamic is False:
                raise ParameterError(
                    "wal_dir implies dynamic=True (a static cluster has "
                    "no update stream to make durable)"
                )
            from repro.durability.manager import open_durable_graph

            seed_graph = None
            if isinstance(graph_or_image, (DiGraph, DynamicGraph)):
                # The mirror starts at version 0 over the *snapshot*,
                # matching the version numbering workers boot with.
                base_snap = (
                    graph_or_image.snapshot()
                    if isinstance(graph_or_image, DynamicGraph)
                    else graph_or_image
                )
                seed_graph = DynamicGraph(base_snap)
            self._durability, self._mirror = open_durable_graph(
                wal_dir,
                seed_graph,
                fsync=wal_fsync,
                checkpoint_every=checkpoint_every,
            )
            initial_version = self._mirror.version
            dynamic = True
            graph_or_image = self._mirror.snapshot()
        if isinstance(graph_or_image, SharedGraphImage):
            self._image = graph_or_image
            self._own_image = False
            if dynamic is None:
                dynamic = False
        elif isinstance(graph_or_image, (DiGraph, DynamicGraph)):
            base = (
                graph_or_image.snapshot()
                if isinstance(graph_or_image, DynamicGraph)
                else graph_or_image
            )
            if dynamic is None:
                dynamic = isinstance(graph_or_image, DynamicGraph)
            self._image = SharedGraphImage.export_graph(base)
            self._own_image = True
        else:
            raise ParameterError(
                "ShardedDispatcher needs a DiGraph, DynamicGraph, or "
                f"SharedGraphImage; got {type(graph_or_image).__name__}"
            )
        self._config = WorkerConfig(
            alpha=alpha,
            seed=seed,
            dead_end_policy=dead_end_policy,
            dynamic=bool(dynamic),
            cache_capacity=cache_capacity,
            cache_ttl=cache_ttl,
            window=window,
            max_batch=max_batch,
            backend=backend,
            initial_version=initial_version,
        )
        self._update_timeout = float(update_timeout)
        if restart_policy is None:
            restart_policy = RestartPolicy(seed=seed)
        if max_restarts is not None:
            if max_restarts < 0:
                raise ParameterError(
                    f"max_restarts must be >= 0, got {max_restarts}"
                )
            restart_policy = replace(
                restart_policy, max_restarts=max_restarts
            )
        self._restart_policy = restart_policy
        self._retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy(seed=seed)
        )
        self._request_timeout = (
            float(request_timeout) if request_timeout is not None else None
        )
        if breaker_threshold < 1:
            raise ParameterError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        self._breaker_threshold = breaker_threshold
        self._breaker_reset = float(breaker_reset)
        self._faults = fault_injector
        self._rwlock = RWLock()
        #: guards ring/worker-state/counter mutations (never held while
        #: blocking; collector threads take it too)
        self._mutex = threading.Lock()
        self._ring = _HashRing(vnodes)
        self._states: dict[int, _WorkerState] = {}
        self._workers = workers
        self._next_id = 0
        self._closed = False
        self._stopping = False
        self._version = initial_version
        self._submitted = 0
        self._rerouted = 0
        self._worker_failures = 0
        self._barriers: dict[int, _Barrier] = {}
        #: every successfully barriered update since boot, in order —
        #: the journal a respawned worker replays to reach the current
        #: version (``initial_version + len(self._update_log) ==
        #: self._version`` at all times; the offset is nonzero after
        #: durable recovery)
        self._update_log: list[tuple[str, int, int]] = []
        #: worker_id -> monotonic time its next respawn attempt is due
        self._respawn_due: dict[int, float] = {}
        #: worker_ids with a respawn currently in flight (spawned
        #: process not yet registered in ``_states``; close() tears
        #: these down if it races a respawn)
        self._respawning: dict[int, _WorkerState] = {}
        #: (due monotonic time, request) backoff queue for read retries
        self._retry_due: list[tuple[float, _PendingRequest]] = []
        self._respawns = 0
        self._permanent_failures = 0
        self._retries = 0
        self._request_timeouts = 0
        self._breaker_skips = 0
        self._recovery_last = 0.0
        self._recovery_max = 0.0
        self._supervisor_wake = threading.Event()
        self._supervisor: threading.Thread | None = None
        if start_method is None and "fork" in get_all_start_methods():
            start_method = "fork"
        self._context = get_context(start_method)
        try:
            for worker_id in range(workers):
                state = self._spawn_state(worker_id)
                self._states[worker_id] = state
                self._ring.add(worker_id)
            for state in self._states.values():
                self._start_collector(state)
            supervisor = threading.Thread(
                target=self._supervise,
                name="repro-shard-supervisor",
                daemon=True,
            )
            self._supervisor = supervisor
            supervisor.start()
        except BaseException:
            self.close()
            raise

    def _spawn_state(
        self, worker_id: int, *, generation: int = 0, restarts: int = 0
    ) -> _WorkerState:
        """Fork one shard process and its parent-side bookkeeping."""
        config = self._config
        if self._faults is not None and generation == 0:
            # Worker-side faults arm the first incarnation only: the
            # trigger ordinals are worker-local and would re-fire on
            # the respawn's journal replay (a crash_update would
            # otherwise crash-loop every respawn straight through the
            # restart budget).
            worker_faults = self._faults.worker_plan(worker_id)
            if worker_faults:
                config = replace(config, faults=worker_faults)
        req_q = self._context.Queue()
        resp_q = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(worker_id, self._image.handle, config, req_q, resp_q),
            name=f"repro-shard-{worker_id}.{generation}",
            daemon=True,
        )
        process.start()
        return _WorkerState(
            worker_id=worker_id,
            process=process,
            requests=req_q,
            responses=resp_q,
            generation=generation,
            restarts=restarts,
            breaker=CircuitBreaker(
                failure_threshold=self._breaker_threshold,
                reset_timeout=self._breaker_reset,
            ),
        )

    def _start_collector(self, state: _WorkerState) -> None:
        thread = threading.Thread(
            target=self._collect,
            args=(state,),
            name=(
                f"repro-shard-collector-{state.worker_id}"
                f".{state.generation}"
            ),
            daemon=True,
        )
        state.collector = thread
        thread.start()

    # -- properties ------------------------------------------------------
    @property
    def num_workers(self) -> int:
        """Live worker count (shrinks when shards crash)."""
        with self._mutex:
            return sum(1 for s in self._states.values() if s.alive)

    @property
    def configured_workers(self) -> int:
        """Worker count the dispatcher was built with (the target the
        supervisor restores toward after crashes)."""
        return self._workers

    @property
    def graph_version(self) -> int:
        """Version confirmed by the last update barrier (0 initially)."""
        with self._mutex:
            return self._version

    @property
    def closed(self) -> bool:
        with self._mutex:
            return self._closed

    @property
    def image(self) -> SharedGraphImage:
        """The shared graph image the shards serve from."""
        return self._image

    @property
    def dynamic(self) -> bool:
        """Whether the shards accept :meth:`apply_updates`."""
        return self._config.dynamic

    @property
    def durability(self) -> Any | None:
        """The parent-side DurabilityManager, or None when volatile."""
        return self._durability

    @property
    def recovered_version(self) -> int:
        """Graph version the cluster booted at (0 unless durable
        state was recovered from ``wal_dir``)."""
        return self._config.initial_version

    def route(self, source: int) -> int:
        """The worker id ``source`` currently routes to (for tests)."""
        with self._mutex:
            return self._ring.route(int(source))

    # -- read path -------------------------------------------------------
    def submit(
        self,
        source: int,
        method: str = "powerpush",
        *,
        fresh: bool = False,
        deadline: float | None = None,
        **params: Any,
    ) -> Future:
        """Enqueue one query on its shard; future of :class:`ServedResult`.

        Validates the method and parameter schema here, so typos raise
        at the call site, not inside a worker.  Parameters must be
        picklable scalars — live objects (``rng``, trace sinks,
        pre-built indexes) cannot cross the process boundary and are
        rejected up front.  ``deadline`` (a ``time.monotonic()``
        timestamp) rides along to the shard, whose local scheduler
        fails expired requests fast instead of solving them.
        """
        source = int(source)
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceeded(
                f"deadline passed before submit of source {source}"
            )
        canonical, merged, key = resolve_request(source, method, params)
        if key is None and params:
            raise ParameterError(
                "sharded serving requires scalar parameters; live "
                "objects (rng, trace, indexes) cannot cross the "
                "process boundary"
            )
        num_nodes = self._image.handle.num_nodes
        if not 0 <= source < num_nodes:
            raise NodeNotFoundError(
                f"source {source} is outside [0, {num_nodes})"
            )
        with self._rwlock.read():
            with self._mutex:
                if self._closed:
                    raise RuntimeError("dispatcher is closed")
                state = self._route_healthy(source)
                req_id = self._next_id
                self._next_id += 1
                self._submitted += 1
                submit_count = self._submitted
                pending = _PendingRequest(
                    future=Future(),
                    source=source,
                    method=canonical,
                    params=dict(params),
                    fresh=fresh,
                    deadline=deadline,
                    enqueued_at=time.monotonic(),
                )
                state.pending[req_id] = pending
            # Enqueued under the read lock: a writer that acquires
            # after us sees this request ahead of its barrier message
            # in the worker's FIFO, so it is answered pre-update.
            state.requests.put(
                (
                    "query",
                    req_id,
                    source,
                    canonical,
                    dict(params),
                    fresh,
                    deadline,
                )
            )
        if self._faults is not None:
            self._inject_parent_faults(submit_count)
        return pending.future

    def _route_healthy(self, source: int) -> _WorkerState:
        """Route by ring order, skipping shards whose breaker is open.

        Called under ``_mutex``.  The primary owner (what
        :meth:`route` reports) wins whenever its breaker admits
        traffic — including the single half-open probe after a
        cooldown; otherwise the walk continues clockwise.  With every
        breaker open the primary gets the request anyway: failing it
        here would turn a slow cluster into a hard outage.
        """
        order = self._ring.route_order(source)
        now = time.monotonic()
        for position, worker_id in enumerate(order):
            state = self._states[worker_id]
            if state.breaker.allows(now):
                if position:
                    self._breaker_skips += 1
                return state
        return self._states[order[0]]

    def _inject_parent_faults(self, submit_count: int) -> None:
        """Fire any process-level scheduled faults due at this submit."""
        assert self._faults is not None
        for spec in self._faults.parent_faults_at(submit_count):
            with self._mutex:
                state = self._states.get(spec.worker)
                pid = (
                    state.process.pid
                    if state is not None and state.alive
                    else None
                )
            if pid is None:
                continue
            signum = {
                "kill": signal.SIGKILL,
                "stop": signal.SIGSTOP,
                "cont": signal.SIGCONT,
            }[spec.kind]
            try:
                os.kill(pid, signum)
            except ProcessLookupError:
                pass

    def query(
        self,
        source: int,
        method: str = "powerpush",
        *,
        fresh: bool = False,
        timeout: float | None = None,
        **params: Any,
    ) -> ServedResult:
        """Blocking convenience: ``submit(...).result(timeout)``."""
        return self.submit(source, method, fresh=fresh, **params).result(
            timeout
        )

    def batch(
        self,
        sources: Iterable[int],
        method: str = "powerpush",
        **params: Any,
    ) -> list[ServedResult]:
        """Submit many queries and wait for all, in source order."""
        futures = [self.submit(s, method, **params) for s in sources]
        return [f.result() for f in futures]

    # -- write path ------------------------------------------------------
    def apply_updates(self, updates: Iterable[tuple[str, int, int]]) -> int:
        """Broadcast edge updates to every shard as a versioned barrier.

        Takes the exclusive side of the dispatcher lock (new submits
        queue behind it; per-worker FIFOs order the barrier after all
        in-flight requests), sends the same batch to every live
        worker, and waits — in timed slices, so a crashing worker is
        noticed, not hung on — until each survivor acks with its new
        graph version.  The versions must agree (every worker applied
        the same update stream to the same base); the agreed version
        is returned and all post-barrier answers carry it.
        """
        if not self._config.dynamic:
            raise ParameterError(
                "this dispatcher serves a static graph; construct it "
                "with dynamic=True (or from a DynamicGraph) to accept "
                "updates"
            )
        batch = [
            (str(op), int(u), int(v)) for op, u, v in updates
        ]
        with self._rwlock.write():
            with self._mutex:
                if self._closed:
                    raise RuntimeError("dispatcher is closed")
                live = [s for s in self._states.values() if s.alive]
                if not live:
                    raise RuntimeError(
                        "no live workers to broadcast updates to"
                    )
                barrier_id = self._next_id
                self._next_id += 1
                barrier = _Barrier(
                    expected={s.worker_id for s in live}
                )
                self._barriers[barrier_id] = barrier
            for state in live:
                state.requests.put(("update", barrier_id, batch))
            deadline = time.monotonic() + self._update_timeout
            try:
                while not barrier.done.wait(_POLL):
                    if time.monotonic() > deadline:
                        raise TimeoutError(
                            f"update barrier {barrier_id} timed out "
                            f"after {self._update_timeout:.0f}s; acks "
                            f"from {sorted(barrier.versions)} of "
                            f"{sorted(barrier.expected)}"
                        )
            finally:
                with self._mutex:
                    self._barriers.pop(barrier_id, None)
            if barrier.errors:
                raise barrier.errors[0]
            versions = set(barrier.versions.values())
            if len(versions) > 1:
                raise RuntimeError(
                    "shards diverged after update barrier: versions "
                    f"{sorted(barrier.versions.items())}"
                )
            if not versions:
                # Every expected worker died mid-barrier.  Returning
                # the stale version here (the old behaviour) would
                # report success for an update nobody applied.
                raise RuntimeError(
                    "every worker died during the update barrier; "
                    "the batch was not applied"
                )
            agreed = versions.pop()
            if self._mirror is not None:
                # Mirror the agreed batch and make it durable *before*
                # the ack: still under the write lock, so no reader
                # observes the new version until the WAL record is
                # fsynced (fsync-before-ack).
                self._mirror.apply_updates(batch)
                if self._mirror.version != agreed:
                    raise RuntimeError(
                        "durable mirror diverged from the worker "
                        f"barrier: mirror at {self._mirror.version}, "
                        f"workers agreed on {agreed}"
                    )
                assert self._durability is not None
                self._durability.flush()
            with self._mutex:
                self._version = agreed
                # Journal for respawn catch-up: a worker respawned
                # after this barrier replays the log and must land on
                # exactly this version (one version bump per update).
                self._update_log.extend(batch)
                return self._version

    # -- collector / failure handling ------------------------------------
    def _collect(self, state: _WorkerState) -> None:
        """Drain one worker's responses; detect and handle its death."""
        while True:
            try:
                message = state.responses.get(timeout=_POLL)
            except queue.Empty:
                with self._mutex:
                    if self._stopping:
                        return
                    alive = state.alive and state.process.is_alive()
                if not alive:
                    self._on_worker_death(state)
                    return
                continue
            except (EOFError, OSError):
                # Queue torn down under us.  Either close() raced the
                # read (stopping — just exit) or the worker died hard
                # enough to wreck its feeder; route through the death
                # path so supervision still notices.
                with self._mutex:
                    if self._stopping:
                        return
                if not state.process.is_alive():
                    self._on_worker_death(state)
                return
            kind = message[0]
            if kind == "result":
                _, req_id, served = message
                with self._mutex:
                    pending = state.pending.pop(req_id, None)
                    state.breaker.record_success()
                if pending is not None:
                    self._resolve(pending.future, served)
            elif kind == "error":
                _, req_id, exc = message
                with self._mutex:
                    pending = state.pending.pop(req_id, None)
                if pending is not None:
                    self._fail(pending.future, exc)
            elif kind == "heartbeat":
                _, version, cache_size, ts = message
                with self._mutex:
                    state.last_heartbeat = float(ts)
                    state.reported_version = int(version)
                    state.reported_cache_size = int(cache_size)
            elif kind == "updated":
                _, barrier_id, version = message
                with self._mutex:
                    barrier = self._barriers.get(barrier_id)
                    if barrier is not None:
                        barrier.versions[state.worker_id] = int(version)
                        barrier.settle_if_complete()
            elif kind == "update-error":
                _, barrier_id, exc = message
                with self._mutex:
                    barrier = self._barriers.get(barrier_id)
                    if barrier is not None:
                        barrier.errors.append(exc)
                        barrier.failed.add(state.worker_id)
                        barrier.settle_if_complete()
            elif kind == "stats":
                _, req_id, stats = message
                with self._mutex:
                    pending = state.pending.pop(req_id, None)
                if pending is not None:
                    self._resolve(pending.future, stats)

    @staticmethod
    def _resolve(future: Future, value: Any) -> None:
        if future.set_running_or_notify_cancel():
            future.set_result(value)

    @staticmethod
    def _fail(future: Future, exc: BaseException) -> None:
        try:
            if future.set_running_or_notify_cancel():
                future.set_exception(exc)
        except Exception:  # repro: allow[lock-discipline] -- best-effort error delivery: a racing cancel already settled the future, the client has its outcome
            pass

    def _on_worker_death(self, state: _WorkerState) -> None:
        """A shard died: shrink the ring, retry its pending requests.

        Every request the dead worker had not answered is resubmitted
        through the bounded retry path (routing no longer includes the
        dead worker); with no survivors the futures fail instead of
        hanging.  Barriers waiting on the dead worker stop expecting
        its ack and settle on the survivors.  When the restart policy
        has budget left, a respawn is scheduled after the jittered
        backoff; otherwise the worker is removed permanently and the
        dispatcher reports degraded capacity.
        """
        now = time.monotonic()
        with self._mutex:
            if not state.alive:
                return
            state.alive = False
            state.died_at = now
            state.breaker.trip(now)
            self._worker_failures += 1
            self._ring.remove(state.worker_id)
            orphaned = list(state.pending.values())
            state.pending.clear()
            for barrier in self._barriers.values():
                barrier.expected.discard(state.worker_id)
                barrier.settle_if_complete()
            stopping = self._stopping
            if not stopping:
                attempt = state.restarts
                if self._restart_policy.allows(attempt):
                    delay = self._restart_policy.delay(
                        state.worker_id, attempt
                    )
                    self._respawn_due[state.worker_id] = now + delay
                else:
                    state.removed = True
                    self._permanent_failures += 1
        if stopping:
            for request in orphaned:
                self._fail(
                    request.future,
                    RuntimeError("dispatcher closed during dispatch"),
                )
            return
        self._supervisor_wake.set()
        for request in orphaned:
            if request.source < 0:
                # Control probes (stats) are not reroutable queries;
                # their caller tolerates a shard dropping out.
                self._fail(
                    request.future,
                    WorkerUnavailableError(
                        f"worker {state.worker_id} died before "
                        f"answering a {request.method} probe"
                    ),
                )
                continue
            self._retry_request(
                request, reason=f"worker {state.worker_id} died"
            )

    # -- bounded retries --------------------------------------------------
    def _retry_request(self, request: _PendingRequest, *, reason: str) -> None:
        """Decide one read's fate after a shard failed it: retry or fail.

        Bounded by the retry policy's attempt budget, paced by its
        jittered backoff, and deadline-aware: a retry whose backoff
        lands past the request deadline fails now instead of burning a
        shard on an answer nobody will read.  Safe to retry at all
        because answers are pure functions of ``(seed, source)``.
        """
        now = time.monotonic()
        attempt = request.attempts
        request.attempts += 1
        delay = self._retry_policy.next_delay(
            attempt, deadline=request.deadline, now=now
        )
        if delay is None:
            if request.deadline is not None and now >= request.deadline:
                self._fail(
                    request.future,
                    DeadlineExceeded(
                        f"source {request.source}: deadline passed "
                        f"after {attempt} attempt(s) ({reason})"
                    ),
                )
            else:
                self._fail(
                    request.future,
                    WorkerUnavailableError(
                        f"source {request.source}: retry budget "
                        f"exhausted after {attempt} attempt(s) ({reason})"
                    ),
                )
            return
        if delay <= 0.0:
            self._resubmit(request)
            return
        with self._mutex:
            self._retry_due.append((now + delay, request))
        self._supervisor_wake.set()

    def _resubmit(self, request: _PendingRequest) -> None:
        """Re-enqueue one retried request on a (breaker-aware) shard."""
        with self._mutex:
            if self._closed:
                self._fail(
                    request.future, RuntimeError("dispatcher is closed")
                )
                return
            try:
                target = self._route_healthy(request.source)
            except RuntimeError:
                target = None
            if target is not None:
                req_id = self._next_id
                self._next_id += 1
                self._rerouted += 1
                self._retries += 1
                request.enqueued_at = time.monotonic()
                target.pending[req_id] = request
            respawn_pending = bool(self._respawn_due) or bool(
                self._respawning
            )
        if target is None:
            if respawn_pending:
                # Nobody is live right now but a respawn is in
                # flight; spend another bounded attempt waiting for
                # it rather than failing a recoverable read.
                self._retry_request(
                    request, reason="no live workers (respawn pending)"
                )
            else:
                self._fail(
                    request.future,
                    WorkerUnavailableError(
                        f"no live workers remain for source "
                        f"{request.source}"
                    ),
                )
            return
        target.requests.put(
            (
                "query",
                req_id,
                request.source,
                request.method,
                dict(request.params),
                request.fresh,
                request.deadline,
            )
        )

    # -- supervision ------------------------------------------------------
    def _supervise(self) -> None:
        """Supervisor loop: respawns, paced retries, timeout scans.

        Every wait is timed (``_POLL``) and every piece of work it
        finds is bounded, so the loop adds no hang risk of its own;
        it exits as soon as ``close()`` flips ``_stopping``.
        """
        while True:
            self._supervisor_wake.wait(_POLL)
            self._supervisor_wake.clear()
            now = time.monotonic()
            with self._mutex:
                if self._stopping:
                    return
                due_respawns = [
                    worker_id
                    for worker_id, due in self._respawn_due.items()
                    if due <= now
                ]
                for worker_id in due_respawns:
                    del self._respawn_due[worker_id]
                due_retries = [
                    request for due, request in self._retry_due if due <= now
                ]
                self._retry_due = [
                    (due, request)
                    for due, request in self._retry_due
                    if due > now
                ]
                timed_out: list[tuple[_WorkerState, _PendingRequest]] = []
                if self._request_timeout is not None:
                    for state in self._states.values():
                        if not state.alive:
                            continue
                        expired = [
                            req_id
                            for req_id, request in state.pending.items()
                            if request.source >= 0
                            and request.enqueued_at > 0.0
                            and now - request.enqueued_at
                            > self._request_timeout
                        ]
                        for req_id in expired:
                            timed_out.append(
                                (state, state.pending.pop(req_id))
                            )
                            state.breaker.record_failure(now)
                            self._request_timeouts += 1
            for state, request in timed_out:
                self._retry_request(
                    request,
                    reason=(
                        f"no reply from worker {state.worker_id} within "
                        f"{self._request_timeout}s"
                    ),
                )
            for request in due_retries:
                self._resubmit(request)
            for worker_id in due_respawns:
                self._respawn(worker_id)

    def _respawn(self, worker_id: int) -> None:
        """Bring one dead shard back over the same shared image.

        Spawn a fresh process (zero-copy re-attach of the segment),
        replay the update journal so its engine reaches the current
        graph version, verify the acked version under the write lock
        (serialising with concurrent ``apply_updates``), and only then
        restore the worker's arc on the ring.  Any failure along the
        way consumes another unit of restart budget.
        """
        with self._mutex:
            if self._stopping or self._closed:
                return
            old = self._states.get(worker_id)
            if old is None or old.alive or old.removed:
                return
            generation = old.generation + 1
            restarts = old.restarts + 1
        try:
            state = self._spawn_state(
                worker_id, generation=generation, restarts=restarts
            )
        except Exception:  # repro: allow[lock-discipline] -- spawn failure is a restart-budget event, not a crash: the policy decides whether to try again
            self._respawn_failed(worker_id, restarts)
            return
        with self._mutex:
            self._respawning[worker_id] = state
        try:
            acked = self._catch_up(state, acked=0)
            if acked is None:
                self._teardown_state(state)
                self._respawn_failed(worker_id, restarts)
                return
            # Final delta under the write lock: no apply_updates can
            # run concurrently, so after this the journal cannot grow
            # before the worker is back on the ring.
            with self._rwlock.write():
                acked = self._catch_up(state, acked=acked)
                with self._mutex:
                    expected = self._version - self._config.initial_version
                    stopping = self._stopping
                if stopping or acked is None or acked != expected:
                    self._teardown_state(state)
                    if not stopping:
                        self._respawn_failed(worker_id, restarts)
                    return
                now = time.monotonic()
                with self._mutex:
                    self._states[worker_id] = state
                    state.alive = True
                    # The catch-up ack doubles as the first health
                    # report (the worker's startup heartbeat was
                    # drained during replay): fresh cache, journal
                    # version, seen just now.
                    state.last_heartbeat = now
                    state.reported_version = (
                        self._config.initial_version + acked
                    )
                    state.reported_cache_size = 0
                    self._ring.add(worker_id)
                    self._respawns += 1
                    recovery = now - old.died_at
                    self._recovery_last = recovery
                    self._recovery_max = max(self._recovery_max, recovery)
                self._start_collector(state)
        finally:
            with self._mutex:
                self._respawning.pop(worker_id, None)

    def _catch_up(
        self, state: _WorkerState, *, acked: int
    ) -> int | None:
        """Replay journal entries past ``acked`` to a respawning worker.

        The worker is not on the ring and its collector is not running
        yet, so its response queue is read directly here (timed waits
        only).  Returns the journal length the worker has confirmed —
        its graph version minus the boot version (one bump per update;
        the boot version is nonzero after durable recovery) — or
        ``None`` on death, timeout, error, or dispatcher shutdown.
        """
        base = self._config.initial_version
        with self._mutex:
            batch = list(self._update_log[acked:])
            target = len(self._update_log)
            barrier_id = self._next_id
            self._next_id += 1
        if not batch:
            return acked
        state.requests.put(("update", barrier_id, batch))
        deadline = time.monotonic() + self._update_timeout
        while True:
            with self._mutex:
                if self._stopping:
                    return None
            try:
                message = state.responses.get(timeout=_POLL)
            except queue.Empty:
                if not state.process.is_alive():
                    return None
                if time.monotonic() > deadline:
                    return None
                continue
            except (EOFError, OSError):
                return None
            kind = message[0]
            if kind == "updated" and message[1] == barrier_id:
                version = int(message[2])
                return (version - base) if version - base == target else None
            if kind == "update-error":
                return None
            # Heartbeats (and any stale replies) are ignored here;
            # the collector takes over once the worker is registered.

    def _respawn_failed(self, worker_id: int, restarts: int) -> None:
        """A respawn attempt died; spend budget on another or give up."""
        now = time.monotonic()
        with self._mutex:
            old = self._states.get(worker_id)
            if old is None or self._stopping:
                return
            old.restarts = restarts
            if self._restart_policy.allows(restarts):
                delay = self._restart_policy.delay(worker_id, restarts)
                self._respawn_due[worker_id] = now + delay
            else:
                old.removed = True
                self._permanent_failures += 1
        self._supervisor_wake.set()

    def _teardown_state(self, state: _WorkerState) -> None:
        """Dispose of a worker that never made it onto the ring."""
        try:
            state.requests.put(("stop",))
        except (ValueError, OSError):
            pass
        state.process.join(timeout=1.0)
        if state.process.is_alive():
            state.process.kill()
            state.process.join(timeout=1.0)
        for q in (state.requests, state.responses):
            try:
                q.cancel_join_thread()
                q.close()
            except (ValueError, OSError):
                pass

    # -- stats -----------------------------------------------------------
    def stats(self, timeout: float = 10.0) -> dict[str, Any]:
        """Aggregate dispatcher + per-worker serving statistics.

        Shape-compatible with :meth:`EngineServer.stats` where it
        matters (top-level ``"cache"`` with ``hit_rate``,
        ``"scheduler"`` with ``batching_factor``), with per-worker
        breakdowns under ``"per_worker"`` and dispatcher counters
        (``rerouted``, ``worker_failures``) alongside.
        """
        futures: dict[int, Future] = {}
        probes: list[tuple[_WorkerState, int]] = []
        with self._rwlock.read():
            with self._mutex:
                if self._closed:
                    raise RuntimeError("dispatcher is closed")
                for state in self._states.values():
                    if not state.alive:
                        continue
                    req_id = self._next_id
                    self._next_id += 1
                    future: Future = Future()
                    state.pending[req_id] = _PendingRequest(
                        future=future,
                        source=-1,
                        method="stats",
                        params={},
                        fresh=False,
                    )
                    futures[state.worker_id] = future
                    probes.append((state, req_id))
            for state, req_id in probes:
                state.requests.put(("stats", req_id))
        per_worker: dict[str, dict[str, Any]] = {}
        # One shared monotonic deadline across all workers (mirroring
        # the shutdown join loop in close()): the probes were broadcast
        # concurrently, so the waits must share one budget — giving
        # each worker the full timeout in sequence would stretch the
        # worst case to N x timeout when shards hang.
        deadline = time.monotonic() + timeout
        for worker_id, future in futures.items():
            try:
                per_worker[str(worker_id)] = future.result(
                    timeout=max(0.0, deadline - time.monotonic())
                )
            except Exception:  # repro: allow[lock-discipline] -- a shard that died or timed out mid-stats simply drops out of the aggregate; its failure is already counted in worker_failures
                continue
        cache_totals = {
            "hits": 0.0,
            "misses": 0.0,
            "insertions": 0.0,
            "evictions": 0.0,
            "expirations": 0.0,
            "stale_drops": 0.0,
            "invalidations": 0.0,
        }
        sched_totals = {
            "submitted": 0.0,
            "answered": 0.0,
            "cache_answered": 0.0,
            "batches": 0.0,
            "engine_calls": 0.0,
            "engine_sources": 0.0,
            "failures": 0.0,
            "expired": 0.0,
            "max_group": 0.0,
        }
        for stats in per_worker.values():
            for name in cache_totals:
                cache_totals[name] += float(stats["cache"].get(name, 0.0))
            sched = stats["scheduler"]
            for name in sched_totals:
                if name == "max_group":
                    sched_totals[name] = max(
                        sched_totals[name], float(sched.get(name, 0.0))
                    )
                else:
                    sched_totals[name] += float(sched.get(name, 0.0))
        lookups = cache_totals["hits"] + cache_totals["misses"]
        cache: dict[str, float] = dict(cache_totals)
        cache["hit_rate"] = cache_totals["hits"] / lookups if lookups else 0.0
        scheduler: dict[str, float] = dict(sched_totals)
        scheduler["batching_factor"] = (
            sched_totals["answered"] / sched_totals["engine_calls"]
            if sched_totals["engine_calls"]
            else 0.0
        )
        now = time.monotonic()
        with self._mutex:
            supervisor = {
                "respawns": self._respawns,
                "permanent_failures": self._permanent_failures,
                "degraded_capacity": self._permanent_failures > 0,
                "recovery_s": {
                    "last": self._recovery_last,
                    "max": self._recovery_max,
                },
                "retries": self._retries,
                "request_timeouts": self._request_timeouts,
                "breaker_skips": self._breaker_skips,
                "max_restarts": self._restart_policy.max_restarts,
                "restarts": {
                    str(state.worker_id): state.restarts
                    for state in self._states.values()
                },
                "removed": sorted(
                    state.worker_id
                    for state in self._states.values()
                    if state.removed
                ),
                "breakers": {
                    str(state.worker_id): state.breaker.snapshot()
                    for state in self._states.values()
                    if state.alive
                },
            }
            heartbeats = {
                str(state.worker_id): {
                    "age_s": (
                        now - state.last_heartbeat
                        if state.last_heartbeat > 0.0
                        else None
                    ),
                    "graph_version": state.reported_version,
                    "cache_size": state.reported_cache_size,
                }
                for state in self._states.values()
                if state.alive
            }
            return {
                "requests": self._submitted,
                "graph_version": self._version,
                "workers": len(per_worker),
                "configured_workers": self._workers,
                "rerouted": self._rerouted,
                "worker_failures": self._worker_failures,
                "cache": cache,
                "scheduler": scheduler,
                "per_worker": per_worker,
                "supervisor": supervisor,
                "heartbeats": heartbeats,
            }

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Stop every shard and release the shared segment (idempotent).

        Stop messages first, then a bounded join, escalating to
        ``terminate`` (workers convert SIGTERM to a clean exit that
        closes their mapping) and finally ``kill``.  Leftover futures
        fail rather than hang.  The segment is closed here in the
        parent and — when the dispatcher exported it — unlinked
        exactly once, so a completed run leaves nothing in
        ``/dev/shm``.
        """
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            self._stopping = True
            states = list(self._states.values())
            respawning = list(self._respawning.values())
            self._respawning.clear()
            self._respawn_due.clear()
            waiting_retries = [request for _, request in self._retry_due]
            self._retry_due = []
            for barrier in self._barriers.values():
                barrier.errors.append(
                    RuntimeError("dispatcher closed during update barrier")
                )
                barrier.done.set()
            self._barriers.clear()
        self._supervisor_wake.set()
        if (
            self._supervisor is not None
            and self._supervisor is not threading.current_thread()
        ):
            self._supervisor.join(timeout=5.0)
            self._supervisor = None
        for request in waiting_retries:
            self._fail(
                request.future, RuntimeError("dispatcher is closed")
            )
        for state in respawning:
            self._teardown_state(state)
        for state in states:
            if state.alive:
                try:
                    state.requests.put(("stop",))
                except (ValueError, OSError):
                    # Queue already torn down by a dead worker's
                    # feeder — nothing left to stop.
                    pass
        deadline = time.monotonic() + 5.0
        for state in states:
            state.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if state.process.is_alive():
                state.process.terminate()
                state.process.join(timeout=1.0)
            if state.process.is_alive():
                state.process.kill()
                state.process.join(timeout=1.0)
        for state in states:
            if state.collector is not None:
                state.collector.join(timeout=2.0)
                state.collector = None
        with self._mutex:
            leftovers = [
                request
                for state in states
                for request in state.pending.values()
            ]
            for state in states:
                state.pending.clear()
                state.alive = False
        for request in leftovers:
            self._fail(
                request.future, RuntimeError("dispatcher is closed")
            )
        for state in states:
            for q in (state.requests, state.responses):
                try:
                    q.cancel_join_thread()
                    q.close()
                except (ValueError, OSError):
                    pass
        if self._own_image:
            self._image.cleanup()
        else:
            self._image.close()
        if self._durability is not None:
            self._durability.close()

    def __enter__(self) -> "ShardedDispatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedDispatcher(workers={self.num_workers}, "
            f"version={self.graph_version}, "
            f"segment={self._image.segment_name!r})"
        )
