"""Multi-process sharded serving over one shared-memory graph image.

The thread-based :class:`~repro.serving.server.EngineServer` coalesces
and caches well, but every solve outside the compiled-kernel regions
still contends on the GIL, so an 8-thread server gets one core's worth
of numpy.  This module is the process-parallel tier the AccPPR harness
(PAPERS.md; SNIPPETS.md §3) motivates — a ``multiprocessing`` pool
driving per-source solves over one pre-built CSR — with the serving
semantics of PR 3 kept intact *per worker*:

* the graph's hot arrays live once in a
  :class:`~repro.serving.shm.SharedGraphImage`; every worker process
  maps the same physical pages zero-copy and runs a full
  :class:`EngineServer` (micro-batch scheduler + version-stamped
  :class:`~repro.serving.cache.ResultCache`) over them;
* the :class:`ShardedDispatcher` in the parent routes each request by
  **consistent hashing on the source id**, so repeat queries for a hot
  source always land on the same worker — its cache keeps hitting and
  its micro-batches stay coherent — and removing a crashed worker
  re-routes only that worker's arc of the ring;
* ``apply_updates`` broadcasts as a **versioned barrier** under the
  dispatcher's writer lock: every worker applies the same batch to its
  copy-on-write :class:`~repro.graph.dynamic.DynamicGraph` overlay
  (the shared base stays immutable) and acks with its new version;
  the dispatcher verifies the versions agree before letting reads
  resume, so no request is ever answered from a pre-update vector.

Because every seeded answer is a pure function of ``(seed, source)``
(:func:`repro.api.engine.per_source_rng`), *where* a request runs
cannot change *what* it answers: process-mode responses are
byte-identical to the single-process path, which is exactly how the
tests check this module.

Request/response framing is plain picklable tuples over per-worker
``multiprocessing`` queues; per-worker FIFO ordering is what makes the
update barrier correct (queries enqueued before the barrier are
answered at the old version, the barrier message follows them, and new
queries wait on the writer lock).
"""

from __future__ import annotations

import bisect
import hashlib
import os
import queue
import signal
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from multiprocessing import get_all_start_methods, get_context
from types import FrameType
from typing import Any, Iterable, Mapping

from repro.api.engine import PPREngine
from repro.errors import (
    DeadlineExceeded,
    NodeNotFoundError,
    ParameterError,
)
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import DynamicGraph
from repro.serving.cache import resolve_request
from repro.serving.locks import RWLock
from repro.serving.scheduler import ServedResult
from repro.serving.server import EngineServer
from repro.serving.shm import SharedGraphHandle, SharedGraphImage

__all__ = ["ShardedDispatcher", "WorkerConfig"]

#: Collector/barrier poll quantum (seconds): every blocking wait in the
#: dispatcher is a timed wait at this granularity so worker death is
#: noticed promptly and no future can hang forever.
_POLL = 0.05

#: Default per-worker vnode count on the hash ring.  Enough that each
#: worker's share of sources stays within a few percent of uniform and
#: a removed worker's arc scatters evenly over the survivors.
_DEFAULT_VNODES = 48


@dataclass(frozen=True)
class WorkerConfig:
    """Picklable per-worker :class:`EngineServer` construction recipe."""

    alpha: float = 0.2
    seed: int = 0
    dead_end_policy: str = "redirect-to-source"
    dynamic: bool = False
    cache_capacity: int = 4096
    cache_ttl: float | None = None
    window: float = 0.002
    max_batch: int = 64
    backend: str | None = None


def _raise_exit(signum: int, frame: FrameType | None) -> None:
    """SIGTERM -> SystemExit so worker ``finally`` blocks run."""
    raise SystemExit(0)


def _worker_main(
    worker_id: int,
    handle: SharedGraphHandle,
    config: WorkerConfig,
    requests: Any,
    responses: Any,
) -> None:
    """One shard: attach the shared image, serve until told to stop.

    Runs in a child process (module-level so the spawn start method can
    pickle it).  Messages in, messages out:

    * ``("query", req_id, source, method, params, fresh, deadline)`` ->
      ``("result", req_id, ServedResult)`` or
      ``("error", req_id, exc)`` — ``deadline`` is a
      ``time.monotonic()`` timestamp, meaningful across the process
      boundary because ``CLOCK_MONOTONIC`` is system-wide
    * ``("update", barrier_id, updates)`` ->
      ``("updated", barrier_id, version)`` or
      ``("update-error", barrier_id, exc)``
    * ``("stats", req_id)`` -> ``("stats", req_id, dict)``
    * ``("stop",)`` -> clean exit.

    The request queue is drained in bursts: everything immediately
    available is submitted to the local server *before* blocking on
    results, so the per-worker micro-batch window sees real company
    and coalesced windows still become one multi-source block solve.
    A worker never owns the shared segment — teardown only closes its
    own mapping, so a SIGKILLed worker cannot leak ``/dev/shm``
    entries (satisfying the ``shm-discipline`` contract from the
    child side).
    """
    signal.signal(signal.SIGTERM, _raise_exit)
    image = SharedGraphImage.attach(handle)
    try:
        engine = PPREngine.from_shared_graph(
            image,
            dynamic=config.dynamic,
            alpha=config.alpha,
            seed=config.seed,
            dead_end_policy=config.dead_end_policy,
            backend=config.backend,
        )
        server = EngineServer(
            engine,
            cache_capacity=config.cache_capacity,
            cache_ttl=config.cache_ttl,
            window=config.window,
            max_batch=config.max_batch,
        )
        with server:
            _serve_messages(
                worker_id, server, requests, responses, config.max_batch
            )
    finally:
        image.close()


def _serve_messages(
    worker_id: int,
    server: EngineServer,
    requests: Any,
    responses: Any,
    max_burst: int,
) -> None:
    """The worker's receive loop; returns on ``("stop",)`` / orphaning."""
    while True:
        try:
            message = requests.get(timeout=1.0)
        except queue.Empty:
            if os.getppid() == 1:
                # Re-parented to init: the dispatcher died without a
                # stop message; exit rather than serve nobody.
                return
            continue
        burst = [message]
        while len(burst) < max_burst:
            try:
                burst.append(requests.get_nowait())
            except queue.Empty:
                break
        pending: list[tuple[int, Future]] = []
        for message in burst:
            kind = message[0]
            if kind == "query":
                _, req_id, source, method, params, fresh, deadline = message
                try:
                    future = server.submit(
                        source,
                        method,
                        fresh=fresh,
                        deadline=deadline,
                        **params,
                    )
                except Exception as exc:  # noqa: BLE001 - forwarded
                    responses.put(("error", req_id, exc))
                    continue
                pending.append((req_id, future))
                continue
            # Control messages order against queries: everything
            # submitted before them must resolve first.
            _flush(worker_id, pending, responses)
            pending = []
            if kind == "stop":
                return
            if kind == "update":
                _, barrier_id, updates = message
                try:
                    version = server.apply_updates(updates)
                except Exception as exc:  # noqa: BLE001 - forwarded
                    responses.put(("update-error", barrier_id, exc))
                else:
                    responses.put(("updated", barrier_id, version))
            elif kind == "stats":
                responses.put(("stats", message[1], server.stats()))
        _flush(worker_id, pending, responses)


def _flush(
    worker_id: int,
    pending: list[tuple[int, Future]],
    responses: Any,
) -> None:
    """Resolve a burst of submitted futures back to the dispatcher."""
    for req_id, future in pending:
        try:
            served: ServedResult = future.result()
        except Exception as exc:  # noqa: BLE001 - forwarded
            responses.put(("error", req_id, exc))
        else:
            responses.put(
                ("result", req_id, replace(served, worker=worker_id))
            )


def _ring_point(token: str) -> int:
    """Stable 64-bit position on the hash ring for ``token``."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class _HashRing:
    """Consistent hashing of source ids onto worker ids.

    Each worker contributes ``vnodes`` points; a source routes to the
    first point clockwise from its own hash.  Removing a worker moves
    only the sources on its arcs — every other source keeps its worker
    (and therefore its warm cache).
    """

    def __init__(self, vnodes: int) -> None:
        self._vnodes = vnodes
        self._points: list[int] = []
        self._owners: dict[int, int] = {}

    def add(self, worker_id: int) -> None:
        for v in range(self._vnodes):
            point = _ring_point(f"{worker_id}:{v}")
            # blake2b collisions across our tiny point sets are
            # vanishingly unlikely; first owner keeps the point.
            if point in self._owners:
                continue
            bisect.insort(self._points, point)
            self._owners[point] = worker_id

    def remove(self, worker_id: int) -> None:
        dropped = [
            point
            for point, owner in self._owners.items()
            if owner == worker_id
        ]
        for point in dropped:
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]

    def route(self, source: int) -> int:
        if not self._points:
            raise RuntimeError("no live workers")
        position = _ring_point(f"s:{source}")
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def __len__(self) -> int:
        return len(set(self._owners.values()))


@dataclass
class _PendingRequest:
    """What the dispatcher must remember to reroute or fail a request."""

    future: Future
    source: int
    method: str
    params: dict[str, Any]
    fresh: bool
    deadline: float | None = None


@dataclass
class _WorkerState:
    """Parent-side bookkeeping for one shard."""

    worker_id: int
    process: Any
    requests: Any
    responses: Any
    collector: threading.Thread | None = None
    pending: dict[int, _PendingRequest] = field(default_factory=dict)
    alive: bool = True


@dataclass
class _Barrier:
    """One in-flight ``apply_updates`` broadcast."""

    expected: set[int]
    versions: dict[int, int] = field(default_factory=dict)
    errors: list[BaseException] = field(default_factory=list)
    done: threading.Event = field(default_factory=threading.Event)

    def settle_if_complete(self) -> None:
        if len(self.versions) + len(self.errors) >= len(self.expected):
            self.done.set()


class ShardedDispatcher:
    """Route queries to N worker processes sharing one graph image.

    Parameters
    ----------
    graph_or_image:
        A :class:`DiGraph` / :class:`DynamicGraph` to export into
        shared memory (the dispatcher owns the segment and unlinks it
        on close), or an already-exported
        :class:`~repro.serving.shm.SharedGraphImage` whose lifecycle
        the caller keeps.  A :class:`DynamicGraph` is snapshotted —
        its current logical graph becomes the shared base — and
        implies ``dynamic=True``.
    workers:
        Number of shard processes (>= 1).
    dynamic:
        Whether workers wrap the shared base in a per-process
        :class:`DynamicGraph` overlay so :meth:`apply_updates` works.
        Default: inferred from the graph argument.
    alpha, seed, dead_end_policy, backend:
        Per-worker engine construction (identical in every shard —
        answers must not depend on placement).
    cache_capacity, cache_ttl, window, max_batch:
        Per-worker :class:`EngineServer` knobs.
    start_method:
        ``multiprocessing`` start method; default ``"fork"`` where
        available (inherits the warmed import state), else the
        platform default.  Workers attach the image by handle either
        way, so spawn works identically, just slower to start.
    vnodes:
        Hash-ring points per worker.
    update_timeout:
        Seconds to wait for every worker's barrier ack in
        :meth:`apply_updates` before declaring the cluster wedged.

    The dispatcher mirrors :class:`EngineServer`'s surface —
    ``submit``/``query``/``batch``/``apply_updates``/``stats``/
    ``close`` and the context manager — so the loadtest harness and
    the CLI switch between thread mode and process mode with one flag.
    """

    def __init__(
        self,
        graph_or_image: DiGraph | DynamicGraph | SharedGraphImage,
        *,
        workers: int = 2,
        dynamic: bool | None = None,
        alpha: float = 0.2,
        seed: int = 0,
        dead_end_policy: str = "redirect-to-source",
        backend: str | None = None,
        cache_capacity: int = 4096,
        cache_ttl: float | None = None,
        window: float = 0.002,
        max_batch: int = 64,
        start_method: str | None = None,
        vnodes: int = _DEFAULT_VNODES,
        update_timeout: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if vnodes < 1:
            raise ParameterError(f"vnodes must be >= 1, got {vnodes}")
        if isinstance(graph_or_image, SharedGraphImage):
            self._image = graph_or_image
            self._own_image = False
            if dynamic is None:
                dynamic = False
        elif isinstance(graph_or_image, (DiGraph, DynamicGraph)):
            base = (
                graph_or_image.snapshot()
                if isinstance(graph_or_image, DynamicGraph)
                else graph_or_image
            )
            if dynamic is None:
                dynamic = isinstance(graph_or_image, DynamicGraph)
            self._image = SharedGraphImage.export_graph(base)
            self._own_image = True
        else:
            raise ParameterError(
                "ShardedDispatcher needs a DiGraph, DynamicGraph, or "
                f"SharedGraphImage; got {type(graph_or_image).__name__}"
            )
        self._config = WorkerConfig(
            alpha=alpha,
            seed=seed,
            dead_end_policy=dead_end_policy,
            dynamic=bool(dynamic),
            cache_capacity=cache_capacity,
            cache_ttl=cache_ttl,
            window=window,
            max_batch=max_batch,
            backend=backend,
        )
        self._update_timeout = float(update_timeout)
        self._rwlock = RWLock()
        #: guards ring/worker-state/counter mutations (never held while
        #: blocking; collector threads take it too)
        self._mutex = threading.Lock()
        self._ring = _HashRing(vnodes)
        self._states: dict[int, _WorkerState] = {}
        self._next_id = 0
        self._closed = False
        self._stopping = False
        self._version = 0
        self._submitted = 0
        self._rerouted = 0
        self._worker_failures = 0
        self._barriers: dict[int, _Barrier] = {}
        if start_method is None and "fork" in get_all_start_methods():
            start_method = "fork"
        context = get_context(start_method)
        try:
            for worker_id in range(workers):
                req_q = context.Queue()
                resp_q = context.Queue()
                process = context.Process(
                    target=_worker_main,
                    args=(
                        worker_id,
                        self._image.handle,
                        self._config,
                        req_q,
                        resp_q,
                    ),
                    name=f"repro-shard-{worker_id}",
                    daemon=True,
                )
                process.start()
                state = _WorkerState(
                    worker_id=worker_id,
                    process=process,
                    requests=req_q,
                    responses=resp_q,
                )
                self._states[worker_id] = state
                self._ring.add(worker_id)
            for state in self._states.values():
                thread = threading.Thread(
                    target=self._collect,
                    args=(state,),
                    name=f"repro-shard-collector-{state.worker_id}",
                    daemon=True,
                )
                state.collector = thread
                thread.start()
        except BaseException:
            self.close()
            raise

    # -- properties ------------------------------------------------------
    @property
    def num_workers(self) -> int:
        """Live worker count (shrinks when shards crash)."""
        with self._mutex:
            return sum(1 for s in self._states.values() if s.alive)

    @property
    def graph_version(self) -> int:
        """Version confirmed by the last update barrier (0 initially)."""
        with self._mutex:
            return self._version

    @property
    def closed(self) -> bool:
        with self._mutex:
            return self._closed

    @property
    def image(self) -> SharedGraphImage:
        """The shared graph image the shards serve from."""
        return self._image

    @property
    def dynamic(self) -> bool:
        """Whether the shards accept :meth:`apply_updates`."""
        return self._config.dynamic

    def route(self, source: int) -> int:
        """The worker id ``source`` currently routes to (for tests)."""
        with self._mutex:
            return self._ring.route(int(source))

    # -- read path -------------------------------------------------------
    def submit(
        self,
        source: int,
        method: str = "powerpush",
        *,
        fresh: bool = False,
        deadline: float | None = None,
        **params: Any,
    ) -> Future:
        """Enqueue one query on its shard; future of :class:`ServedResult`.

        Validates the method and parameter schema here, so typos raise
        at the call site, not inside a worker.  Parameters must be
        picklable scalars — live objects (``rng``, trace sinks,
        pre-built indexes) cannot cross the process boundary and are
        rejected up front.  ``deadline`` (a ``time.monotonic()``
        timestamp) rides along to the shard, whose local scheduler
        fails expired requests fast instead of solving them.
        """
        source = int(source)
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceeded(
                f"deadline passed before submit of source {source}"
            )
        canonical, merged, key = resolve_request(source, method, params)
        if key is None and params:
            raise ParameterError(
                "sharded serving requires scalar parameters; live "
                "objects (rng, trace, indexes) cannot cross the "
                "process boundary"
            )
        num_nodes = self._image.handle.num_nodes
        if not 0 <= source < num_nodes:
            raise NodeNotFoundError(
                f"source {source} is outside [0, {num_nodes})"
            )
        with self._rwlock.read():
            with self._mutex:
                if self._closed:
                    raise RuntimeError("dispatcher is closed")
                worker_id = self._ring.route(source)
                state = self._states[worker_id]
                req_id = self._next_id
                self._next_id += 1
                self._submitted += 1
                pending = _PendingRequest(
                    future=Future(),
                    source=source,
                    method=canonical,
                    params=dict(params),
                    fresh=fresh,
                    deadline=deadline,
                )
                state.pending[req_id] = pending
            # Enqueued under the read lock: a writer that acquires
            # after us sees this request ahead of its barrier message
            # in the worker's FIFO, so it is answered pre-update.
            state.requests.put(
                (
                    "query",
                    req_id,
                    source,
                    canonical,
                    dict(params),
                    fresh,
                    deadline,
                )
            )
        return pending.future

    def query(
        self,
        source: int,
        method: str = "powerpush",
        *,
        fresh: bool = False,
        timeout: float | None = None,
        **params: Any,
    ) -> ServedResult:
        """Blocking convenience: ``submit(...).result(timeout)``."""
        return self.submit(source, method, fresh=fresh, **params).result(
            timeout
        )

    def batch(
        self,
        sources: Iterable[int],
        method: str = "powerpush",
        **params: Any,
    ) -> list[ServedResult]:
        """Submit many queries and wait for all, in source order."""
        futures = [self.submit(s, method, **params) for s in sources]
        return [f.result() for f in futures]

    # -- write path ------------------------------------------------------
    def apply_updates(self, updates: Iterable[tuple[str, int, int]]) -> int:
        """Broadcast edge updates to every shard as a versioned barrier.

        Takes the exclusive side of the dispatcher lock (new submits
        queue behind it; per-worker FIFOs order the barrier after all
        in-flight requests), sends the same batch to every live
        worker, and waits — in timed slices, so a crashing worker is
        noticed, not hung on — until each survivor acks with its new
        graph version.  The versions must agree (every worker applied
        the same update stream to the same base); the agreed version
        is returned and all post-barrier answers carry it.
        """
        if not self._config.dynamic:
            raise ParameterError(
                "this dispatcher serves a static graph; construct it "
                "with dynamic=True (or from a DynamicGraph) to accept "
                "updates"
            )
        batch = [
            (str(op), int(u), int(v)) for op, u, v in updates
        ]
        with self._rwlock.write():
            with self._mutex:
                if self._closed:
                    raise RuntimeError("dispatcher is closed")
                live = [s for s in self._states.values() if s.alive]
                if not live:
                    raise RuntimeError(
                        "no live workers to broadcast updates to"
                    )
                barrier_id = self._next_id
                self._next_id += 1
                barrier = _Barrier(
                    expected={s.worker_id for s in live}
                )
                self._barriers[barrier_id] = barrier
            for state in live:
                state.requests.put(("update", barrier_id, batch))
            deadline = time.monotonic() + self._update_timeout
            try:
                while not barrier.done.wait(_POLL):
                    if time.monotonic() > deadline:
                        raise TimeoutError(
                            f"update barrier {barrier_id} timed out "
                            f"after {self._update_timeout:.0f}s; acks "
                            f"from {sorted(barrier.versions)} of "
                            f"{sorted(barrier.expected)}"
                        )
            finally:
                with self._mutex:
                    self._barriers.pop(barrier_id, None)
            if barrier.errors:
                raise barrier.errors[0]
            versions = set(barrier.versions.values())
            if len(versions) > 1:
                raise RuntimeError(
                    "shards diverged after update barrier: versions "
                    f"{sorted(barrier.versions.items())}"
                )
            with self._mutex:
                self._version = versions.pop() if versions else self._version
                return self._version

    # -- collector / failure handling ------------------------------------
    def _collect(self, state: _WorkerState) -> None:
        """Drain one worker's responses; detect and handle its death."""
        while True:
            try:
                message = state.responses.get(timeout=_POLL)
            except queue.Empty:
                with self._mutex:
                    if self._stopping:
                        return
                    alive = state.alive and state.process.is_alive()
                if not alive:
                    self._on_worker_death(state)
                    return
                continue
            except (EOFError, OSError):
                # Queue torn down under us (close() raced the read).
                return
            kind = message[0]
            if kind == "result":
                _, req_id, served = message
                with self._mutex:
                    pending = state.pending.pop(req_id, None)
                if pending is not None:
                    self._resolve(pending.future, served)
            elif kind == "error":
                _, req_id, exc = message
                with self._mutex:
                    pending = state.pending.pop(req_id, None)
                if pending is not None:
                    self._fail(pending.future, exc)
            elif kind == "updated":
                _, barrier_id, version = message
                with self._mutex:
                    barrier = self._barriers.get(barrier_id)
                    if barrier is not None:
                        barrier.versions[state.worker_id] = int(version)
                        barrier.settle_if_complete()
            elif kind == "update-error":
                _, barrier_id, exc = message
                with self._mutex:
                    barrier = self._barriers.get(barrier_id)
                    if barrier is not None:
                        barrier.errors.append(exc)
                        barrier.settle_if_complete()
            elif kind == "stats":
                _, req_id, stats = message
                with self._mutex:
                    pending = state.pending.pop(req_id, None)
                if pending is not None:
                    self._resolve(pending.future, stats)

    @staticmethod
    def _resolve(future: Future, value: Any) -> None:
        if future.set_running_or_notify_cancel():
            future.set_result(value)

    @staticmethod
    def _fail(future: Future, exc: BaseException) -> None:
        try:
            if future.set_running_or_notify_cancel():
                future.set_exception(exc)
        except Exception:  # repro: allow[lock-discipline] -- best-effort error delivery: a racing cancel already settled the future, the client has its outcome
            pass

    def _on_worker_death(self, state: _WorkerState) -> None:
        """A shard died: shrink the ring, reroute its pending requests.

        Every request the dead worker had not answered is resubmitted
        through the normal routing path (which no longer includes the
        dead worker); with no survivors the futures fail instead of
        hanging.  Barriers waiting on the dead worker stop expecting
        its ack.
        """
        with self._mutex:
            if not state.alive:
                return
            state.alive = False
            self._worker_failures += 1
            self._ring.remove(state.worker_id)
            orphaned = list(state.pending.values())
            state.pending.clear()
            for barrier in self._barriers.values():
                barrier.expected.discard(state.worker_id)
                barrier.settle_if_complete()
            stopping = self._stopping
        if stopping:
            for request in orphaned:
                self._fail(
                    request.future,
                    RuntimeError("dispatcher closed during dispatch"),
                )
            return
        for request in orphaned:
            self._reroute(request, died=state.worker_id)

    def _reroute(self, request: _PendingRequest, *, died: int) -> None:
        """Resubmit one orphaned request to a surviving shard."""
        with self._mutex:
            try:
                worker_id = self._ring.route(request.source)
            except RuntimeError:
                worker_id = None
            if worker_id is None:
                self._fail(
                    request.future,
                    RuntimeError(
                        f"worker {died} died and no live workers remain "
                        f"for source {request.source}"
                    ),
                )
                return
            target = self._states[worker_id]
            req_id = self._next_id
            self._next_id += 1
            self._rerouted += 1
            target.pending[req_id] = request
        target.requests.put(
            (
                "query",
                req_id,
                request.source,
                request.method,
                dict(request.params),
                request.fresh,
                request.deadline,
            )
        )

    # -- stats -----------------------------------------------------------
    def stats(self, timeout: float = 10.0) -> dict[str, Any]:
        """Aggregate dispatcher + per-worker serving statistics.

        Shape-compatible with :meth:`EngineServer.stats` where it
        matters (top-level ``"cache"`` with ``hit_rate``,
        ``"scheduler"`` with ``batching_factor``), with per-worker
        breakdowns under ``"per_worker"`` and dispatcher counters
        (``rerouted``, ``worker_failures``) alongside.
        """
        futures: dict[int, Future] = {}
        probes: list[tuple[_WorkerState, int]] = []
        with self._rwlock.read():
            with self._mutex:
                if self._closed:
                    raise RuntimeError("dispatcher is closed")
                for state in self._states.values():
                    if not state.alive:
                        continue
                    req_id = self._next_id
                    self._next_id += 1
                    future: Future = Future()
                    state.pending[req_id] = _PendingRequest(
                        future=future,
                        source=-1,
                        method="stats",
                        params={},
                        fresh=False,
                    )
                    futures[state.worker_id] = future
                    probes.append((state, req_id))
            for state, req_id in probes:
                state.requests.put(("stats", req_id))
        per_worker: dict[str, dict[str, Any]] = {}
        # One shared monotonic deadline across all workers (mirroring
        # the shutdown join loop in close()): the probes were broadcast
        # concurrently, so the waits must share one budget — giving
        # each worker the full timeout in sequence would stretch the
        # worst case to N x timeout when shards hang.
        deadline = time.monotonic() + timeout
        for worker_id, future in futures.items():
            try:
                per_worker[str(worker_id)] = future.result(
                    timeout=max(0.0, deadline - time.monotonic())
                )
            except Exception:  # repro: allow[lock-discipline] -- a shard that died or timed out mid-stats simply drops out of the aggregate; its failure is already counted in worker_failures
                continue
        cache_totals = {
            "hits": 0.0,
            "misses": 0.0,
            "insertions": 0.0,
            "evictions": 0.0,
            "expirations": 0.0,
            "stale_drops": 0.0,
            "invalidations": 0.0,
        }
        sched_totals = {
            "submitted": 0.0,
            "answered": 0.0,
            "cache_answered": 0.0,
            "batches": 0.0,
            "engine_calls": 0.0,
            "engine_sources": 0.0,
            "failures": 0.0,
            "expired": 0.0,
            "max_group": 0.0,
        }
        for stats in per_worker.values():
            for name in cache_totals:
                cache_totals[name] += float(stats["cache"].get(name, 0.0))
            sched = stats["scheduler"]
            for name in sched_totals:
                if name == "max_group":
                    sched_totals[name] = max(
                        sched_totals[name], float(sched.get(name, 0.0))
                    )
                else:
                    sched_totals[name] += float(sched.get(name, 0.0))
        lookups = cache_totals["hits"] + cache_totals["misses"]
        cache: dict[str, float] = dict(cache_totals)
        cache["hit_rate"] = cache_totals["hits"] / lookups if lookups else 0.0
        scheduler: dict[str, float] = dict(sched_totals)
        scheduler["batching_factor"] = (
            sched_totals["answered"] / sched_totals["engine_calls"]
            if sched_totals["engine_calls"]
            else 0.0
        )
        with self._mutex:
            return {
                "requests": self._submitted,
                "graph_version": self._version,
                "workers": len(per_worker),
                "rerouted": self._rerouted,
                "worker_failures": self._worker_failures,
                "cache": cache,
                "scheduler": scheduler,
                "per_worker": per_worker,
            }

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Stop every shard and release the shared segment (idempotent).

        Stop messages first, then a bounded join, escalating to
        ``terminate`` (workers convert SIGTERM to a clean exit that
        closes their mapping) and finally ``kill``.  Leftover futures
        fail rather than hang.  The segment is closed here in the
        parent and — when the dispatcher exported it — unlinked
        exactly once, so a completed run leaves nothing in
        ``/dev/shm``.
        """
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            self._stopping = True
            states = list(self._states.values())
            for barrier in self._barriers.values():
                barrier.errors.append(
                    RuntimeError("dispatcher closed during update barrier")
                )
                barrier.done.set()
            self._barriers.clear()
        for state in states:
            if state.alive:
                try:
                    state.requests.put(("stop",))
                except (ValueError, OSError):
                    # Queue already torn down by a dead worker's
                    # feeder — nothing left to stop.
                    pass
        deadline = time.monotonic() + 5.0
        for state in states:
            state.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if state.process.is_alive():
                state.process.terminate()
                state.process.join(timeout=1.0)
            if state.process.is_alive():
                state.process.kill()
                state.process.join(timeout=1.0)
        for state in states:
            if state.collector is not None:
                state.collector.join(timeout=2.0)
                state.collector = None
        with self._mutex:
            leftovers = [
                request
                for state in states
                for request in state.pending.values()
            ]
            for state in states:
                state.pending.clear()
                state.alive = False
        for request in leftovers:
            self._fail(
                request.future, RuntimeError("dispatcher is closed")
            )
        for state in states:
            for q in (state.requests, state.responses):
                try:
                    q.cancel_join_thread()
                    q.close()
                except (ValueError, OSError):
                    pass
        if self._own_image:
            self._image.cleanup()
        else:
            self._image.close()

    def __enter__(self) -> "ShardedDispatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedDispatcher(workers={self.num_workers}, "
            f"version={self.graph_version}, "
            f"segment={self._image.segment_name!r})"
        )
