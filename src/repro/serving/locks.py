"""Readers-writer lock: many concurrent queries, exclusive graph updates.

The serving layer's consistency story rests on one primitive: every
read of engine state (cache lookup, version stamp, ``batch_query``)
happens under a *shared* lock, and every graph transition
(``apply_updates`` + cache invalidation) under an *exclusive* one.  A
result computed under the read lock is therefore always computed at a
graph version that is current for the whole computation — the stale
reads the stress tests hunt for are impossible by construction.

The lock prefers writers: a waiting writer blocks *new* readers, so a
steady query stream cannot starve updates (readers already inside
finish first, then the writer runs).  It is not re-entrant — neither
the scheduler nor the server nests acquisitions.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["RWLock"]


class RWLock:
    """Writer-preference readers-writer lock.

    Any number of readers may hold the lock at once; a writer holds it
    exclusively.  Use the :meth:`read` / :meth:`write` context managers
    rather than the raw acquire/release pairs.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- shared (read) side ---------------------------------------------
    def acquire_read(self) -> None:
        with self._cond:
            # Writer preference: queue behind waiting writers too, not
            # just the active one.
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._cond:
            if self._active_readers <= 0:
                raise RuntimeError("release_read without a matching acquire")
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        """Hold the lock in shared mode for the ``with`` body."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- exclusive (write) side -----------------------------------------
    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without a matching acquire")
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Hold the lock exclusively for the ``with`` body."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RWLock(readers={self._active_readers}, "
            f"writer={self._writer_active}, "
            f"waiting_writers={self._writers_waiting})"
        )
