"""Micro-batching query scheduler: concurrent submits, coalesced solves.

"Accelerating Personalized PageRank Vector Computation" (Chen et al.)
motivates amortising work across many simultaneous sources; this
module is the serving-side half of that idea.  Callers from any thread
``submit(source, method, params)`` and get a
:class:`concurrent.futures.Future` back; a single worker thread
collects everything that arrives within a **micro-batch window**,
groups compatible requests — same canonical method, same merged
parameters — and answers each group with one
:meth:`~repro.api.engine.PPREngine.batch_query` call.  A coalesced
window is therefore a genuinely multi-source solve, not a loop: the
engine hands PowerPush windows to the block kernel layer (one
adjacency scan amortised over every source in the window, answers
element-wise identical to per-source solves) and Monte-Carlo windows
to the vectorised multi-source walk simulation, while all windows
share index injection and parameter resolution.

Identical requests coalesce harder: two submits for the same
``(source, method, params)`` resolve from a *single* solve (opt out
per request with ``fresh=True``, e.g. to draw independent unseeded
Monte-Carlo samples).  Because seeded batches derive per-source RNG
streams (:func:`~repro.api.engine.per_source_rng`), coalescing never
changes an answer: every future resolves to exactly what a sequential
``engine.query`` would have returned.

The scheduler alone does not serialise graph updates against queries —
:class:`~repro.serving.server.EngineServer` composes it with a
readers-writer lock and the versioned result cache for the full
consistency story.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Sequence

from repro.api.engine import PPREngine
from repro.core.result import PPRResult
from repro.core.validation import check_source
from repro.errors import DeadlineExceeded, ParameterError
from repro.serving.cache import resolve_request

__all__ = ["QueryScheduler", "SchedulerStats", "ServedResult"]

#: An executor answers one coalesced group: ``(method, params, sources,
#: cache_keys) -> (results, graph_version, cache_hits)`` where
#: ``cache_hits[i]`` says position ``i`` was served from a result cache
#: rather than solved (the scheduler reports provenance accordingly and
#: only counts an engine call when something was actually solved).
Executor = Callable[
    [str, dict, list, list],
    tuple[Sequence[PPRResult], int, Sequence[bool]],
]


@dataclass(frozen=True)
class ServedResult:
    """One answered request, annotated with its serving provenance.

    Attributes
    ----------
    result:
        The :class:`~repro.core.result.PPRResult` itself.
    version:
        Graph version the answer was computed at.  Under
        :class:`~repro.serving.server.EngineServer` this version was
        current for the whole computation (reads exclude writers).
    cache_hit:
        Whether the answer came from the result cache.
    batch_size:
        How many requests the dispatch that produced this answer
        coalesced (1 for cache hits).
    worker:
        Shard id of the worker process that served the answer under a
        :class:`~repro.serving.sharded.ShardedDispatcher`; ``None``
        when served in-process (thread mode).
    deadline:
        The ``time.monotonic()`` deadline the request carried, or
        ``None`` for best-effort requests.  Carried through so callers
        (and the async front door) can see the remaining budget an
        answer was produced under.
    degraded:
        Whether admission control served this answer from the degraded
        tier (a cheaper registered solver or a version-valid cached
        lower-precision answer) instead of the requested fidelity.
    """

    result: PPRResult
    version: int
    cache_hit: bool
    batch_size: int
    worker: int | None = None
    deadline: float | None = None
    degraded: bool = False


@dataclass
class SchedulerStats:
    """Counters over one scheduler lifetime (guarded by the queue mutex).

    ``answered`` counts requests resolved by engine solves;
    ``cache_answered`` counts requests the executor served from a
    result cache at dispatch time — kept apart so ``batching_factor``
    measures genuine coalescing, not memoisation.
    """

    submitted: int = 0
    answered: int = 0
    cache_answered: int = 0
    batches: int = 0
    engine_calls: int = 0
    engine_sources: int = 0
    failures: int = 0
    #: requests whose deadline passed while queued — failed fast with
    #: :class:`~repro.errors.DeadlineExceeded`, never given a batch slot
    expired: int = 0
    max_group: int = 0

    @property
    def batching_factor(self) -> float:
        """Solved requests per engine call (1.0 = no coalescing win)."""
        return self.answered / self.engine_calls if self.engine_calls else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "submitted": self.submitted,
            "answered": self.answered,
            "cache_answered": self.cache_answered,
            "batches": self.batches,
            "engine_calls": self.engine_calls,
            "engine_sources": self.engine_sources,
            "failures": self.failures,
            "expired": self.expired,
            "max_group": self.max_group,
            "batching_factor": self.batching_factor,
        }


@dataclass
class _Pending:
    source: int
    method: str  # canonical method name
    params: dict[str, Any]  # merged (alias-implied folded in)
    group_key: Any  # hashable grouping token
    cache_key: tuple | None
    fresh: bool
    deadline: float | None = None  # time.monotonic() expiry, if any
    future: Future = field(default_factory=Future)


def _freeze(params: Mapping[str, Any]) -> tuple | None:
    """Hashable view of ``params`` for grouping, or ``None`` if not."""
    try:
        frozen = tuple(sorted(params.items()))
        hash(frozen)  # unhashable values (rng, trace, ...) opt out
        return frozen
    except TypeError:
        return None


class QueryScheduler:
    """Coalesce concurrent query submissions into batched engine calls.

    Parameters
    ----------
    engine:
        The engine the default executor answers through.
    window:
        Micro-batch window in seconds: after the first request of a
        round arrives, the worker waits this long for company before
        dispatching.  ``0`` dispatches whatever is queued immediately.
    max_batch:
        Cap on requests taken per dispatch round (back-pressure bound).
    executor:
        Override how a coalesced group is answered — the
        :class:`~repro.serving.server.EngineServer` injects a
        lock-and-cache-aware one.  Default: ``engine.batch_query`` and
        the engine's current graph version.
    start:
        ``False`` leaves the worker thread unstarted; tests then drive
        dispatch deterministically with :meth:`run_pending`.
    """

    def __init__(
        self,
        engine: PPREngine,
        *,
        window: float = 0.002,
        max_batch: int = 64,
        executor: Executor | None = None,
        start: bool = True,
    ) -> None:
        if window < 0:
            raise ParameterError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise ParameterError(f"max_batch must be >= 1, got {max_batch}")
        self._engine = engine
        self._window = float(window)
        self._max_batch = int(max_batch)
        self._execute: Executor = executor or self._default_executor
        self._queue: list[_Pending] = []
        self._cond = threading.Condition()
        self._closed = False
        self.stats = SchedulerStats()
        self._worker: threading.Thread | None = None
        if start:
            self._worker = threading.Thread(
                target=self._run, name="repro-query-scheduler", daemon=True
            )
            self._worker.start()

    # -- submission ------------------------------------------------------
    def submit(
        self,
        source: int,
        method: str = "powerpush",
        params: Mapping[str, Any] | None = None,
        *,
        fresh: bool = False,
        deadline: float | None = None,
        cache_key: tuple | None = None,
        _resolved: tuple[str, dict[str, Any]] | None = None,
    ) -> Future:
        """Enqueue one query; returns a future of :class:`ServedResult`.

        Validates the method name, the parameter schema, and the source
        id synchronously, so typos raise here instead of poisoning a
        worker batch.  ``fresh=True`` exempts the request from
        same-request coalescing (and, under the server, from the result
        cache).  ``deadline`` is a ``time.monotonic()`` timestamp: a
        request already expired raises
        :class:`~repro.errors.DeadlineExceeded` here, and one that
        expires while queued is failed at dispatch time instead of
        occupying a batch slot.  ``_resolved=(canonical, merged)`` is
        the server's fast path: it already resolved the request once
        via :func:`~repro.serving.cache.resolve_request` (together
        with ``cache_key``), so resolution and validation are not
        repeated.
        """
        source = int(source)
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceeded(
                f"deadline passed before submit of source {source}"
            )
        if _resolved is not None:
            canonical, merged = _resolved
        else:
            canonical, merged, key = resolve_request(
                source, method, dict(params or {})
            )
            cache_key = None if fresh else key
        check_source(self._engine.graph, source)
        frozen = _freeze(merged)
        # Unhashable parameters (rng, trace, prebuilt index) cannot be
        # compared for compatibility; such requests dispatch alone.
        group_key = (canonical, frozen) if frozen is not None else object()
        pending = _Pending(
            source=source,
            method=canonical,
            params=merged,
            group_key=group_key,
            cache_key=cache_key,
            fresh=fresh,
            deadline=deadline,
        )
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._queue.append(pending)
            self.stats.submitted += 1
            self._cond.notify_all()
        return pending.future

    # -- dispatch --------------------------------------------------------
    def _default_executor(
        self,
        method: str,
        params: dict,
        sources: list,
        keys: list,
    ) -> tuple[Sequence[PPRResult], int, Sequence[bool]]:
        version = self._engine.graph_version
        results = self._engine.batch_query(sources, method, **params)
        return results, version, [False] * len(sources)

    @staticmethod
    def _resolve(future: Future, served: ServedResult) -> None:
        """Deliver a result unless the client already cancelled."""
        if future.set_running_or_notify_cancel():
            future.set_result(served)

    @staticmethod
    def _stamp(served: ServedResult, pending: _Pending) -> ServedResult:
        """Carry the request's deadline onto its (possibly shared) answer."""
        if pending.deadline is None:
            return served
        return replace(served, deadline=pending.deadline)

    @staticmethod
    def _fail(future: Future, exc: BaseException) -> None:
        """Deliver an exception; tolerate cancelled/already-settled."""
        try:
            if future.set_running_or_notify_cancel():
                future.set_exception(exc)
        except Exception:  # repro: allow[lock-discipline] -- best-effort error delivery: the future was already settled by a racing cancel, so the client has its outcome and there is nothing left to notify
            pass

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if self._closed and not self._queue:
                    return
                # Let the micro-batch fill; latency cost is bounded by
                # the window, throughput win is the coalescing below.
                # The wait is a Condition.wait with a deadline, not a
                # sleep: it wakes immediately when close() is called or
                # when the queue fills to a whole dispatch round (more
                # waiting could add no company, only cap backlogged
                # throughput at max_batch/window), and it never
                # outlives the earliest per-request deadline in the
                # queue — an expiring request is dispatched (and failed
                # fast) at its deadline, not a full window later.
                if self._window > 0.0:
                    round_start = time.monotonic()
                    while (
                        not self._closed
                        and len(self._queue) < self._max_batch
                    ):
                        # Re-read the window each pass: set_window()
                        # notifies, and a shrunken window applies to
                        # the round already in flight.
                        wake = round_start + self._window
                        for pending in self._queue:
                            if pending.deadline is not None:
                                wake = min(wake, pending.deadline)
                        remaining = wake - time.monotonic()
                        if remaining <= 0.0:
                            break
                        self._cond.wait(remaining)
                batch = self._queue[: self._max_batch]
                del self._queue[: len(batch)]
            if batch:
                try:
                    self._dispatch(batch)
                except Exception as exc:  # noqa: BLE001 - worker must live
                    # A dispatch bug (or a client-cancelled future) must
                    # never kill the worker thread: fail the batch's
                    # futures and keep serving.
                    with self._cond:
                        self.stats.failures += len(batch)
                    for pending in batch:
                        self._fail(pending.future, exc)

    def run_pending(self) -> int:
        """Dispatch everything currently queued, in the calling thread.

        Deterministic alternative to the worker thread (``start=False``)
        used by tests; returns the number of requests answered.
        """
        if self._worker is not None:
            raise RuntimeError(
                "run_pending is for schedulers constructed with start=False"
            )
        answered = 0
        while True:
            with self._cond:
                batch = self._queue[: self._max_batch]
                del self._queue[: len(batch)]
            if not batch:
                return answered
            self._dispatch(batch)
            answered += len(batch)

    def _dispatch(self, batch: list[_Pending]) -> None:
        # Expired requests fail fast with a typed error instead of
        # occupying a batch slot: they cannot be answered in time, so
        # solving them would only delay every live groupmate.
        now = time.monotonic()
        live: list[_Pending] = []
        expired: list[_Pending] = []
        for pending in batch:
            if pending.deadline is not None and now >= pending.deadline:
                expired.append(pending)
            else:
                live.append(pending)
        if expired:
            with self._cond:
                self.stats.expired += len(expired)
            for pending in expired:
                self._fail(
                    pending.future,
                    DeadlineExceeded(
                        f"deadline passed while queued "
                        f"(source {pending.source})"
                    ),
                )
        if not live:
            return
        with self._cond:
            self.stats.batches += 1
        groups: dict[Any, list[_Pending]] = {}
        for pending in live:
            groups.setdefault(pending.group_key, []).append(pending)
        for group in groups.values():  # dict preserves insertion order
            self._dispatch_group(group)

    def _dispatch_group(self, group: list[_Pending]) -> None:
        """Answer one compatible group with a single ``batch_query``."""
        # One engine slot per distinct request; identical requests
        # (same cache key, not fresh) share a slot and hence a solve.
        slots: list[list[_Pending]] = []
        slot_of: dict[tuple, int] = {}
        for pending in group:
            if pending.cache_key is not None and not pending.fresh:
                index = slot_of.get(pending.cache_key)
                if index is not None:
                    slots[index].append(pending)
                    continue
                slot_of[pending.cache_key] = len(slots)
            slots.append([pending])
        sources = [slot[0].source for slot in slots]
        keys = [slot[0].cache_key for slot in slots]
        first = group[0]
        try:
            results, version, hits = self._execute(
                first.method, dict(first.params), sources, keys
            )
        except Exception:
            self._retry_individually(slots)
            return
        solved = sum(
            len(slot) for slot, hit in zip(slots, hits) if not hit
        )
        cached = len(group) - solved
        with self._cond:
            if solved:
                self.stats.engine_calls += 1
                self.stats.engine_sources += sum(
                    1 for hit in hits if not hit
                )
                self.stats.answered += solved
                self.stats.max_group = max(self.stats.max_group, solved)
            self.stats.cache_answered += cached
        for slot, result, hit in zip(slots, results, hits):
            served = ServedResult(
                result=result,
                version=version,
                cache_hit=bool(hit),
                batch_size=1 if hit else solved,
            )
            for pending in slot:
                self._resolve(pending.future, self._stamp(served, pending))

    def _retry_individually(  # repro: allow[retry-discipline] -- one-shot de-batching fallback: each slot is re-executed exactly once, in-process, with errors forwarded to the future
        self, slots: list[list[_Pending]]
    ) -> None:
        """Batch failed: answer each slot alone so one bad request
        cannot poison its groupmates."""
        for slot in slots:
            head = slot[0]
            try:
                results, version, hits = self._execute(
                    head.method,
                    dict(head.params),
                    [head.source],
                    [head.cache_key],
                )
            except Exception as exc:  # noqa: BLE001 - forwarded to caller
                with self._cond:
                    self.stats.failures += len(slot)
                for pending in slot:
                    self._fail(pending.future, exc)
                continue
            hit = bool(hits[0])
            with self._cond:
                if hit:
                    self.stats.cache_answered += len(slot)
                else:
                    self.stats.engine_calls += 1
                    self.stats.engine_sources += 1
                    self.stats.answered += len(slot)
            served = ServedResult(
                result=results[0],
                version=version,
                cache_hit=hit,
                batch_size=1 if hit else len(slot),
            )
            for pending in slot:
                self._resolve(pending.future, self._stamp(served, pending))

    # -- adaptive window -------------------------------------------------
    @property
    def window(self) -> float:
        """Current micro-batch window in seconds."""
        with self._cond:
            return self._window

    def set_window(self, window: float) -> None:
        """Resize the micro-batch window (thread-safe, immediate: a
        worker mid-wait re-reads the window when notified, so a shrink
        applies to the round already in flight).

        The async front door calls this with a window derived from the
        observed arrival rate (EWMA), so the batch fill adapts to load
        instead of charging a fixed latency tax at low traffic.
        """
        if window < 0:
            raise ParameterError(f"window must be >= 0, got {window}")
        with self._cond:
            self._window = float(window)
            self._cond.notify_all()

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Drain the queue, stop the worker, reject new submissions."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        if self._worker is not None:
            self._worker.join()
            self._worker = None
        else:
            # Manual mode: drain synchronously so no future is left
            # forever pending.
            while True:
                with self._cond:
                    batch = self._queue[: self._max_batch]
                    del self._queue[: len(batch)]
                if not batch:
                    break
                self._dispatch(batch)

    def __enter__(self) -> "QueryScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (submissions are rejected)."""
        with self._cond:
            return self._closed

    @property
    def pending(self) -> int:
        """Requests queued but not yet taken by a dispatch round."""
        with self._cond:
            return len(self._queue)
