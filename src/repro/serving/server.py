"""The serving front door: engine + scheduler + cache + update path.

:class:`EngineServer` is what "serving heavy traffic" means in this
repo: a thread-safe facade over one :class:`~repro.api.engine.PPREngine`
that composes the three serving mechanisms into one consistency story:

* **Reads** (``submit``/``query``) run under the *shared* side of a
  :class:`~repro.serving.locks.RWLock`: cache lookup, version stamp,
  and the batched solve all happen at one graph version.
* **Writes** (``apply_updates``) take the *exclusive* side: the graph
  version bumps and the result cache is invalidated while no read is
  in flight, so no request is ever answered from a pre-update vector —
  the same guarantee the engine gives its index caches, extended to
  memoised results.
* **Batching**: cache misses flow into the
  :class:`~repro.serving.scheduler.QueryScheduler`'s micro-batch
  window and are answered by coalesced ``batch_query`` calls — for
  PowerPush windows that is one multi-source block solve (see
  :func:`repro.core.powerpush.power_push_block`), not a per-source
  loop; the executor re-checks the cache at dispatch time, so a burst
  of identical requests costs one solve even when it straddles
  batches.

Every future resolves to a
:class:`~repro.serving.scheduler.ServedResult` carrying the answer,
the graph version it was computed at, whether it was a cache hit, and
how many requests its dispatch coalesced.

>>> server = EngineServer(graph, alpha=0.2, seed=7)
>>> with server:
...     futures = [server.submit(s) for s in sources]   # any thread
...     answers = [f.result() for f in futures]
...     server.apply_updates([("+", 0, 9)])             # exclusive
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.api.engine import PPREngine
from repro.core.result import PPRResult
from repro.errors import DeadlineExceeded, ParameterError
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import DynamicGraph
from repro.serving.cache import ResultCache, resolve_request
from repro.serving.locks import RWLock
from repro.serving.scheduler import QueryScheduler, ServedResult

__all__ = ["EngineServer"]


class EngineServer:
    """Thread-safe batched/cached query serving over one engine.

    Parameters
    ----------
    graph_or_engine:
        A :class:`~repro.api.engine.PPREngine` to serve, or a
        :class:`DiGraph` / :class:`DynamicGraph` to build one from
        (with ``alpha``/``seed`` forwarded).
    alpha, seed:
        Engine construction parameters (ignored when an engine is
        passed).
    cache_capacity, cache_ttl:
        Result-cache sizing; ``cache_capacity=0`` disables result
        caching entirely (every request goes through the scheduler).
    window, max_batch:
        Micro-batch window (seconds) and per-dispatch request cap for
        the scheduler.
    start:
        ``False`` defers the scheduler worker; tests drive dispatch
        deterministically via ``server.scheduler.run_pending()``.
    wal_dir, wal_fsync, checkpoint_every:
        ``wal_dir`` makes the server durable: updates are logged to a
        write-ahead log (fsynced before the version ack unless
        ``wal_fsync=False``) with checkpoints every
        ``checkpoint_every`` updates, and a restart on the same
        directory recovers the pre-crash graph — ``graph_or_engine``
        then only seeds a virgin directory and is ignored when durable
        state exists.  See :mod:`repro.durability`.
    durability:
        A pre-opened
        :class:`~repro.durability.manager.DurabilityManager` (its
        attached graph must be ``graph_or_engine``); mutually
        exclusive with ``wal_dir``.  Used by the crash harness to
        thread fault hooks through the stack.
    """

    def __init__(
        self,
        graph_or_engine: PPREngine | DiGraph | DynamicGraph,
        *,
        alpha: float = 0.2,
        seed: int = 0,
        cache_capacity: int = 4096,
        cache_ttl: float | None = None,
        window: float = 0.002,
        max_batch: int = 64,
        start: bool = True,
        wal_dir: str | Path | None = None,
        wal_fsync: bool = True,
        checkpoint_every: int | None = None,
        durability: Any | None = None,
    ) -> None:
        if wal_dir is not None and durability is not None:
            raise ParameterError(
                "pass wal_dir (server opens the durable state) or "
                "durability (a pre-opened DurabilityManager), not both"
            )
        self._durability = None
        if wal_dir is not None:
            if isinstance(graph_or_engine, PPREngine):
                raise ParameterError(
                    "wal_dir needs a graph, not a pre-built engine: the "
                    "server must be free to discard the passed graph in "
                    "favour of recovered durable state"
                )
            from repro.durability.manager import open_durable_graph

            base = (
                graph_or_engine
                if isinstance(graph_or_engine, DynamicGraph)
                else DynamicGraph(graph_or_engine)
            )
            self._durability, graph_or_engine = open_durable_graph(
                wal_dir,
                base,
                fsync=wal_fsync,
                checkpoint_every=checkpoint_every,
            )
        elif durability is not None:
            if durability.graph is None or durability.graph is not graph_or_engine:
                raise ParameterError(
                    "the DurabilityManager's attached graph must be the "
                    "graph passed to EngineServer"
                )
            self._durability = durability
        if isinstance(graph_or_engine, PPREngine):
            self._engine = graph_or_engine
        elif isinstance(graph_or_engine, (DiGraph, DynamicGraph)):
            self._engine = PPREngine(graph_or_engine, alpha=alpha, seed=seed)
        else:
            raise ParameterError(
                "EngineServer needs a PPREngine, DiGraph, or DynamicGraph; "
                f"got {type(graph_or_engine).__name__}"
            )
        if self._durability is not None:
            self._engine.attach_durability(self._durability)
        if cache_capacity < 0:
            raise ParameterError(
                f"cache_capacity must be >= 0, got {cache_capacity}"
            )
        self._rwlock = RWLock()
        self._cache = (
            ResultCache(cache_capacity, ttl=cache_ttl)
            if cache_capacity
            else None
        )
        self._scheduler = QueryScheduler(
            self._engine,
            window=window,
            max_batch=max_batch,
            executor=self._execute_group,
            start=start,
        )
        self._submitted = 0
        self._cache_hits_at_submit = 0
        #: guards the two submit-path counters (read-modify-write from
        #: many client threads; everything else has its own mutex)
        self._counter_mutex = threading.Lock()

    # -- components ------------------------------------------------------
    @property
    def engine(self) -> PPREngine:
        return self._engine

    @property
    def cache(self) -> ResultCache | None:
        return self._cache

    @property
    def scheduler(self) -> QueryScheduler:
        return self._scheduler

    @property
    def durability(self) -> Any | None:
        """The attached DurabilityManager, or None when volatile."""
        return self._durability

    @property
    def graph_version(self) -> int:
        return self._engine.graph_version

    @property
    def cache_size(self) -> int:
        """Live result-cache entries (0 when caching is disabled).

        A freshly constructed server always starts at 0 — the sharded
        supervisor's heartbeats report this so a respawned worker can
        be *asserted* to have dropped its predecessor's memoised
        results rather than trusted to.
        """
        return len(self._cache) if self._cache is not None else 0

    # -- read path -------------------------------------------------------
    def submit(
        self,
        source: int,
        method: str = "powerpush",
        *,
        fresh: bool = False,
        deadline: float | None = None,
        **params: Any,
    ) -> Future:
        """Enqueue one query; returns a future of :class:`ServedResult`.

        The fast path answers from the result cache without touching
        the scheduler; misses join the current micro-batch.  Identical
        concurrent requests share one solve (keyed on the canonical
        request signature — this holds even with the cache disabled).
        ``fresh=True`` bypasses cache and coalescing for this request —
        use it to draw independent samples from unseeded stochastic
        methods, whose answers are otherwise memoised by request
        signature.  ``deadline`` is a ``time.monotonic()`` timestamp:
        an already-expired request raises
        :class:`~repro.errors.DeadlineExceeded` here, and one that
        expires in the micro-batch queue is failed fast at dispatch
        instead of occupying a batch slot.
        """
        if self._scheduler.closed:
            # Checked up front so a cache hit cannot mask use-after-
            # close (misses would raise from the scheduler anyway).
            raise RuntimeError("server is closed")
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceeded(
                f"deadline passed before submit of source {source}"
            )
        canonical, merged, key = resolve_request(
            source,
            method,
            params,
            # Folding the engine defaults in makes canonicalisation
            # complete: spelling out alpha=engine.alpha keys (and
            # coalesces) identically to omitting it.
            defaults={
                "alpha": self._engine.alpha,
                "dead_end_policy": self._engine.dead_end_policy,
            },
        )
        if fresh:
            key = None
        with self._counter_mutex:
            self._submitted += 1
        if key is not None and self._cache is not None:
            with self._rwlock.read():
                version = self._engine.graph_version
                # Miss counting is deferred to the dispatch-time
                # re-check so each request contributes one outcome.
                hit = self._cache.get(key, version, count_miss=False)
                if hit is not None:
                    with self._counter_mutex:
                        self._cache_hits_at_submit += 1
                    future: Future = Future()
                    future.set_result(
                        ServedResult(
                            result=hit,
                            version=version,
                            cache_hit=True,
                            batch_size=1,
                            deadline=deadline,
                        )
                    )
                    return future
        return self._scheduler.submit(
            source,
            canonical,
            fresh=fresh,
            deadline=deadline,
            cache_key=key,
            _resolved=(canonical, merged),
        )

    def query(
        self,
        source: int,
        method: str = "powerpush",
        *,
        fresh: bool = False,
        timeout: float | None = None,
        **params: Any,
    ) -> ServedResult:
        """Blocking convenience: ``submit(...).result(timeout)``."""
        return self.submit(source, method, fresh=fresh, **params).result(
            timeout
        )

    def batch(
        self,
        sources: Iterable[int],
        method: str = "powerpush",
        **params: Any,
    ) -> list[ServedResult]:
        """Submit many queries and wait for all, in source order."""
        futures = [self.submit(s, method, **params) for s in sources]
        return [f.result() for f in futures]

    # -- write path ------------------------------------------------------
    def apply_updates(self, updates: Iterable[tuple[str, int, int]]) -> int:
        """Apply edge updates exclusively; returns the new graph version.

        Waits for in-flight reads to finish (new reads queue behind the
        writer), bumps the graph version through the engine, and drops
        every cached result stamped with an older version — after this
        returns, all answers are post-update.
        """
        with self._rwlock.write():
            version = self._engine.apply_updates(updates)
            if self._cache is not None:
                self._cache.invalidate(version)
            return version

    # -- scheduler executor ---------------------------------------------
    def _execute_group(
        self,
        method: str,
        params: dict,
        sources: list,
        keys: list,
    ) -> tuple[Sequence[PPRResult], int, Sequence[bool]]:
        """Answer one coalesced group under the shared lock.

        Re-checks the cache at dispatch time (a request may have been
        filled by an earlier batch while this one queued), solves the
        remaining sources with one ``batch_query``, and fills the cache
        at the version the whole group was computed at.  Returns the
        per-position cache-hit flags so the scheduler reports honest
        provenance (a memoised answer is not a batch solve).
        """
        with self._rwlock.read():
            version = self._engine.graph_version
            results: list[PPRResult | None] = [None] * len(sources)
            hits = [False] * len(sources)
            missing_positions: list[int] = []
            if self._cache is not None:
                for position, key in enumerate(keys):
                    if key is None:
                        missing_positions.append(position)
                        continue
                    hit = self._cache.get(key, version)
                    if hit is not None:
                        results[position] = hit
                        hits[position] = True
                    else:
                        missing_positions.append(position)
            else:
                missing_positions = list(range(len(sources)))
            if missing_positions:
                solved = self._engine.batch_query(
                    [sources[p] for p in missing_positions],
                    method,
                    **params,
                )
                for position, result in zip(missing_positions, solved):
                    results[position] = result
                    key = keys[position]
                    if key is not None and self._cache is not None:
                        self._cache.put(key, result, version)
            return results, version, hits  # type: ignore[return-value]

    # -- stats and lifecycle ---------------------------------------------
    def stats(self) -> dict[str, Any]:
        """One nested dict with server, scheduler, cache, engine stats."""
        cache_stats: Mapping[str, float] = (
            self._cache.stats.as_dict() if self._cache is not None else {}
        )
        scheduler_stats = self._scheduler.stats.as_dict()
        with self._counter_mutex:
            submitted = self._submitted
            submit_hits = self._cache_hits_at_submit
        return {
            "requests": submitted,
            "cache_hits_at_submit": submit_hits,
            "hit_rate_at_submit": (
                submit_hits / submitted if submitted else 0.0
            ),
            "graph_version": self._engine.graph_version,
            "scheduler": scheduler_stats,
            "cache": dict(cache_stats),
            "engine_queries": self._engine.stats.queries,
        }

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (submissions are rejected)."""
        return self._scheduler.closed

    def close(self) -> None:
        """Drain and stop the scheduler; the engine stays usable.

        Idempotent: repeated calls (explicit ``close`` plus context-
        manager exit plus a ``finally`` in a teardown path) are no-ops
        after the first.  The server holds no process-external
        resources itself; when it serves a shared-memory graph the
        owning :class:`~repro.serving.shm.SharedGraphImage` is closed
        by whoever exported/attached it (see
        :mod:`repro.serving.sharded` for the split of ``unlink`` in
        the parent vs ``close`` in every worker).  An attached
        durability manager is flushed and closed after the scheduler
        drains, so a graceful shutdown leaves no pending WAL buffer.
        """
        self._scheduler.close()
        if self._durability is not None:
            self._durability.close()

    def __enter__(self) -> "EngineServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cache = (
            f"cache={len(self._cache)}/{self._cache.capacity}"
            if self._cache is not None
            else "cache=off"
        )
        return (
            f"EngineServer(n={self._engine.graph.num_nodes}, "
            f"version={self._engine.graph_version}, {cache}, "
            f"pending={self._scheduler.pending})"
        )
