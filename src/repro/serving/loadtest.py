"""Load/soak harness: a workload vs the server and a serial baseline.

Answers the serving layer's headline question with numbers: *what does
the scheduler + cache buy over answering one query at a time?*  One
call to :func:`run_loadtest`

1. replays a :class:`~repro.serving.workload.Workload` against a fresh
   :class:`~repro.serving.server.EngineServer` (closed-loop worker
   pool or open-loop paced submission),
2. replays the identical sequence against a bare engine, one blocking
   ``query`` at a time, no cache, no batching,
3. cross-checks the answers (byte-identical for deterministic methods
   on read-only workloads) and emits a :class:`LoadtestReport` with
   throughput, p50/p99 latency, cache hit rate, batching factor, and
   the speedup — the payload of ``BENCH_serving.json``.

Both runs build their graph from the same factory and draw edge
updates from the same stream, so a read/write soak mutates the two
graphs identically: an update is sampled and applied at the moment its
operation is claimed (before the claim cursor advances), which pins
the sampling state, the RNG draw order, and the apply order to the
workload's operation order in both runs.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from repro.api.engine import PPREngine
from repro.api.registry import resolve_method
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import DynamicGraph, sample_edge_update
from repro.serving.server import EngineServer
from repro.serving.scheduler import ServedResult
from repro.serving.sharded import ShardedDispatcher
from repro.serving.workload import Operation, Workload

__all__ = ["LoadtestReport", "RunMetrics", "run_loadtest"]


@dataclass
class RunMetrics:
    """Throughput/latency summary of one workload replay."""

    wall_seconds: float
    queries: int
    updates: int
    p50_ms: float
    p99_ms: float

    @property
    def throughput_qps(self) -> float:
        return self.queries / self.wall_seconds if self.wall_seconds else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "wall_seconds": self.wall_seconds,
            "queries": self.queries,
            "updates": self.updates,
            "throughput_qps": self.throughput_qps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
        }


@dataclass
class LoadtestReport:
    """Everything one loadtest measured, renderable and JSON-able."""

    workload: str
    method: str
    concurrency: int
    served: RunMetrics
    serial: RunMetrics
    cache_hit_rate: float
    batching_factor: float
    identical: bool | None
    server_stats: dict[str, Any] = field(default_factory=dict)
    #: shard processes the served run used (0 = in-process thread mode)
    workers: int = 0

    @property
    def speedup(self) -> float:
        """Served throughput over the serial one-at-a-time baseline."""
        if self.serial.throughput_qps == 0.0:
            return 0.0
        return self.served.throughput_qps / self.serial.throughput_qps

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "method": self.method,
            "concurrency": self.concurrency,
            "workers": self.workers,
            "served": self.served.as_dict(),
            "serial": self.serial.as_dict(),
            "speedup": self.speedup,
            "cache_hit_rate": self.cache_hit_rate,
            "batching_factor": self.batching_factor,
            "identical": self.identical,
            "server_stats": self.server_stats,
        }

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def render(self) -> str:
        identical = (
            "n/a (stochastic method or write traffic)"
            if self.identical is None
            else str(self.identical)
        )
        mode = (
            f"{self.workers} shard processes"
            if self.workers
            else f"{self.concurrency} threads"
        )
        lines = [
            f"loadtest [{self.method}] {self.workload}",
            f"  served : {self.served.throughput_qps:9.1f} q/s   "
            f"p50 {self.served.p50_ms:7.2f} ms   "
            f"p99 {self.served.p99_ms:7.2f} ms   "
            f"({mode})",
            f"  serial : {self.serial.throughput_qps:9.1f} q/s   "
            f"p50 {self.serial.p50_ms:7.2f} ms   "
            f"p99 {self.serial.p99_ms:7.2f} ms   (1 thread, no cache)",
            f"  speedup: {self.speedup:.2f}x   cache hit rate "
            f"{self.cache_hit_rate:.2%}   batching factor "
            f"{self.batching_factor:.2f}",
            f"  answers byte-identical to serial: {identical}",
        ]
        return "\n".join(lines)


def _percentiles(latencies: list[float]) -> tuple[float, float]:
    if not latencies:
        return 0.0, 0.0
    arr = np.asarray(latencies) * 1e3
    return float(np.percentile(arr, 50)), float(np.percentile(arr, 99))


def _require_dynamic(engine: PPREngine, workload: Workload) -> None:
    if workload.num_updates and engine.dynamic_graph is None:
        raise ParameterError(
            "workload contains edge updates; make_graph must return a "
            "DynamicGraph"
        )


def _run_serial(
    make_graph: Callable[[], DiGraph | DynamicGraph],
    workload: Workload,
    method: str,
    params: Mapping[str, Any],
    *,
    alpha: float,
    seed: int,
    collect: bool,
) -> tuple[RunMetrics, dict[int, np.ndarray]]:
    """The baseline: one engine, one thread, one query at a time."""
    engine = PPREngine(make_graph(), alpha=alpha, seed=seed)
    _require_dynamic(engine, workload)
    update_rng = workload.update_rng()
    estimates: dict[int, np.ndarray] = {}
    latencies: list[float] = []
    started = time.perf_counter()
    for op in workload.operations:
        if op.kind == "query":
            begin = time.perf_counter()
            result = engine.query(op.source, method, **dict(params))
            latencies.append(time.perf_counter() - begin)
            if collect:
                estimates[op.index] = result.estimate
        else:
            update = sample_edge_update(engine.dynamic_graph, update_rng)
            engine.apply_updates([update])
    wall = time.perf_counter() - started
    p50, p99 = _percentiles(latencies)
    return (
        RunMetrics(
            wall_seconds=wall,
            queries=workload.num_queries,
            updates=workload.num_updates,
            p50_ms=p50,
            p99_ms=p99,
        ),
        estimates,
    )


def _run_served(
    make_graph: Callable[[], DiGraph | DynamicGraph],
    workload: Workload,
    method: str,
    params: Mapping[str, Any],
    *,
    alpha: float,
    seed: int,
    concurrency: int,
    window: float,
    max_batch: int,
    cache_capacity: int,
    cache_ttl: float | None,
    collect: bool,
    workers: int = 0,
) -> tuple[RunMetrics, dict[int, np.ndarray], dict[str, Any]]:
    """Replay the workload against an :class:`EngineServer` — or, with
    ``workers >= 1``, a :class:`ShardedDispatcher` over that many
    worker processes sharing one shared-memory graph image."""
    server: EngineServer | ShardedDispatcher
    mirror: DynamicGraph | None = None
    if workers:
        graph = make_graph()
        if isinstance(graph, DynamicGraph):
            # The parent keeps a mirror of the logical graph so update
            # sampling sees the same state the shards converge to; the
            # sampled batch is applied to the mirror and broadcast to
            # every shard, keeping all copies in lockstep.
            mirror = graph
        elif workload.num_updates:
            raise ParameterError(
                "workload contains edge updates; make_graph must "
                "return a DynamicGraph"
            )
        server = ShardedDispatcher(
            graph,
            workers=workers,
            alpha=alpha,
            seed=seed,
            window=window,
            max_batch=max_batch,
            cache_capacity=cache_capacity,
            cache_ttl=cache_ttl,
        )
    else:
        server = EngineServer(
            make_graph(),
            alpha=alpha,
            seed=seed,
            window=window,
            max_batch=max_batch,
            cache_capacity=cache_capacity,
            cache_ttl=cache_ttl,
        )
        _require_dynamic(server.engine, workload)
    update_rng = workload.update_rng()
    operations = workload.operations
    latencies: list[float | None] = [None] * len(operations)
    estimates: dict[int, np.ndarray] = {}
    estimates_mutex = threading.Lock()
    errors: list[BaseException] = []

    def _apply_one_update() -> None:
        if mirror is not None:
            update = sample_edge_update(mirror, update_rng)
            mirror.apply_updates([update])
        else:
            assert isinstance(server, EngineServer)
            update = sample_edge_update(
                server.engine.dynamic_graph, update_rng
            )
        server.apply_updates([update])

    def _answer(op: Operation, served: ServedResult) -> None:
        if collect:
            with estimates_mutex:
                estimates[op.index] = served.result.estimate

    with server:
        started = time.perf_counter()
        if workload.arrival == "open":
            # Open loop: one pacing thread submits at the workload's
            # Poisson arrival times and never waits for completions.
            # Updates go through a dedicated writer thread (FIFO, so
            # the stream still matches the serial baseline's order) —
            # if the pacing thread blocked on the exclusive write lock
            # itself, arrivals scheduled during the wait would bunch up
            # and the Poisson process the mode exists to provide would
            # be distorted.
            update_queue: "queue.Queue[object]" = queue.Queue()
            _STOP = object()

            def _updater() -> None:
                try:
                    while True:
                        item = update_queue.get()
                        if item is _STOP:
                            return
                        _apply_one_update()
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    errors.append(exc)

            updater = threading.Thread(target=_updater, name="lt-updater")
            updater.start()
            futures: list[tuple[Any, Any]] = []

            def _record_on_done(
                op: Operation, begin: float
            ) -> Callable[[Any], None]:
                # Completion time is stamped by the resolving thread —
                # charging collection-loop time would inflate the tail
                # of every request that finished during pacing.
                def _done(future: Any) -> None:
                    latencies[op.index] = time.perf_counter() - begin

                return _done

            for op in operations:
                delay = started + op.at - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                if op.kind == "update":
                    update_queue.put(op)
                    continue
                # Clock starts before submit: time spent blocked inside
                # it (read lock queued behind a writer) is queueing
                # delay the open-loop tail must include.
                begin = time.perf_counter()
                future = server.submit(op.source, method, **dict(params))
                future.add_done_callback(_record_on_done(op, begin))
                futures.append((op, future))
            update_queue.put(_STOP)
            for op, future in futures:
                _answer(op, future.result())
            updater.join()
        else:
            # Closed loop: `concurrency` workers drain a shared cursor.
            cursor = {"next": 0}
            cursor_mutex = threading.Lock()

            def _worker() -> None:
                try:
                    while True:
                        with cursor_mutex:
                            position = cursor["next"]
                            if position >= len(operations):
                                return
                            cursor["next"] = position + 1
                            op = operations[position]
                            if op.kind == "update":
                                # Sampled and applied before the cursor
                                # advances past it, so the update
                                # stream (state seen at sampling, RNG
                                # draws, apply order) is identical to
                                # the serial baseline's.
                                _apply_one_update()
                        if op.kind == "update":
                            continue
                        begin = time.perf_counter()
                        served = server.query(
                            op.source, method, **dict(params)
                        )
                        latencies[op.index] = time.perf_counter() - begin
                        _answer(op, served)
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    errors.append(exc)

            threads = [
                threading.Thread(target=_worker, name=f"loadtest-{i}")
                for i in range(concurrency)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        wall = time.perf_counter() - started
        stats = server.stats()
    if errors:
        raise errors[0]
    p50, p99 = _percentiles([lat for lat in latencies if lat is not None])
    return (
        RunMetrics(
            wall_seconds=wall,
            queries=workload.num_queries,
            updates=workload.num_updates,
            p50_ms=p50,
            p99_ms=p99,
        ),
        estimates,
        stats,
    )


def run_loadtest(
    make_graph: Callable[[], DiGraph | DynamicGraph],
    workload: Workload,
    *,
    method: str = "powerpush",
    params: Mapping[str, Any] | None = None,
    alpha: float = 0.2,
    seed: int = 0,
    concurrency: int = 8,
    window: float = 0.002,
    max_batch: int = 64,
    cache_capacity: int = 4096,
    cache_ttl: float | None = None,
    compare: bool = True,
    workers: int = 0,
) -> LoadtestReport:
    """Measure served vs serial replay of ``workload``; see module doc.

    ``make_graph`` is called twice (once per run) so the serial
    baseline's mutations never leak into the served run.  The
    byte-identical cross-check runs only when it is meaningful: a
    deterministic method on a read-only workload (stochastic methods
    and write traffic legitimately diverge, reported as ``None``).

    ``workers >= 1`` switches the served run from the thread-based
    :class:`EngineServer` to a :class:`ShardedDispatcher` over that
    many worker processes mapping one shared-memory graph image
    (answers stay byte-identical either way — placement never changes
    a seeded answer).  ``concurrency`` then counts the closed-loop
    client threads driving the dispatcher.
    """
    if concurrency < 1:
        raise ParameterError(f"concurrency must be >= 1, got {concurrency}")
    if workers < 0:
        raise ParameterError(f"workers must be >= 0, got {workers}")
    params = dict(params or {})
    spec, _ = resolve_method(method)
    comparable = (
        compare and not spec.needs_rng and workload.num_updates == 0
    )
    served_metrics, served_estimates, stats = _run_served(
        make_graph,
        workload,
        method,
        params,
        alpha=alpha,
        seed=seed,
        concurrency=concurrency,
        window=window,
        max_batch=max_batch,
        cache_capacity=cache_capacity,
        cache_ttl=cache_ttl,
        collect=comparable,
        workers=workers,
    )
    serial_metrics, serial_estimates = _run_serial(
        make_graph,
        workload,
        method,
        params,
        alpha=alpha,
        seed=seed,
        collect=comparable,
    )
    identical: bool | None = None
    if comparable:
        identical = all(
            np.array_equal(served_estimates[index], serial_estimates[index])
            for index in serial_estimates
        )
    return LoadtestReport(
        workload=workload.describe(),
        method=spec.name,
        concurrency=concurrency,
        served=served_metrics,
        serial=serial_metrics,
        cache_hit_rate=float(stats["cache"].get("hit_rate", 0.0)),
        batching_factor=float(stats["scheduler"]["batching_factor"]),
        identical=identical,
        server_stats=stats,
        workers=workers,
    )
