"""Load/soak harness: a workload vs the server and a serial baseline.

Answers the serving layer's headline question with numbers: *what does
the scheduler + cache buy over answering one query at a time?*  One
call to :func:`run_loadtest`

1. replays a :class:`~repro.serving.workload.Workload` against a fresh
   :class:`~repro.serving.server.EngineServer` (closed-loop worker
   pool or open-loop paced submission),
2. replays the identical sequence against a bare engine, one blocking
   ``query`` at a time, no cache, no batching,
3. cross-checks the answers (byte-identical for deterministic methods
   on read-only workloads) and emits a :class:`LoadtestReport` with
   throughput, p50/p99 latency, cache hit rate, batching factor, and
   the speedup — the payload of ``BENCH_serving.json``.

Both runs build their graph from the same factory and draw edge
updates from the same stream, so a read/write soak mutates the two
graphs identically: an update is sampled and applied at the moment its
operation is claimed (before the claim cursor advances), which pins
the sampling state, the RNG draw order, and the apply order to the
workload's operation order in both runs.

**Overload experiments.**  With ``slo_ms``/``deadline_ms`` set (open
arrival only), the served run is driven through the
:class:`~repro.serving.frontdoor.AsyncFrontDoor`: requests carry
deadlines, admission control sheds or degrades under pressure, and the
report accounts for every single request — ``completed`` (full or
degraded), ``shed``, ``deadline_expired``, or ``failed`` — instead of
silently dropping the ones that never resolved.  Throughput counts
only completions; *goodput* counts only completions inside the SLO.
Every served answer, degraded ones included, is still verified
byte-identical to a serial engine solving the same (possibly degraded)
request — overload changes whether and how a request is served, never
what a served answer is.
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro.api.engine import PPREngine
from repro.api.registry import resolve_method
from repro.durability.atomic import atomic_write_json
from repro.errors import (
    DeadlineExceeded,
    ParameterError,
    ServerOverloadedError,
)
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import DynamicGraph, sample_edge_update
from repro.serving.faults import WORKER_KINDS, FaultInjector, FaultSpec
from repro.serving.frontdoor import AsyncFrontDoor
from repro.serving.server import EngineServer
from repro.serving.scheduler import ServedResult
from repro.serving.sharded import ShardedDispatcher
from repro.serving.workload import Operation, Workload

__all__ = ["LoadtestReport", "LoadtestStats", "RunMetrics", "run_loadtest"]


@dataclass
class LoadtestStats:
    """Outcome-accounted throughput/latency summary of one replay.

    Every query operation ends in exactly one bucket: ``completed``
    (answered, possibly ``degraded``), ``shed`` (admission control),
    ``deadline_expired`` (budget spent before an answer), or
    ``failed`` (unexpected error).  ``throughput_qps`` counts only
    completions — a shed request is not throughput — and
    ``goodput_qps`` only completions within the SLO.
    """

    wall_seconds: float
    queries: int
    updates: int
    p50_ms: float
    p99_ms: float
    completed: int = -1
    degraded: int = 0
    shed: int = 0
    deadline_expired: int = 0
    failed: int = 0
    slo_ms: float | None = None
    within_slo: int = -1

    def __post_init__(self) -> None:
        # Legacy construction sites predate outcome accounting: a run
        # that reports no outcomes completed everything it was asked.
        if self.completed < 0:
            self.completed = self.queries
        if self.within_slo < 0:
            self.within_slo = self.completed

    @property
    def accounted(self) -> int:
        """Requests with a known fate; must equal ``queries`` (no
        request may simply vanish — a hung future is a bug)."""
        return (
            self.completed + self.shed + self.deadline_expired + self.failed
        )

    @property
    def throughput_qps(self) -> float:
        return (
            self.completed / self.wall_seconds if self.wall_seconds else 0.0
        )

    @property
    def goodput_qps(self) -> float:
        """Completions inside the SLO per second (== throughput when
        no SLO was set)."""
        if not self.wall_seconds:
            return 0.0
        return self.within_slo / self.wall_seconds

    @property
    def error_rate(self) -> float:
        return self.failed / self.queries if self.queries else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.queries if self.queries else 0.0

    def as_dict(self) -> dict[str, float]:
        doc = {
            "wall_seconds": self.wall_seconds,
            "queries": self.queries,
            "updates": self.updates,
            "throughput_qps": self.throughput_qps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "completed": self.completed,
            "degraded": self.degraded,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "failed": self.failed,
            "accounted": self.accounted,
            "error_rate": self.error_rate,
            "shed_rate": self.shed_rate,
            "goodput_qps": self.goodput_qps,
        }
        if self.slo_ms is not None:
            doc["slo_ms"] = self.slo_ms
            doc["within_slo"] = self.within_slo
        return doc


#: Backwards-compatible alias — earlier releases exported the summary
#: as ``RunMetrics`` (no outcome accounting).
RunMetrics = LoadtestStats


@dataclass
class LoadtestReport:
    """Everything one loadtest measured, renderable and JSON-able."""

    workload: str
    method: str
    concurrency: int
    served: LoadtestStats
    serial: LoadtestStats
    cache_hit_rate: float
    batching_factor: float
    identical: bool | None
    server_stats: dict[str, Any] = field(default_factory=dict)
    #: shard processes the served run used (0 = in-process thread mode)
    workers: int = 0
    #: front-door admission counters when the run was SLO-aware
    frontdoor: dict[str, Any] = field(default_factory=dict)
    #: fault schedule + recovery accounting when the run was a chaos run
    chaos: dict[str, Any] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Served throughput over the serial one-at-a-time baseline."""
        if self.serial.throughput_qps == 0.0:
            return 0.0
        return self.served.throughput_qps / self.serial.throughput_qps

    def to_dict(self) -> dict[str, Any]:
        doc = {
            "workload": self.workload,
            "method": self.method,
            "concurrency": self.concurrency,
            "workers": self.workers,
            "served": self.served.as_dict(),
            "serial": self.serial.as_dict(),
            "speedup": self.speedup,
            "cache_hit_rate": self.cache_hit_rate,
            "batching_factor": self.batching_factor,
            "identical": self.identical,
            "server_stats": self.server_stats,
        }
        if self.frontdoor:
            doc["frontdoor"] = self.frontdoor
        if self.chaos:
            doc["chaos"] = self.chaos
        return doc

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(path, self.to_dict())
        return path

    def render(self) -> str:
        identical = (
            "n/a (stochastic method or write traffic)"
            if self.identical is None
            else str(self.identical)
        )
        mode = (
            f"{self.workers} shard processes"
            if self.workers
            else f"{self.concurrency} threads"
        )
        lines = [
            f"loadtest [{self.method}] {self.workload}",
            f"  served : {self.served.throughput_qps:9.1f} q/s   "
            f"p50 {self.served.p50_ms:7.2f} ms   "
            f"p99 {self.served.p99_ms:7.2f} ms   "
            f"({mode})",
            f"  serial : {self.serial.throughput_qps:9.1f} q/s   "
            f"p50 {self.serial.p50_ms:7.2f} ms   "
            f"p99 {self.serial.p99_ms:7.2f} ms   (1 thread, no cache)",
            f"  speedup: {self.speedup:.2f}x   cache hit rate "
            f"{self.cache_hit_rate:.2%}   batching factor "
            f"{self.batching_factor:.2f}",
            f"  answers byte-identical to serial: {identical}",
        ]
        if self.served.slo_ms is not None:
            lines.insert(
                2,
                f"  slo    : {self.served.goodput_qps:9.1f} q/s goodput "
                f"(<= {self.served.slo_ms:.0f} ms)   "
                f"shed {self.served.shed}   "
                f"degraded {self.served.degraded}   "
                f"deadline {self.served.deadline_expired}   "
                f"failed {self.served.failed}",
            )
        if self.chaos:
            supervisor = self.chaos.get("supervisor", {})
            recovery = supervisor.get("recovery_s", {}) or {}
            recovery_max = recovery.get("max")
            recovery_text = (
                f"{recovery_max * 1e3:.0f} ms"
                if recovery_max is not None
                else "n/a"
            )
            lines.append(
                f"  chaos  : injected {self.chaos.get('injected', 0)} "
                f"faults   respawns {supervisor.get('respawns', 0)}   "
                f"retries {supervisor.get('retries', 0)}   "
                f"max recovery {recovery_text}   degraded capacity "
                f"{supervisor.get('degraded_capacity', False)}"
            )
        return "\n".join(lines)


def _percentiles(latencies: list[float]) -> tuple[float, float]:
    if not latencies:
        return 0.0, 0.0
    arr = np.asarray(latencies) * 1e3
    return float(np.percentile(arr, 50)), float(np.percentile(arr, 99))


def _require_dynamic(engine: PPREngine, workload: Workload) -> None:
    if workload.num_updates and engine.dynamic_graph is None:
        raise ParameterError(
            "workload contains edge updates; make_graph must return a "
            "DynamicGraph"
        )


def _run_serial(
    make_graph: Callable[[], DiGraph | DynamicGraph],
    workload: Workload,
    method: str,
    params: Mapping[str, Any],
    *,
    alpha: float,
    seed: int,
    collect: bool,
) -> tuple[LoadtestStats, dict[int, np.ndarray]]:
    """The baseline: one engine, one thread, one query at a time."""
    engine = PPREngine(make_graph(), alpha=alpha, seed=seed)
    _require_dynamic(engine, workload)
    update_rng = workload.update_rng()
    estimates: dict[int, np.ndarray] = {}
    latencies: list[float] = []
    started = time.perf_counter()
    for op in workload.operations:
        if op.kind == "query":
            begin = time.perf_counter()
            result = engine.query(op.source, method, **dict(params))
            latencies.append(time.perf_counter() - begin)
            if collect:
                estimates[op.index] = result.estimate
        else:
            update = sample_edge_update(engine.dynamic_graph, update_rng)
            engine.apply_updates([update])
    wall = time.perf_counter() - started
    p50, p99 = _percentiles(latencies)
    return (
        LoadtestStats(
            wall_seconds=wall,
            queries=workload.num_queries,
            updates=workload.num_updates,
            p50_ms=p50,
            p99_ms=p99,
        ),
        estimates,
    )


def _drive_frontdoor(
    server: EngineServer | ShardedDispatcher,
    operations: list[Operation],
    method: str,
    params: Mapping[str, Any],
    *,
    slo_ms: float | None,
    deadline_ms: float | None,
    degrade_method: str | None,
    degrade_params: Mapping[str, Any] | None,
    max_inflight: int | None,
    collect: bool,
    latencies: list[float | None],
    estimates: dict[int, np.ndarray],
    degraded_estimates: dict[int, tuple[int, np.ndarray]],
    counts: dict[str, int],
    errors: list[BaseException],
) -> AsyncFrontDoor:
    """Open-loop SLO-aware drive through the async front door.

    Requests are paced with ``asyncio.sleep`` at the workload's
    arrival times and awaited as tasks — overload never blocks the
    arrival process, which is the whole point of the open loop.  Every
    request resolves into exactly one outcome bucket, so the caller
    can assert nothing hung.
    """
    door = AsyncFrontDoor(
        server,
        slo_ms=slo_ms,
        deadline_ms=deadline_ms,
        degrade_method=degrade_method,
        degrade_params=dict(degrade_params) if degrade_params else None,
        max_inflight=max_inflight,
    )

    async def _one(op: Operation) -> None:
        begin = time.perf_counter()
        try:
            served = await door.submit(op.source, method, **dict(params))
        except DeadlineExceeded:
            counts["deadline_expired"] += 1
        except ServerOverloadedError:
            counts["shed"] += 1
        except BaseException as exc:  # noqa: BLE001 - accounted + reported
            counts["failed"] += 1
            errors.append(exc)
        else:
            latencies[op.index] = time.perf_counter() - begin
            if served.degraded:
                counts["degraded"] += 1
                if collect:
                    degraded_estimates[op.index] = (
                        op.source,
                        served.result.estimate,
                    )
            elif collect:
                estimates[op.index] = served.result.estimate

    async def _drive() -> None:
        started = time.perf_counter()
        tasks: list[asyncio.Task] = []
        for op in operations:
            delay = started + op.at - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.ensure_future(_one(op)))
        if tasks:
            await asyncio.gather(*tasks)

    asyncio.run(_drive())
    return door


def _await_recovery(
    server: ShardedDispatcher,
    chaos: FaultInjector,
    timeout: float = 30.0,
) -> None:
    """Let in-flight respawns land before the stats snapshot.

    A kill injected near the end of the drive can leave its respawn
    (or even its death detection) still in flight when the workload
    drains; the chaos gates compare respawn counts and live worker
    count against the schedule, so the snapshot must wait for the
    supervisor to finish what the schedule started.  Workers removed
    permanently (restart budget exhausted) are counted as resolved,
    never waited on.  Bounded: proceeds after ``timeout`` regardless
    and lets the gates judge whatever state remains.
    """
    kills = sum(1 for spec in chaos.fired() if spec.kind == "kill")
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        supervisor = server.stats(timeout=0.5)["supervisor"]
        resolved = supervisor["respawns"] + supervisor["permanent_failures"]
        removed = len(supervisor["removed"])
        if (
            resolved >= kills
            and server.num_workers + removed >= server.configured_workers
        ):
            return
        time.sleep(0.05)


def _run_served(
    make_graph: Callable[[], DiGraph | DynamicGraph],
    workload: Workload,
    method: str,
    params: Mapping[str, Any],
    *,
    alpha: float,
    seed: int,
    concurrency: int,
    window: float,
    max_batch: int,
    cache_capacity: int,
    cache_ttl: float | None,
    collect: bool,
    workers: int = 0,
    slo_ms: float | None = None,
    deadline_ms: float | None = None,
    degrade_method: str | None = None,
    degrade_params: Mapping[str, Any] | None = None,
    max_inflight: int | None = None,
    chaos: FaultInjector | None = None,
    max_restarts: int | None = None,
    request_timeout: float | None = None,
) -> tuple[
    LoadtestStats,
    dict[int, np.ndarray],
    dict[int, tuple[int, np.ndarray]],
    dict[str, Any],
]:
    """Replay the workload against an :class:`EngineServer` — or, with
    ``workers >= 1``, a :class:`ShardedDispatcher` over that many
    worker processes sharing one shared-memory graph image."""
    slo_aware = slo_ms is not None or deadline_ms is not None
    server: EngineServer | ShardedDispatcher
    mirror: DynamicGraph | None = None
    if workers:
        graph = make_graph()
        if isinstance(graph, DynamicGraph):
            # The parent keeps a mirror of the logical graph so update
            # sampling sees the same state the shards converge to; the
            # sampled batch is applied to the mirror and broadcast to
            # every shard, keeping all copies in lockstep.
            mirror = graph
        elif workload.num_updates:
            raise ParameterError(
                "workload contains edge updates; make_graph must "
                "return a DynamicGraph"
            )
        server = ShardedDispatcher(
            graph,
            workers=workers,
            alpha=alpha,
            seed=seed,
            window=window,
            max_batch=max_batch,
            cache_capacity=cache_capacity,
            cache_ttl=cache_ttl,
            max_restarts=max_restarts,
            request_timeout=request_timeout,
            fault_injector=chaos,
        )
    else:
        server = EngineServer(
            make_graph(),
            alpha=alpha,
            seed=seed,
            window=window,
            max_batch=max_batch,
            cache_capacity=cache_capacity,
            cache_ttl=cache_ttl,
        )
        _require_dynamic(server.engine, workload)
    update_rng = workload.update_rng()
    operations = workload.operations
    latencies: list[float | None] = [None] * len(operations)
    estimates: dict[int, np.ndarray] = {}
    degraded_estimates: dict[int, tuple[int, np.ndarray]] = {}
    estimates_mutex = threading.Lock()
    errors: list[BaseException] = []
    counts = {"degraded": 0, "shed": 0, "deadline_expired": 0, "failed": 0}
    frontdoor_snapshot: dict[str, Any] = {}

    def _apply_one_update() -> None:
        if mirror is not None:
            update = sample_edge_update(mirror, update_rng)
            mirror.apply_updates([update])
        else:
            assert isinstance(server, EngineServer)
            update = sample_edge_update(
                server.engine.dynamic_graph, update_rng
            )
        server.apply_updates([update])

    def _answer(op: Operation, served: ServedResult) -> None:
        if collect:
            with estimates_mutex:
                estimates[op.index] = served.result.estimate

    with server:
        started = time.perf_counter()
        if slo_aware:
            # SLO-aware open loop: paced async submission through the
            # front door, with deadlines, shedding, and degradation.
            door = _drive_frontdoor(
                server,
                operations,
                method,
                params,
                slo_ms=slo_ms,
                deadline_ms=deadline_ms,
                degrade_method=degrade_method,
                degrade_params=degrade_params,
                max_inflight=max_inflight,
                collect=collect,
                latencies=latencies,
                estimates=estimates,
                degraded_estimates=degraded_estimates,
                counts=counts,
                errors=errors,
            )
            frontdoor_snapshot = door.snapshot()
        elif workload.arrival == "open":
            # Open loop: one pacing thread submits at the workload's
            # Poisson arrival times and never waits for completions.
            # Updates go through a dedicated writer thread (FIFO, so
            # the stream still matches the serial baseline's order) —
            # if the pacing thread blocked on the exclusive write lock
            # itself, arrivals scheduled during the wait would bunch up
            # and the Poisson process the mode exists to provide would
            # be distorted.
            update_queue: "queue.Queue[object]" = queue.Queue()
            _STOP = object()

            def _updater() -> None:
                try:
                    while True:
                        item = update_queue.get()
                        if item is _STOP:
                            return
                        _apply_one_update()
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    errors.append(exc)

            updater = threading.Thread(target=_updater, name="lt-updater")
            updater.start()
            futures: list[tuple[Any, Any]] = []

            def _record_on_done(
                op: Operation, begin: float
            ) -> Callable[[Any], None]:
                # Completion time is stamped by the resolving thread —
                # charging collection-loop time would inflate the tail
                # of every request that finished during pacing.  Failed
                # futures get no latency sample; the collection loop
                # below surfaces (and accounts) their exception.
                def _done(future: Any) -> None:
                    if future.exception() is None:
                        latencies[op.index] = time.perf_counter() - begin

                return _done

            for op in operations:
                delay = started + op.at - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                if op.kind == "update":
                    update_queue.put(op)
                    continue
                # Clock starts before submit: time spent blocked inside
                # it (read lock queued behind a writer) is queueing
                # delay the open-loop tail must include.
                begin = time.perf_counter()
                future = server.submit(op.source, method, **dict(params))
                future.add_done_callback(_record_on_done(op, begin))
                futures.append((op, future))
            update_queue.put(_STOP)
            for op, future in futures:
                try:
                    _answer(op, future.result())
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    counts["failed"] += 1
                    errors.append(exc)
            updater.join()
        else:
            # Closed loop: `concurrency` workers drain a shared cursor.
            cursor = {"next": 0}
            cursor_mutex = threading.Lock()

            def _worker() -> None:
                try:
                    while True:
                        with cursor_mutex:
                            position = cursor["next"]
                            if position >= len(operations):
                                return
                            cursor["next"] = position + 1
                            op = operations[position]
                            if op.kind == "update":
                                # Sampled and applied before the cursor
                                # advances past it, so the update
                                # stream (state seen at sampling, RNG
                                # draws, apply order) is identical to
                                # the serial baseline's.
                                _apply_one_update()
                        if op.kind == "update":
                            continue
                        begin = time.perf_counter()
                        try:
                            served = server.query(
                                op.source, method, **dict(params)
                            )
                        except BaseException as exc:  # noqa: BLE001
                            if chaos is None:
                                raise
                            # Chaos runs account failures instead of
                            # aborting the worker: the gate downstream
                            # asserts failed == 0, so a lost request is
                            # still a run failure — just a diagnosed
                            # one, with every other fate known.
                            with estimates_mutex:
                                counts["failed"] += 1
                            errors.append(exc)
                            continue
                        latencies[op.index] = time.perf_counter() - begin
                        _answer(op, served)
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    errors.append(exc)

            threads = [
                threading.Thread(target=_worker, name=f"loadtest-{i}")
                for i in range(concurrency)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        wall = time.perf_counter() - started
        if chaos is not None and isinstance(server, ShardedDispatcher):
            _await_recovery(server, chaos)
        stats = server.stats()
    if frontdoor_snapshot:
        stats = dict(stats)
        stats["frontdoor"] = frontdoor_snapshot
    if errors and not slo_aware:
        # Outside the SLO-aware drive there is no expected failure
        # mode: any exception is an infrastructure bug — surface it.
        # A chaos run accounts per-query failures in the report
        # instead (its gate asserts failed == 0 anyway), but errors
        # beyond the accounted ones (an update barrier collapsing, a
        # pacing thread dying) are still infrastructure bugs.
        if chaos is None or len(errors) > counts["failed"]:
            raise errors[0]
    completed_latencies = [lat for lat in latencies if lat is not None]
    completed = len(completed_latencies)
    p50, p99 = _percentiles(completed_latencies)
    within = (
        sum(1 for lat in completed_latencies if lat * 1e3 <= slo_ms)
        if slo_ms is not None
        else completed
    )
    return (
        LoadtestStats(
            wall_seconds=wall,
            queries=workload.num_queries,
            updates=workload.num_updates,
            p50_ms=p50,
            p99_ms=p99,
            completed=completed,
            degraded=counts["degraded"],
            shed=counts["shed"],
            deadline_expired=counts["deadline_expired"],
            failed=counts["failed"],
            slo_ms=slo_ms,
            within_slo=within,
        ),
        estimates,
        degraded_estimates,
        stats,
    )


def run_loadtest(
    make_graph: Callable[[], DiGraph | DynamicGraph],
    workload: Workload,
    *,
    method: str = "powerpush",
    params: Mapping[str, Any] | None = None,
    alpha: float = 0.2,
    seed: int = 0,
    concurrency: int = 8,
    window: float = 0.002,
    max_batch: int = 64,
    cache_capacity: int = 4096,
    cache_ttl: float | None = None,
    compare: bool = True,
    workers: int = 0,
    slo_ms: float | None = None,
    deadline_ms: float | None = None,
    degrade_method: str | None = None,
    degrade_params: Mapping[str, Any] | None = None,
    max_inflight: int | None = None,
    chaos: FaultInjector | Iterable[FaultSpec] | None = None,
    max_restarts: int | None = None,
    request_timeout: float | None = None,
) -> LoadtestReport:
    """Measure served vs serial replay of ``workload``; see module doc.

    ``make_graph`` is called twice (once per run) so the serial
    baseline's mutations never leak into the served run.  The
    byte-identical cross-check runs only when it is meaningful: a
    deterministic method on a read-only workload (stochastic methods
    and write traffic legitimately diverge, reported as ``None``).

    ``workers >= 1`` switches the served run from the thread-based
    :class:`EngineServer` to a :class:`ShardedDispatcher` over that
    many worker processes mapping one shared-memory graph image
    (answers stay byte-identical either way — placement never changes
    a seeded answer).  ``concurrency`` then counts the closed-loop
    client threads driving the dispatcher.

    ``slo_ms``/``deadline_ms`` switch the served run to the SLO-aware
    async front door (open arrival, read-only workloads only): every
    request carries a deadline, overload sheds or degrades (to
    ``degrade_method``/``degrade_params`` when given), and the report
    accounts every request's fate plus goodput-under-SLO.  Served
    full-fidelity answers are verified against the serial baseline as
    usual; served *degraded* answers are verified against a serial
    engine solving the degraded request — byte-identity is a property
    of every answer actually served, not only the lucky ones.

    ``chaos`` (a :class:`~repro.serving.faults.FaultInjector` or a
    plain list of :class:`~repro.serving.faults.FaultSpec`) arms
    deterministic fault injection inside the sharded dispatcher
    (``workers >= 1`` required): workers are killed/stopped at
    scheduled submit counts, replies dropped or delayed at scheduled
    worker-local ordinals, and the supervisor + retry machinery is
    expected to recover every request.  Per-query failures are then
    *accounted* (``failed``) instead of aborting the replay, and the
    report grows a ``chaos`` section with the schedule, what fired,
    and the supervisor's recovery accounting.  ``max_restarts`` and
    ``request_timeout`` pass through to the dispatcher's restart
    budget and per-request hang detector.
    """
    if concurrency < 1:
        raise ParameterError(f"concurrency must be >= 1, got {concurrency}")
    if workers < 0:
        raise ParameterError(f"workers must be >= 0, got {workers}")
    slo_aware = slo_ms is not None or deadline_ms is not None
    if slo_aware and workload.arrival != "open":
        raise ParameterError(
            "slo_ms/deadline_ms require an open-loop workload "
            "(arrival='open'): a closed loop self-throttles, so there "
            "is no overload to control admission for"
        )
    if slo_aware and workload.num_updates:
        raise ParameterError(
            "slo_ms/deadline_ms require a read-only workload; drive "
            "write traffic through AsyncFrontDoor.apply_updates directly"
        )
    if (degrade_method or degrade_params) and not slo_aware:
        raise ParameterError(
            "degrade_method/degrade_params only apply with slo_ms set"
        )
    injector: FaultInjector | None = None
    if chaos is not None:
        injector = (
            chaos if isinstance(chaos, FaultInjector) else FaultInjector(chaos)
        )
    if workers < 1 and (
        injector is not None
        or max_restarts is not None
        or request_timeout is not None
    ):
        raise ParameterError(
            "chaos/max_restarts/request_timeout require workers >= 1: "
            "fault injection and supervision live in the sharded "
            "dispatcher, not the in-process EngineServer"
        )
    params = dict(params or {})
    spec, _ = resolve_method(method)
    comparable = (
        compare and not spec.needs_rng and workload.num_updates == 0
    )
    if comparable and degrade_method is not None:
        degrade_spec, _ = resolve_method(degrade_method)
        comparable = not degrade_spec.needs_rng
    served_metrics, served_estimates, degraded_estimates, stats = _run_served(
        make_graph,
        workload,
        method,
        params,
        alpha=alpha,
        seed=seed,
        concurrency=concurrency,
        window=window,
        max_batch=max_batch,
        cache_capacity=cache_capacity,
        cache_ttl=cache_ttl,
        collect=comparable,
        workers=workers,
        slo_ms=slo_ms,
        deadline_ms=deadline_ms,
        degrade_method=degrade_method,
        degrade_params=degrade_params,
        max_inflight=max_inflight,
        chaos=injector,
        max_restarts=max_restarts,
        request_timeout=request_timeout,
    )
    serial_metrics, serial_estimates = _run_serial(
        make_graph,
        workload,
        method,
        params,
        alpha=alpha,
        seed=seed,
        collect=comparable,
    )
    identical: bool | None = None
    if comparable:
        # Only answers actually served are checked (an SLO run sheds
        # or expires some) — every one of them must match the sync
        # path bit for bit.
        identical = all(
            np.array_equal(served_estimates[index], serial_estimates[index])
            for index in served_estimates
        )
        if identical and degraded_estimates:
            # Degraded answers are the sync answer to the *degraded*
            # request: replay those requests on a fresh serial engine.
            engine = PPREngine(make_graph(), alpha=alpha, seed=seed)
            check_method = degrade_method or spec.name
            check_params = dict(degrade_params or {})
            identical = all(
                np.array_equal(
                    estimate,
                    engine.query(
                        source, check_method, **check_params
                    ).estimate,
                )
                for source, estimate in degraded_estimates.values()
            )
    chaos_doc: dict[str, Any] = {}
    if injector is not None:
        fired = injector.fired()
        worker_side = [
            s for s in injector.schedule if s.kind in WORKER_KINDS
        ]
        chaos_doc = {
            "scheduled": injector.summary(),
            # Parent-side faults fire from the dispatcher and are
            # observable; worker-side specs fire inside the worker on
            # local ordinals (no feedback channel), so they count as
            # injected by schedule.
            "injected": len(fired) + len(worker_side),
            "fired": [
                {"kind": s.kind, "worker": s.worker, "at": s.at}
                for s in fired
            ],
            "supervisor": dict(stats.get("supervisor", {})),
        }
    return LoadtestReport(
        workload=workload.describe(),
        method=spec.name,
        concurrency=concurrency,
        served=served_metrics,
        serial=serial_metrics,
        cache_hit_rate=float(stats["cache"].get("hit_rate", 0.0)),
        batching_factor=float(stats["scheduler"]["batching_factor"]),
        identical=identical,
        server_stats=stats,
        workers=workers,
        frontdoor=dict(stats.get("frontdoor", {})),
        chaos=chaos_doc,
    )
