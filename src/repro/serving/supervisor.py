"""Supervision policies for the sharded serving tier.

:class:`~repro.serving.sharded.ShardedDispatcher` used to treat a dead
worker as permanently lost: the ring shrank, the survivors absorbed the
arc, and capacity only ever went down.  This module holds the *policy*
side of the self-healing story — deliberately free of any process or
queue handling, so every decision it makes is a pure function of its
inputs and a seed:

* :class:`RestartPolicy` — jittered exponential backoff with a restart
  budget.  Delays are derived from ``(seed, worker_id, attempt)``
  through a seeded generator, so a supervisor replaying the same crash
  schedule waits the exact same sequence of delays (chaos runs are
  reproducible end to end, not just "roughly similar").
* :class:`RetryPolicy` — deadline-aware bounded retries for reads.
  Retrying a read is safe because every answer is a pure function of
  ``(seed, source)`` (:func:`repro.api.engine.per_source_rng`): a
  retried request returns byte-identical results no matter which shard
  finally serves it.  The policy only decides *whether* and *when*;
  it never changes *what*.
* :class:`CircuitBreaker` — per-shard closed → open → half-open state
  machine.  Consecutive failures open the breaker; after a cooldown a
  single half-open probe is let through; its outcome closes or
  re-opens the circuit.  The dispatcher routes around open shards so a
  sick worker stops eating deadline budget from live traffic.

All mutation of a :class:`CircuitBreaker` happens under the
dispatcher's mutex; the class itself stays lock-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "RestartPolicy",
    "RetryPolicy",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


def _seeded_jitter(seed: int, *key: int) -> float:
    """Uniform draw in ``[0, 1)`` keyed by ``(seed, *key)``.

    A fresh seeded generator per decision (instead of one shared
    stateful stream) makes every delay independent of evaluation
    order: worker 3's second restart delay is the same number whether
    worker 1 crashed before it or not.
    """
    rng = np.random.default_rng((int(seed), *[int(k) for k in key]))
    return float(rng.random())


@dataclass(frozen=True)
class RestartPolicy:
    """Jittered exponential backoff with a restart budget.

    ``delay(worker_id, attempt)`` for ``attempt = 0, 1, 2, ...`` grows
    as ``base_delay * multiplier**attempt`` capped at ``max_delay``,
    then stretched by a deterministic jitter factor in
    ``[1, 1 + jitter]``.  ``max_restarts`` is the per-worker budget:
    once a worker has been respawned that many times and dies again,
    the supervisor removes it permanently and flags degraded capacity
    instead of crash-looping.  ``max_restarts=0`` disables respawning
    entirely (the pre-supervision behaviour).
    """

    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5
    max_restarts: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_delay < 0:
            raise ParameterError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )
        if self.multiplier < 1.0:
            raise ParameterError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.jitter < 0:
            raise ParameterError(f"jitter must be >= 0, got {self.jitter}")
        if self.max_restarts < 0:
            raise ParameterError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )

    def delay(self, worker_id: int, attempt: int) -> float:
        """Backoff before restart number ``attempt`` (0-based) of a worker."""
        raw = min(
            self.max_delay, self.base_delay * self.multiplier**attempt
        )
        factor = 1.0 + self.jitter * _seeded_jitter(
            self.seed, worker_id, attempt
        )
        return raw * factor

    def allows(self, attempt: int) -> bool:
        """Whether restart number ``attempt`` (0-based) is within budget."""
        return attempt < self.max_restarts


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline-aware bounded retries for rerouted/timed-out reads.

    ``max_attempts`` bounds the number of *re*-submissions (the first
    submission is free).  The first retry is immediate — a reroute off
    a dead shard should not add latency — and later ones back off
    exponentially with deterministic jitter.  :meth:`next_delay`
    returns ``None`` when the request must fail instead: budget
    exhausted, or the backoff would land past the request deadline
    (retrying into a deadline that cannot be met only burns a shard's
    time for an answer nobody will read).
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 0.5
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ParameterError(
                f"max_attempts must be >= 0, got {self.max_attempts}"
            )
        if self.base_delay < 0:
            raise ParameterError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based; first is free)."""
        if attempt <= 0:
            return 0.0
        raw = min(
            self.max_delay,
            self.base_delay * self.multiplier ** (attempt - 1),
        )
        factor = 1.0 + self.jitter * _seeded_jitter(self.seed, attempt)
        return raw * factor

    def next_delay(
        self,
        attempt: int,
        *,
        deadline: float | None,
        now: float,
    ) -> float | None:
        """Delay before retry ``attempt``, or ``None`` to give up."""
        if attempt >= self.max_attempts:
            return None
        delay = self.delay(attempt)
        if deadline is not None and now + delay >= deadline:
            return None
        return delay


@dataclass
class CircuitBreaker:
    """Closed → open → half-open breaker for one shard.

    * **closed**: traffic flows; ``failure_threshold`` *consecutive*
      failures trip it open (any success resets the streak).
    * **open**: the dispatcher routes around the shard until
      ``reset_timeout`` seconds have passed.
    * **half-open**: exactly one probe request is admitted; success
      closes the breaker, failure re-opens it for another cooldown.

    All timestamps are ``time.monotonic()`` values supplied by the
    caller, which keeps the state machine deterministic under test.
    """

    failure_threshold: int = 3
    reset_timeout: float = 1.0
    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    open_events: int = 0
    _probe_inflight: bool = field(default=False, repr=False)

    def allows(self, now: float) -> bool:
        """Whether one more request may be routed to this shard."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self.opened_at >= self.reset_timeout:
                self.state = HALF_OPEN
                self._probe_inflight = False
            else:
                return False
        # Half-open: admit a single probe at a time.
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = CLOSED
        self._probe_inflight = False

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
            self.state == CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = OPEN
            self.opened_at = now
            self.open_events += 1
            self._probe_inflight = False

    def trip(self, now: float) -> None:
        """Force the breaker open (used when the shard's process dies)."""
        self.consecutive_failures = max(
            self.consecutive_failures, self.failure_threshold
        )
        if self.state != OPEN:
            self.state = OPEN
            self.open_events += 1
        self.opened_at = now
        self._probe_inflight = False

    def snapshot(self) -> dict[str, object]:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "open_events": self.open_events,
        }
