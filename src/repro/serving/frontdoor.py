"""Async SLO-aware front door over the thread/process serving tiers.

The serving stack so far is concurrent but *thread-shaped*: every
``EngineServer.query`` parks a client thread on a future, the
micro-batch window is a fixed timer, and nothing in the path knows a
request has a deadline or that the system is overloaded.  This module
is the admission tier the ROADMAP's "Async front door with SLO-aware
scheduling" item asks for, built on stdlib ``asyncio`` only:

* :meth:`AsyncFrontDoor.submit` is a coroutine: it enqueues through
  the wrapped :class:`~repro.serving.server.EngineServer` (or
  :class:`~repro.serving.sharded.ShardedDispatcher`) and **awaits the
  future without holding a thread** — ten thousand in-flight requests
  cost one event loop, not ten thousand parked stacks.
* Every request carries a **deadline**.  A spent budget fails fast
  with :class:`~repro.errors.DeadlineExceeded` — at admission, at
  micro-batch dispatch (the scheduler drops expired requests instead
  of giving them a batch slot), or while awaiting the solve.
* **Admission control** watches the p99 of recently completed
  full-fidelity requests.  When that prediction blows the SLO the
  front door *degrades* — re-issues the request against a cheaper
  registered solver (e.g. a looser ``l1_threshold``), or serves a
  version-valid cached answer from that degraded tier — and when even
  that cannot help (or the in-flight bound is hit) it *sheds* with
  :class:`~repro.errors.ServerOverloadedError`.  Shedding protects
  the answered requests' tail: an open-loop overload run keeps
  bounded p99 for everything it admits.
* The **micro-batch window adapts** to the observed arrival rate: an
  EWMA over inter-arrival gaps sizes the window so a batch can fill
  (``target_batch`` arrivals' worth), clamped to ``[window_min,
  window_max]`` — low traffic stops paying the fixed-window latency
  tax, bursts still coalesce into block solves.

Degradation never changes *what* a served answer is, only *whether and
how* a request is served: every answer — full fidelity or degraded —
is still the byte-exact ``per_source_rng(seed, source)`` answer for
the (possibly degraded) request that produced it, so the sync path
with the same method and parameters reproduces it bit for bit.

The front door is deliberately loop-agnostic: state lives on the
object, each ``submit`` binds to the loop it runs under, so both a
long-lived service loop and one-shot ``asyncio.run`` callers (the CLI)
work.

>>> server = EngineServer(graph, seed=7)
>>> door = AsyncFrontDoor(server, slo_ms=50.0, deadline_ms=200.0,
...                       degrade_params={"l1_threshold": 1e-4})
>>> async def client(s):
...     try:
...         served = await door.submit(s, "powerpush", l1_threshold=1e-8)
...     except DeadlineExceeded:
...         ...   # budget spent: fail fast, tell the caller
...     except ServerOverloadedError:
...         ...   # shed: retry later
"""

from __future__ import annotations

import asyncio
import functools
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Union

import numpy as np

from repro.errors import (
    DeadlineExceeded,
    ParameterError,
    ServerOverloadedError,
)
from repro.serving.scheduler import ServedResult
from repro.serving.server import EngineServer
from repro.serving.sharded import ShardedDispatcher

__all__ = ["AsyncFrontDoor", "FrontDoorStats"]

Backend = Union[EngineServer, ShardedDispatcher]

#: Completed-latency window the p99 predictor looks at.  Small enough
#: to react within ~a hundred requests of a load shift, large enough
#: that the 99th percentile is not a single sample.
_LATENCY_WINDOW = 128

#: Minimum completed samples before the predictor votes at all —
#: admission control never degrades on startup noise.
_MIN_SAMPLES = 16

#: Under sustained overload every request would degrade and the
#: full-fidelity latency window would go stale; every Nth would-be
#: degraded request is admitted at full fidelity as a probe so the
#: predictor can observe recovery.
_PROBE_EVERY = 16


@dataclass
class FrontDoorStats:
    """Counters over one front-door lifetime (guarded by its mutex)."""

    submitted: int = 0
    completed: int = 0
    degraded: int = 0
    degraded_cache_hits: int = 0
    shed: int = 0
    deadline_rejected: int = 0
    deadline_expired: int = 0
    probes: int = 0
    window_updates: int = 0
    #: EWMA arrival rate (requests/second) the adaptive window tracks.
    arrival_rate_hz: float = 0.0
    #: Latest p99 prediction (milliseconds); 0.0 until enough samples.
    predicted_p99_ms: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "degraded": self.degraded,
            "degraded_cache_hits": self.degraded_cache_hits,
            "shed": self.shed,
            "deadline_rejected": self.deadline_rejected,
            "deadline_expired": self.deadline_expired,
            "probes": self.probes,
            "window_updates": self.window_updates,
            "arrival_rate_hz": self.arrival_rate_hz,
            "predicted_p99_ms": self.predicted_p99_ms,
        }


class AsyncFrontDoor:
    """SLO-aware ``asyncio`` admission tier over a serving backend.

    Parameters
    ----------
    backend:
        The :class:`EngineServer` or :class:`ShardedDispatcher` that
        actually answers queries.  The front door never closes it —
        lifecycles stay with whoever constructed the backend (use both
        as context managers, innermost first).
    slo_ms:
        Service-level objective on end-to-end latency, milliseconds.
        ``None`` disables admission control (requests are only subject
        to their deadlines).
    deadline_ms:
        Default per-request budget; individual submits may override.
        ``None`` means best-effort (no deadline) unless the submit
        provides one.
    degrade_method, degrade_params:
        The cheaper registered solver admission control falls back to
        when predicted p99 blows the SLO.  Defaults: the request's own
        method with ``degrade_params`` replacing the caller's
        parameters (the classic use is a looser ``l1_threshold``).
        ``None`` for ``degrade_params`` disables the degraded tier —
        overload then sheds outright.
    max_inflight:
        Hard bound on concurrently admitted requests; beyond it every
        arrival is shed.  ``None`` disables the bound.
    window_min, window_max, target_batch:
        Adaptive micro-batch window clamp and fill target: the window
        tracks ``target_batch / arrival_rate`` (time for a batch's
        worth of arrivals), clamped to ``[window_min, window_max]``.
        Applied only when the backend exposes a scheduler (thread
        mode); sharded workers keep their configured window.
    ewma_alpha:
        Smoothing factor for the inter-arrival EWMA (0 < alpha <= 1).
    """

    def __init__(
        self,
        backend: Backend,
        *,
        slo_ms: float | None = None,
        deadline_ms: float | None = None,
        degrade_method: str | None = None,
        degrade_params: dict[str, Any] | None = None,
        max_inflight: int | None = None,
        window_min: float = 0.0005,
        window_max: float = 0.02,
        target_batch: int = 16,
        ewma_alpha: float = 0.1,
    ) -> None:
        if slo_ms is not None and slo_ms <= 0:
            raise ParameterError(f"slo_ms must be positive, got {slo_ms}")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ParameterError(
                f"deadline_ms must be positive, got {deadline_ms}"
            )
        if max_inflight is not None and max_inflight < 1:
            raise ParameterError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise ParameterError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}"
            )
        if not 0.0 <= window_min <= window_max:
            raise ParameterError(
                f"need 0 <= window_min <= window_max, got "
                f"[{window_min}, {window_max}]"
            )
        if target_batch < 1:
            raise ParameterError(
                f"target_batch must be >= 1, got {target_batch}"
            )
        self._backend = backend
        self._slo_ms = slo_ms
        self._deadline_ms = deadline_ms
        self._degrade_method = degrade_method
        self._degrade_params = (
            dict(degrade_params) if degrade_params is not None else None
        )
        self._max_inflight = max_inflight
        self._window_min = float(window_min)
        self._window_max = float(window_max)
        self._target_batch = int(target_batch)
        self._ewma_alpha = float(ewma_alpha)
        #: guards counters, the latency window, and the arrival EWMA —
        #: submit() runs on the event loop but completions land from
        #: scheduler worker threads via the wrapped futures
        self._mutex = threading.Lock()
        self.stats = FrontDoorStats()
        self._inflight = 0
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self._gap_ewma: float | None = None
        self._last_arrival: float | None = None
        self._degrade_decisions = 0
        #: version-valid degraded answers, keyed by source — the
        #: "cached lower-precision answer" tier (entries stamped with
        #: the version they were computed at; checked on reuse)
        self._degraded_cache: dict[int, ServedResult] = {}

    # -- properties ------------------------------------------------------
    @property
    def backend(self) -> Backend:
        return self._backend

    @property
    def slo_ms(self) -> float | None:
        return self._slo_ms

    @property
    def inflight(self) -> int:
        """Requests admitted but not yet completed/failed."""
        with self._mutex:
            return self._inflight

    # -- read path -------------------------------------------------------
    async def submit(
        self,
        source: int,
        method: str = "powerpush",
        *,
        deadline_ms: float | None = None,
        fresh: bool = False,
        **params: Any,
    ) -> ServedResult:
        """Answer one query under admission control; awaitable.

        Raises :class:`~repro.errors.DeadlineExceeded` when the budget
        is spent (before or during the solve) and
        :class:`~repro.errors.ServerOverloadedError` when the request
        is shed.  A served answer may be *degraded* (cheaper solver /
        cached lower-precision answer) — check
        :attr:`ServedResult.degraded`; it is still byte-identical to
        the sync path for the degraded request.
        """
        now = time.monotonic()
        self._note_arrival(now)
        budget_ms = deadline_ms if deadline_ms is not None else self._deadline_ms
        deadline = None if budget_ms is None else now + budget_ms / 1e3
        # Fresh clock read: the arrival bookkeeping above took a lock,
        # so a sub-resolution budget is already spent by now.
        if deadline is not None and time.monotonic() >= deadline:
            with self._mutex:
                self.stats.deadline_rejected += 1
            raise DeadlineExceeded(
                f"request for source {source} arrived with no budget left"
            )
        decision = self._admit(source)
        if decision == "shed":
            raise ServerOverloadedError(
                f"shed request for source {source}: predicted p99 "
                f"{self.stats.predicted_p99_ms:.1f}ms vs SLO "
                f"{self._slo_ms}ms with no degraded tier left"
            )
        if decision == "degrade":
            cached = self._degraded_hit(source)
            if cached is not None:
                return replace(cached, deadline=deadline)
            method = self._degrade_method or method
            params = dict(self._degrade_params or {})
        with self._mutex:
            self._inflight += 1
        try:
            served = await self._await_backend(
                source,
                method,
                params,
                fresh=fresh,
                deadline=deadline,
            )
        except DeadlineExceeded:
            # Covers every expiry past admission: backend fail-fast at
            # enqueue, scheduler fail-fast at dispatch, and the await
            # outliving the remaining budget.
            with self._mutex:
                self.stats.deadline_expired += 1
            raise
        finally:
            with self._mutex:
                self._inflight -= 1
        latency = time.monotonic() - now
        degraded = decision == "degrade"
        self._note_completion(latency, degraded=degraded)
        if degraded:
            served = replace(served, degraded=True)
            with self._mutex:
                self._degraded_cache[int(source)] = served
        return served

    async def query(
        self,
        source: int,
        method: str = "powerpush",
        *,
        deadline_ms: float | None = None,
        fresh: bool = False,
        **params: Any,
    ) -> ServedResult:
        """Alias of :meth:`submit` mirroring the sync servers' surface."""
        return await self.submit(
            source,
            method,
            deadline_ms=deadline_ms,
            fresh=fresh,
            **params,
        )

    async def _await_backend(
        self,
        source: int,
        method: str,
        params: dict[str, Any],
        *,
        fresh: bool,
        deadline: float | None,
    ) -> ServedResult:
        """Enqueue on the backend and await the answer, thread-free.

        The enqueue itself runs in the default executor: it is cheap,
        but it can briefly block on the backend's read lock behind a
        writer, and the event loop must never wait on a lock.  The
        solve is awaited via ``wrap_future`` — no thread parks on it.
        """
        loop = asyncio.get_running_loop()
        enqueue = functools.partial(
            self._backend.submit,
            source,
            method,
            fresh=fresh,
            deadline=deadline,
            **params,
        )
        future = await loop.run_in_executor(None, enqueue)
        wrapped = asyncio.wrap_future(future, loop=loop)
        if deadline is None:
            return await wrapped
        remaining = deadline - time.monotonic()
        try:
            return await asyncio.wait_for(wrapped, max(0.0, remaining))
        except asyncio.TimeoutError:
            future.cancel()
            raise DeadlineExceeded(
                f"deadline passed awaiting answer for source {source}"
            ) from None

    # -- write path / stats / lifecycle ---------------------------------
    async def apply_updates(
        self, updates: list[tuple[str, int, int]]
    ) -> int:
        """Apply edge updates through the backend's exclusive path.

        Runs in the executor — the writer lock waits for in-flight
        reads, and the event loop must stay responsive meanwhile.
        Degraded cached answers are version-stamped, so the version
        bump invalidates them on next reuse.
        """
        loop = asyncio.get_running_loop()
        version = await loop.run_in_executor(
            None, self._backend.apply_updates, list(updates)
        )
        with self._mutex:
            self._degraded_cache.clear()
        return version

    def server_stats(self) -> dict[str, Any]:
        """The wrapped backend's stats dict (synchronous passthrough)."""
        return self._backend.stats()

    def snapshot(self) -> dict[str, Any]:
        """Front-door counters plus the current adaptive window."""
        with self._mutex:
            doc = self.stats.as_dict()
            doc["inflight"] = self._inflight
        scheduler = getattr(self._backend, "scheduler", None)
        doc["window"] = scheduler.window if scheduler is not None else None
        return doc

    # -- admission control ----------------------------------------------
    def _admit(self, source: int) -> str:
        """``"full"`` | ``"degrade"`` | ``"shed"`` for one arrival."""
        with self._mutex:
            self.stats.submitted += 1
            if (
                self._max_inflight is not None
                and self._inflight >= self._max_inflight
            ):
                self.stats.shed += 1
                return "shed"
            if self._slo_ms is None:
                return "full"
            predicted = self._predicted_p99_ms_locked()
            self.stats.predicted_p99_ms = predicted
            if predicted <= self._slo_ms:
                return "full"
            # Overloaded.  Degrade when a cheaper tier exists, shedding
            # a periodic probe back to full fidelity so the predictor
            # keeps seeing the tier it predicts; shed outright when
            # there is nothing to degrade to.
            if self._degrade_params is None and self._degrade_method is None:
                self.stats.shed += 1
                return "shed"
            self._degrade_decisions += 1
            if self._degrade_decisions % _PROBE_EVERY == 0:
                self.stats.probes += 1
                return "full"
            self.stats.degraded += 1
            return "degrade"

    def _predicted_p99_ms_locked(self) -> float:
        if len(self._latencies) < _MIN_SAMPLES:
            return 0.0
        return float(
            np.percentile(np.asarray(self._latencies), 99) * 1e3
        )

    def _degraded_hit(self, source: int) -> ServedResult | None:
        """A version-valid degraded answer for ``source``, or ``None``."""
        with self._mutex:
            cached = self._degraded_cache.get(int(source))
        if cached is None:
            return None
        if cached.version != self._backend.graph_version:
            with self._mutex:
                self._degraded_cache.pop(int(source), None)
            return None
        with self._mutex:
            self.stats.degraded_cache_hits += 1
        return cached

    # -- adaptive window -------------------------------------------------
    def _note_arrival(self, now: float) -> None:
        with self._mutex:
            if self._last_arrival is not None:
                gap = max(1e-6, now - self._last_arrival)
                if self._gap_ewma is None:
                    self._gap_ewma = gap
                else:
                    self._gap_ewma += self._ewma_alpha * (
                        gap - self._gap_ewma
                    )
                self.stats.arrival_rate_hz = 1.0 / self._gap_ewma
            self._last_arrival = now
            gap_ewma = self._gap_ewma
            count = self.stats.submitted
        # Re-size the scheduler window from the arrival EWMA every few
        # arrivals (thread mode only; sharded workers keep their own).
        if gap_ewma is None or count % 8:
            return
        scheduler = getattr(self._backend, "scheduler", None)
        if scheduler is None:
            return
        window = min(
            self._window_max,
            max(self._window_min, self._target_batch * gap_ewma),
        )
        if abs(window - scheduler.window) / max(window, 1e-9) > 0.1:
            scheduler.set_window(window)
            with self._mutex:
                self.stats.window_updates += 1

    def _note_completion(self, latency: float, *, degraded: bool) -> None:
        with self._mutex:
            self.stats.completed += 1
            if not degraded:
                # Only full-fidelity completions feed the predictor:
                # degraded latencies would mask the overload that
                # forced the degradation in the first place.
                self._latencies.append(latency)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AsyncFrontDoor(slo_ms={self._slo_ms}, "
            f"deadline_ms={self._deadline_ms}, "
            f"inflight={self.inflight})"
        )
