"""The always-available reference backend.

Delegates every kernel to the NumPy bodies in
:mod:`repro.core.kernels` — this backend *is* the reference
implementation, so selecting ``backend="numpy"`` explicitly is
byte-identical to not selecting a backend at all (the golden-trace
suite relies on exactly this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.backends.base import KernelBackend

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.residues import BlockPushState, PushState
    from repro.core.workspace import Workspace

__all__ = ["NumpyBackend"]


class NumpyBackend(KernelBackend):
    """Reference kernels: vectorised NumPy gather/scatter + scipy mat-vec."""

    name = "numpy"
    compiled = False

    def global_sweep(
        self, state: PushState, *, count_all_edges: bool = True
    ) -> None:
        from repro.core import kernels

        kernels.global_sweep(state, count_all_edges=count_all_edges)

    def frontier_push(
        self,
        state: PushState,
        nodes: np.ndarray,
        *,
        workspace: Workspace | None = None,
    ) -> None:
        from repro.core import kernels

        kernels.frontier_push(state, nodes, workspace=workspace)

    def sweep_active(
        self,
        state: PushState,
        r_max: float,
        *,
        dense_fraction: float,
        threshold_vec: np.ndarray | None = None,
        workspace: Workspace | None = None,
    ) -> int:
        from repro.core import kernels

        return kernels.sweep_active(
            state,
            r_max,
            dense_fraction=dense_fraction,
            threshold_vec=threshold_vec,
            workspace=workspace,
        )

    def block_global_sweep(
        self,
        state: BlockPushState,
        rows: np.ndarray,
        *,
        count_all_edges: bool = False,
        workspace: Workspace | None = None,
    ) -> None:
        from repro.core import kernels

        kernels.block_global_sweep(
            state, rows, count_all_edges=count_all_edges, workspace=workspace
        )

    def block_frontier_push(
        self,
        state: BlockPushState,
        rows: np.ndarray,
        masks: np.ndarray,
        *,
        workspace: Workspace | None = None,
    ) -> None:
        from repro.core import kernels

        kernels.block_frontier_push(state, rows, masks, workspace=workspace)

    def block_sweep_active(
        self,
        state: BlockPushState,
        rows: np.ndarray,
        masks: np.ndarray,
        *,
        dense_fraction: float,
        workspace: Workspace | None = None,
    ) -> np.ndarray:
        from repro.core import kernels

        return kernels.block_sweep_active(
            state,
            rows,
            masks,
            dense_fraction=dense_fraction,
            workspace=workspace,
        )
