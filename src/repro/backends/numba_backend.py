"""Numba-JIT compiled push kernels (the accelerated backend).

The reference kernels are NumPy-vectorised: a frontier push is a
multi-range gather, a ``repeat`` of shares, and a ``bincount`` scatter
— each an ``O(total)`` pass that materialises (or borrows from the
workspace) a frontier-sized temporary, plus per-call dispatch
overhead.  The same recurrence as one compiled loop over the CSR
arrays touches every edge exactly once, keeps the share arithmetic in
registers, and needs a single scratch vector for the entry residues —
"Accelerating Personalized PageRank Vector Computation" (PAPERS.md)
reports order-of-magnitude wins from exactly this transformation.

Everything here is gated on ``numba`` being importable, and the import
itself is **lazy**: this module only probes for the package
(``importlib.util.find_spec``), so ``import repro`` never pays numba's
multi-hundred-millisecond import; the real ``from numba import njit``
and the kernel compilation happen on the first
:class:`NumbaBackend` instantiation.  When numba is absent,
:data:`NUMBA_AVAILABLE` is False and the backend registry silently
serves the NumPy reference instead (with a one-time warning) —
``numba`` is an optional extra (``pip install repro-ppr[numba]``),
never a hard dependency.

Determinism: the compiled loops are deterministic (the ``prange``
parallelism is over *independent rows* of a block state; each row's
arithmetic is a fixed sequential order), but they accumulate sums
sequentially where NumPy reduces pairwise, so answers agree with the
reference to ~1e-12 L1 rather than bitwise.  The dead-end policy
routing and operation billing reuse the reference helpers in
:mod:`repro.core.kernels`, so those side channels cannot drift.
"""

from __future__ import annotations

import importlib.util
from types import SimpleNamespace
from typing import TYPE_CHECKING

import numpy as np

from repro.backends.base import KernelBackend

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from numpy.typing import DTypeLike

    from repro.core.residues import BlockPushState, PushState
    from repro.core.workspace import Workspace

__all__ = ["NUMBA_AVAILABLE", "numba_available", "NumbaBackend"]

#: Probe only — the actual import is deferred to first backend use.
NUMBA_AVAILABLE = importlib.util.find_spec("numba") is not None


def numba_available() -> bool:
    """Whether the compiled backend can actually run here."""
    return NUMBA_AVAILABLE


def _scratch(
    workspace: Workspace | None,
    key: str,
    size: int,
    dtype: DTypeLike = np.float64,
) -> np.ndarray:
    """A pooled buffer when a workspace is threaded, else a fresh one."""
    if workspace is not None:
        return workspace.buffer(key, size, dtype)
    return np.empty(size, dtype=np.dtype(dtype))


#: Compiled-kernel namespace, built (and numba imported) on first use.
_KERNELS: SimpleNamespace | None = None


def _compiled_kernels() -> SimpleNamespace:
    global _KERNELS
    if _KERNELS is None:
        _KERNELS = _build_kernels()
    return _KERNELS


def _build_kernels() -> SimpleNamespace:
    """Import numba and define the jitted loops (first-use only).

    All of them mutate the passed arrays in place and return the
    bookkeeping scalars (masses, billing counts) the Python wrappers
    feed back into the state exactly like the reference kernels do.
    ``cache=True`` persists the compiled artefacts so the JIT cost is
    paid once per machine, not once per process.
    """
    from numba import njit, prange

    @njit(cache=True)
    def frontier_push_loop(
        indptr: np.ndarray,
        indices: np.ndarray,
        residue: np.ndarray,
        reserve: np.ndarray,
        nodes: np.ndarray,
        r_old: np.ndarray,
        alpha: float,
    ) -> tuple[float, float, int, int]:
        """Simultaneous push of ``nodes``: settle pass then scatter pass.

        The two passes are what makes the loop *simultaneous*: every
        share is computed from the residues at entry (recorded into
        ``r_old``), never from mass deposited by an earlier node of
        the same frontier.
        """
        pushed_mass = 0.0
        for i in range(nodes.shape[0]):
            v = nodes[i]
            r = residue[v]
            r_old[i] = r
            reserve[v] += alpha * r
            residue[v] = 0.0
            pushed_mass += r
        scale = 1.0 - alpha
        dead_mass = 0.0
        edges = 0
        num_dead = 0
        for i in range(nodes.shape[0]):
            v = nodes[i]
            begin = indptr[v]
            end = indptr[v + 1]
            degree = end - begin
            if degree > 0:
                share = scale * r_old[i] / degree
                for e in range(begin, end):
                    residue[indices[e]] += share
                edges += degree
            else:
                dead_mass += scale * r_old[i]
                num_dead += 1
        return pushed_mass, dead_mass, edges, num_dead

    @njit(cache=True)
    def global_sweep_loop(
        pt_indptr: np.ndarray,
        pt_indices: np.ndarray,
        pt_data: np.ndarray,
        residue: np.ndarray,
        reserve: np.ndarray,
        out: np.ndarray,
        alpha: float,
        count_holders: bool,
        out_degree: np.ndarray,
    ) -> tuple[int, int]:
        """One Power-Iteration step: ``out = (1-alpha) * P^T r`` + reserves.

        Also counts the residue holders (and their degree mass) in the
        same pass when SimFwdPush-style billing is requested, so the
        billing never needs a second O(n) sweep.
        """
        n = residue.shape[0]
        scale = 1.0 - alpha
        holders = 0
        holder_degree = 0
        if count_holders:
            for v in range(n):
                if residue[v] > 0.0:
                    holders += 1
                    holder_degree += out_degree[v]
        for v in range(n):
            acc = 0.0
            for e in range(pt_indptr[v], pt_indptr[v + 1]):
                acc += pt_data[e] * residue[pt_indices[e]]
            out[v] = scale * acc
            reserve[v] += alpha * residue[v]
        return holders, holder_degree

    @njit(cache=True)
    def collect_active_loop(
        residue: np.ndarray,
        threshold_vec: np.ndarray,
        out_nodes: np.ndarray,
    ) -> int:
        """Gather active node ids (``r > threshold``) in ascending order."""
        count = 0
        for v in range(residue.shape[0]):
            if residue[v] > threshold_vec[v]:
                out_nodes[count] = v
                count += 1
        return count

    @njit(cache=True, parallel=True)
    def block_global_sweep_loop(
        pt_indptr: np.ndarray,
        pt_indices: np.ndarray,
        pt_data: np.ndarray,
        residue: np.ndarray,
        reserve: np.ndarray,
        rows: np.ndarray,
        out: np.ndarray,
        alpha: float,
        count_holders: bool,
        out_degree: np.ndarray,
        dead: np.ndarray,
        dead_masses: np.ndarray,
        holders: np.ndarray,
        holder_degrees: np.ndarray,
    ) -> None:
        """Per-row Power-Iteration steps, rows in parallel (``prange``).

        Rows never exchange mass, so parallelising the row dimension
        is race-free and each row's arithmetic stays a fixed
        sequential order (deterministic regardless of thread count).
        """
        n = residue.shape[1]
        scale = 1.0 - alpha
        for k in prange(rows.shape[0]):
            i = rows[k]
            dm = 0.0
            for j in range(dead.shape[0]):
                dm += residue[i, dead[j]]
            dead_masses[k] = scale * dm
            h = 0
            hd = 0
            if count_holders:
                for v in range(n):
                    if residue[i, v] > 0.0:
                        h += 1
                        hd += out_degree[v]
            holders[k] = h
            holder_degrees[k] = hd
            for v in range(n):
                acc = 0.0
                for e in range(pt_indptr[v], pt_indptr[v + 1]):
                    acc += pt_data[e] * residue[i, pt_indices[e]]
                out[k, v] = scale * acc
                reserve[i, v] += alpha * residue[i, v]
            # Safe to write back inside the same iteration: only row k
            # ever reads residue[i, :].
            for v in range(n):
                residue[i, v] = out[k, v]

    @njit(cache=True, parallel=True)
    def block_frontier_push_loop(
        indptr: np.ndarray,
        indices: np.ndarray,
        residue: np.ndarray,
        reserve: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        segments: np.ndarray,
        r_old: np.ndarray,
        alpha: float,
        pushed_masses: np.ndarray,
        dead_masses: np.ndarray,
        update_counts: np.ndarray,
    ) -> None:
        """Per-row simultaneous frontier pushes, rows in parallel.

        ``cols[segments[k]:segments[k+1]]`` lists row ``k``'s active
        nodes (ascending), so the work is proportional to the frontier
        sizes — no O(n) column scan per row.  ``update_counts`` matches
        the reference billing (edge targets plus one per dead-end
        push).
        """
        scale = 1.0 - alpha
        for k in prange(rows.shape[0]):
            i = rows[k]
            begin_k = segments[k]
            end_k = segments[k + 1]
            pushed = 0.0
            for idx in range(begin_k, end_k):
                v = cols[idx]
                r = residue[i, v]
                r_old[idx] = r
                reserve[i, v] += alpha * r
                residue[i, v] = 0.0
                pushed += r
            dead_mass = 0.0
            updates = 0
            for idx in range(begin_k, end_k):
                v = cols[idx]
                begin = indptr[v]
                end = indptr[v + 1]
                degree = end - begin
                if degree > 0:
                    share = scale * r_old[idx] / degree
                    for e in range(begin, end):
                        residue[i, indices[e]] += share
                    updates += degree
                else:
                    dead_mass += scale * r_old[idx]
                    updates += 1
            pushed_masses[k] = pushed
            dead_masses[k] = dead_mass
            update_counts[k] = updates

    return SimpleNamespace(
        frontier_push=frontier_push_loop,
        global_sweep=global_sweep_loop,
        collect_active=collect_active_loop,
        block_global_sweep=block_global_sweep_loop,
        block_frontier_push=block_frontier_push_loop,
    )


class NumbaBackend(KernelBackend):
    """Compiled push kernels; see the module docstring.

    Instantiation imports numba and materialises the jitted functions
    (the registry constructs backends lazily, so numpy-only usage
    never touches numba at all); the actual machine-code compilation
    still happens per-signature on first call, which the benchmark's
    warm-up runs keep out of every timed region.
    """

    name = "numba"
    compiled = True

    def __init__(self) -> None:
        self._kernels = _compiled_kernels()

    # -- single-source kernels -----------------------------------------
    def global_sweep(
        self, state: PushState, *, count_all_edges: bool = True
    ) -> None:
        from repro.core.kernels import _apply_dead_end_mass

        graph = state.graph
        pt_indptr, pt_indices, pt_data = graph.pt_csr_arrays()
        dead = graph.dead_ends
        dead_mass = 0.0
        if dead.shape[0]:
            dead_mass = (1.0 - state.alpha) * float(state.residue[dead].sum())
        # A fresh output vector, rebound like the reference's mat-vec
        # result (one O(n) allocation per sweep on either backend).
        out = np.empty(graph.num_nodes, dtype=np.float64)
        holders, holder_degree = self._kernels.global_sweep(
            pt_indptr,
            pt_indices,
            pt_data,
            state.residue,
            state.reserve,
            out,
            state.alpha,
            not count_all_edges,
            graph.out_degree,
        )
        if count_all_edges:
            state.counters.count_bulk_pushes(graph.num_nodes, graph.num_edges)
        else:
            state.counters.count_bulk_pushes(int(holders), int(holder_degree))
        state.residue = out
        _apply_dead_end_mass(state, dead_mass)
        state.refresh_r_sum()

    def frontier_push(
        self,
        state: PushState,
        nodes: np.ndarray,
        *,
        workspace: Workspace | None = None,
    ) -> None:
        from repro.core.kernels import _apply_dead_end_mass

        if nodes.shape[0] == 0:
            return
        graph = state.graph
        r_old = _scratch(workspace, "nb_r_pushed", nodes.shape[0])
        pushed_mass, dead_mass, edges, num_dead = self._kernels.frontier_push(
            graph.out_indptr,
            graph.out_indices,
            state.residue,
            state.reserve,
            np.ascontiguousarray(nodes, dtype=np.int64),
            r_old,
            state.alpha,
        )
        state.counters.count_bulk_pushes(
            nodes.shape[0], int(edges) + int(num_dead)
        )
        _apply_dead_end_mass(state, float(dead_mass))
        state.note_r_sum_delta(-state.alpha * float(pushed_mass))

    def sweep_active(
        self,
        state: PushState,
        r_max: float,
        *,
        dense_fraction: float,
        threshold_vec: np.ndarray | None = None,
        workspace: Workspace | None = None,
    ) -> int:
        graph = state.graph
        if threshold_vec is None:
            threshold_vec = state.threshold_vector(r_max)
        active = _scratch(
            workspace, "nb_active_nodes", graph.num_nodes, np.int64
        )
        count = int(
            self._kernels.collect_active(state.residue, threshold_vec, active)
        )
        if count == 0:
            return 0
        if count <= dense_fraction * graph.num_nodes:
            self.frontier_push(state, active[:count], workspace=workspace)
        else:
            self.global_sweep(state, count_all_edges=False)
        return count

    # -- block (multi-source) kernels ----------------------------------
    def block_global_sweep(
        self,
        state: BlockPushState,
        rows: np.ndarray,
        *,
        count_all_edges: bool = False,
        workspace: Workspace | None = None,
    ) -> None:
        graph = state.graph
        num_rows = rows.shape[0]
        if num_rows == 0:
            return
        pt_indptr, pt_indices, pt_data = graph.pt_csr_arrays()
        n = graph.num_nodes
        out = _scratch(workspace, "nb_block_sweep_out", num_rows * n).reshape(
            num_rows, n
        )
        # The jitted loop writes every row's slot, so empty scratch is
        # safe — no zero-fill needed.
        dead_masses = _scratch(workspace, "nb_block_dead_masses", num_rows)
        holders = _scratch(workspace, "nb_block_holders", num_rows, np.int64)
        holder_degrees = _scratch(
            workspace, "nb_block_holder_degrees", num_rows, np.int64
        )
        self._kernels.block_global_sweep(
            pt_indptr,
            pt_indices,
            pt_data,
            state.residue,
            state.reserve,
            np.ascontiguousarray(rows, dtype=np.int64),
            out,
            state.alpha,
            not count_all_edges,
            graph.out_degree,
            graph.dead_ends,
            dead_masses,
            holders,
            holder_degrees,
        )
        if count_all_edges:
            state.count_bulk_pushes(rows, graph.num_nodes, graph.num_edges)
        else:
            state.count_bulk_pushes(rows, holders, holder_degrees)
        self._route_block_dead_mass(state, rows, dead_masses)
        state.r_sum[rows] = state.residue[rows].sum(axis=1)

    def block_frontier_push(
        self,
        state: BlockPushState,
        rows: np.ndarray,
        masks: np.ndarray,
        *,
        workspace: Workspace | None = None,
    ) -> None:
        graph = state.graph
        num_rows = rows.shape[0]
        if num_rows == 0:
            return
        # Row-major nonzero: per row, active columns ascending — the
        # exact node order the single-source loop pushes in.  Flattened
        # (cols, segments) keeps the compiled work proportional to the
        # frontier sizes instead of O(rows x n) mask scans.
        frontier_sizes = np.count_nonzero(masks, axis=1)
        total = int(frontier_sizes.sum())
        if total == 0:
            return
        _, cols = np.nonzero(masks)
        segments = _scratch(
            workspace, "nb_block_segments", num_rows + 1, np.int64
        )
        segments[0] = 0
        np.cumsum(frontier_sizes, out=segments[1:])
        r_old = _scratch(workspace, "nb_block_r_pushed", total)
        # Fully written by the jitted loop (one slot per prange row), so
        # empty scratch is safe.
        pushed_masses = _scratch(workspace, "nb_block_pushed_masses", num_rows)
        dead_masses = _scratch(workspace, "nb_block_dead_masses", num_rows)
        update_counts = _scratch(
            workspace, "nb_block_update_counts", num_rows, np.int64
        )
        self._kernels.block_frontier_push(
            graph.out_indptr,
            graph.out_indices,
            state.residue,
            state.reserve,
            np.ascontiguousarray(rows, dtype=np.int64),
            np.ascontiguousarray(cols, dtype=np.int64),
            segments,
            r_old,
            state.alpha,
            pushed_masses,
            dead_masses,
            update_counts,
        )
        state.count_bulk_pushes(rows, frontier_sizes, update_counts)
        self._route_block_dead_mass(state, rows, dead_masses)
        state.note_r_sum_deltas(rows, -state.alpha * pushed_masses)

    def block_sweep_active(
        self,
        state: BlockPushState,
        rows: np.ndarray,
        masks: np.ndarray,
        *,
        dense_fraction: float,
        workspace: Workspace | None = None,
    ) -> np.ndarray:
        graph = state.graph
        num_active = np.count_nonzero(masks, axis=1)
        local = (num_active > 0) & (
            num_active <= dense_fraction * graph.num_nodes
        )
        dense = num_active > dense_fraction * graph.num_nodes
        if local.any():
            self.block_frontier_push(
                state, rows[local], masks[local], workspace=workspace
            )
        if dense.any():
            self.block_global_sweep(
                state,
                rows[dense],
                count_all_edges=False,
                workspace=workspace,
            )
        return num_active

    @staticmethod
    def _route_block_dead_mass(
        state: BlockPushState, rows: np.ndarray, dead_masses: np.ndarray
    ) -> None:
        """Apply per-row dead-end masses via the reference policy code."""
        from repro.core.kernels import _apply_block_dead_end_mass

        if not np.any(dead_masses != 0.0):
            return
        for position in range(rows.shape[0]):
            _apply_block_dead_end_mass(
                state, int(rows[position]), float(dead_masses[position])
            )
