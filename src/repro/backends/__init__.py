"""Pluggable compute backends for the push kernels.

Every vectorised solver in :mod:`repro.core` runs its inner loops
through one :class:`~repro.backends.base.KernelBackend` — the kernel
contract (:func:`global_sweep`, :func:`frontier_push`,
:func:`sweep_active`, their ``block_*`` variants) that used to be
hard-coded as the NumPy bodies of :mod:`repro.core.kernels`.  Two
backends ship built in:

``numpy``
    The always-available reference.  Selecting it explicitly is
    byte-identical to selecting nothing — golden traces are pinned to
    this path.
``numba``
    ``@njit(cache=True)`` compiled loops over the CSR arrays (with
    ``prange`` over the block kernels' row dimension).  Requires the
    optional extra ``pip install repro-ppr[numba]``; when numba is not
    importable the registry *falls back* to ``numpy`` with a one-time
    :class:`RuntimeWarning` instead of failing.

Selection precedence (first match wins):

1. an explicit ``backend=`` argument — a name or a
   :class:`KernelBackend` instance — on :class:`~repro.api.PPREngine`,
   a solver function, or ``--backend`` on the CLI;
2. the ``REPRO_PPR_BACKEND`` environment variable;
3. the default, ``numpy``.

Third-party backends plug in through :func:`register_backend`; an
unknown name raises :class:`~repro.errors.ParameterError` listing
every registered choice.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Callable

from repro.backends.base import KernelBackend
from repro.backends.numba_backend import numba_available
from repro.backends.numpy_backend import NumpyBackend
from repro.errors import ParameterError

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "register_backend",
    "registered_backends",
    "available_backends",
    "get_backend",
    "default_backend_name",
    "resolve_backend",
    "active_backend",
    "numba_available",
]

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV_VAR = "REPRO_PPR_BACKEND"

#: The reference backend every installation has.
DEFAULT_BACKEND = "numpy"


def _make_numba_backend() -> KernelBackend:
    from repro.backends.numba_backend import NumbaBackend

    assert NumbaBackend is not None  # guarded by the availability probe
    return NumbaBackend()


#: name -> (factory, availability probe).  The probe runs on every
#: lookup (cheap attribute reads) so tests can simulate numba's absence.
_FACTORIES: dict[
    str, tuple[Callable[[], KernelBackend], Callable[[], bool]]
] = {}
_INSTANCES: dict[str, KernelBackend] = {}
_FALLBACKS_WARNED: set[str] = set()
_LOCK = threading.Lock()


def _normalize(name: str) -> str:
    return name.strip().lower()


def register_backend(
    name: str,
    factory: Callable[[], KernelBackend],
    *,
    available: Callable[[], bool] | None = None,
) -> None:
    """Register a backend ``factory`` under ``name``.

    ``available`` is an optional probe; when it returns False the
    registry serves the ``numpy`` reference in this backend's place
    (with a one-time warning) instead of erroring — the pattern the
    built-in ``numba`` backend uses for its optional dependency.
    Re-registering a taken name raises.
    """
    key = _normalize(name)
    with _LOCK:
        if key in _FACTORIES:
            raise ParameterError(f"backend {name!r} is already registered")
        _FACTORIES[key] = (factory, available or (lambda: True))


def registered_backends() -> list[str]:
    """Every registered backend name, sorted (availability ignored)."""
    return sorted(_FACTORIES)


def available_backends() -> list[str]:
    """Backend names whose availability probe passes, sorted."""
    return sorted(
        name for name, (_, probe) in _FACTORIES.items() if probe()
    )


def get_backend(name: str) -> KernelBackend:
    """The backend registered under ``name`` (case-insensitive).

    An unknown name raises :class:`~repro.errors.ParameterError`
    listing every registered backend.  A known-but-unavailable backend
    (``numba`` without the optional extra installed) degrades to the
    ``numpy`` reference, warning once per process.
    """
    key = _normalize(name)
    entry = _FACTORIES.get(key)
    if entry is None:
        raise ParameterError(
            f"unknown backend {name!r}; available backends: "
            f"{', '.join(registered_backends())}"
        )
    factory, probe = entry
    if not probe():
        # Check-and-set the once-per-process flag under the lock, but
        # emit outside it: warnings.warn takes the warnings-registry
        # lock and may run arbitrary user filters/hooks, and holding
        # our registry lock across that invites lock-order inversions.
        with _LOCK:
            should_warn = key not in _FALLBACKS_WARNED
            if should_warn:
                _FALLBACKS_WARNED.add(key)
        if should_warn:
            warnings.warn(
                f"backend {key!r} is not available in this environment "
                f"(install the optional extra, e.g. "
                f"'pip install repro-ppr[{key}]'); falling back to the "
                f"{DEFAULT_BACKEND!r} reference backend",
                RuntimeWarning,
                stacklevel=2,
            )
        return get_backend(DEFAULT_BACKEND)
    with _LOCK:
        instance = _INSTANCES.get(key)
        if instance is None:
            instance = factory()
            _INSTANCES[key] = instance
    return instance


def default_backend_name() -> str:
    """The name the environment selects: ``$REPRO_PPR_BACKEND`` or numpy."""
    return os.environ.get(BACKEND_ENV_VAR, "").strip() or DEFAULT_BACKEND


def resolve_backend(
    backend: str | KernelBackend | None = None,
) -> KernelBackend:
    """Resolve an explicit choice, the env var, or the default — in order.

    Accepts ``None`` (consult :data:`BACKEND_ENV_VAR`, default
    ``numpy``), a registered name, or an already-constructed
    :class:`KernelBackend` (returned as-is, enabling ad-hoc custom
    backends without registration).
    """
    if isinstance(backend, KernelBackend):
        return backend
    if backend is not None:
        return get_backend(backend)
    name = default_backend_name()
    try:
        return get_backend(name)
    except ParameterError as exc:
        raise ParameterError(
            f"{exc} (selected via the {BACKEND_ENV_VAR} environment variable)"
        ) from None


def active_backend(
    backend: str | KernelBackend | None = None,
) -> KernelBackend | None:
    """Like :func:`resolve_backend`, but ``None`` for the reference.

    The kernel entry points in :mod:`repro.core.kernels` treat
    ``backend=None`` as "run the reference NumPy body directly" — the
    zero-indirection path golden traces are pinned to — so solvers
    resolve their ``backend`` parameter through this helper and only
    pay per-call dispatch when a non-reference backend actually won.
    """
    resolved = resolve_backend(backend)
    return None if resolved.name == DEFAULT_BACKEND else resolved


def _reset_backend_state() -> None:
    """Drop cached instances and warning flags (test isolation hook)."""
    with _LOCK:
        _INSTANCES.clear()
        _FALLBACKS_WARNED.clear()


register_backend("numpy", NumpyBackend)
register_backend(
    "numba", _make_numba_backend, available=numba_available
)
