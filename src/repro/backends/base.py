"""The kernel contract every compute backend implements.

A *backend* is one implementation of the bulk push operations that
every vectorised solver in :mod:`repro.core` reduces to — the contract
that used to be hard-coded as the NumPy bodies of
:mod:`repro.core.kernels`:

* :meth:`KernelBackend.global_sweep` / :meth:`KernelBackend.frontier_push`
  / :meth:`KernelBackend.sweep_active` — the single-source kernels that
  :func:`~repro.core.powerpush.power_push`, FIFO-FwdPush, SimFwdPush and
  the refinement loop are built from, and
* their ``block_*`` variants operating on a
  :class:`~repro.core.residues.BlockPushState` — the multi-source layer
  behind :func:`~repro.core.powerpush.power_push_block`.

Backends mutate the passed state exactly like the reference kernels:
reserve/residue updated in place, counters billed, ``r_sum`` kept
incrementally correct.  The **semantic** contract is strict — every
backend must compute the same pushes from the same residues-at-entry —
but the **bitwise** contract is graded:

* the ``numpy`` backend *is* the reference (it delegates to the
  :mod:`repro.core.kernels` bodies), so golden traces stay
  byte-identical;
* compiled backends (``numba``) may re-associate floating-point sums
  (sequential scalar accumulation instead of NumPy's pairwise
  reduction), so their answers agree to ~1e-12 L1 rather than
  bit-for-bit.  The equivalence suite in ``tests/test_backends.py``
  pins the tolerance down.

Scratch buffers: like the reference kernels, backend methods accept an
optional :class:`~repro.core.workspace.Workspace` and must serve their
temporaries from it when one is threaded, so allocation counts stay
flat across a solve regardless of backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    # Keeping repro.core out of the backends' import graph means the
    # solvers can import repro.backends at module level without cycles.
    from repro.core.residues import BlockPushState, PushState
    from repro.core.workspace import Workspace

__all__ = ["KernelBackend"]


class KernelBackend:
    """Abstract kernel set; see the module docstring for the contract.

    Attributes
    ----------
    name:
        Registry key (``"numpy"``, ``"numba"`` …).
    compiled:
        Whether the kernels run as ahead-of-time/JIT compiled loops
        (used by benchmarks to schedule an untimed warm-up call so JIT
        compilation never lands inside a timed region).
    """

    name: str = ""
    compiled: bool = False

    # -- single-source kernels -----------------------------------------
    def global_sweep(
        self, state: PushState, *, count_all_edges: bool = True
    ) -> None:
        """One simultaneous push of every node (a Power-Iteration step)."""
        raise NotImplementedError

    def frontier_push(
        self,
        state: PushState,
        nodes: np.ndarray,
        *,
        workspace: Workspace | None = None,
    ) -> None:
        """Simultaneously push exactly ``nodes`` (local gather/scatter)."""
        raise NotImplementedError

    def sweep_active(
        self,
        state: PushState,
        r_max: float,
        *,
        dense_fraction: float,
        threshold_vec: np.ndarray | None = None,
        workspace: Workspace | None = None,
    ) -> int:
        """Push all active nodes once; return how many were pushed."""
        raise NotImplementedError

    # -- block (multi-source) kernels ----------------------------------
    def block_global_sweep(
        self,
        state: BlockPushState,
        rows: np.ndarray,
        *,
        count_all_edges: bool = False,
        workspace: Workspace | None = None,
    ) -> None:
        """One Power-Iteration step for every row in ``rows`` at once."""
        raise NotImplementedError

    def block_frontier_push(
        self,
        state: BlockPushState,
        rows: np.ndarray,
        masks: np.ndarray,
        *,
        workspace: Workspace | None = None,
    ) -> None:
        """Push each row's own frontier in one shared pass."""
        raise NotImplementedError

    def block_sweep_active(
        self,
        state: BlockPushState,
        rows: np.ndarray,
        masks: np.ndarray,
        *,
        dense_fraction: float,
        workspace: Workspace | None = None,
    ) -> np.ndarray:
        """Sweep each row once, switching global/local per row."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "compiled" if self.compiled else "interpreted"
        return f"<{type(self).__name__} {self.name!r} ({kind})>"
