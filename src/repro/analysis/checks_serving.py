"""Serving-layer rules: version stamping, lock and shm discipline.

The serving layer multiplexes one mutable engine across reader threads
and (in sharded mode) worker processes; its standing hazards are
stale-version answers (a memoised result outliving the graph snapshot
it was computed on), writer-lock convoys (blocking work — including
process/pool construction — performed while holding the exclusive side
of the RWLock), and leaked ``/dev/shm`` segments (a
``SharedMemory(create=True)`` with no reachable ``unlink`` path).  All
are invariants the type system cannot express, so they live here.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.corpus import SourceFile
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, dotted_name, register_rule

_MEMO_PACKAGES = ("repro.api", "repro.serving")

#: Method names that mark a class as a read side of a memo/cache.
_GETTERS = frozenset({"get", "lookup", "fetch", "__getitem__"})
#: Method names that mark a class as a write side of a memo/cache.
_PUTTERS = frozenset({"put", "insert", "store", "set", "__setitem__"})


@register_rule
class VersionStampRule(Rule):
    id = "version-stamp"
    summary = (
        "memoising classes in repro.api / repro.serving stamp and "
        "check a graph version"
    )
    invariant = (
        "Every memo keyed on graph-derived data carries the graph "
        "version it was computed under and validates it on lookup; a "
        "version-blind cache silently serves answers for a graph that "
        "no longer exists after apply_updates."
    )

    def check_file(self, file: SourceFile) -> Iterable[Finding]:
        if not file.in_package(*_MEMO_PACKAGES):
            return
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if "Cache" not in node.name:
                continue
            methods = {
                item.name
                for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
            has_get = bool(methods & _GETTERS) or any(
                name.startswith("get") for name in methods
            )
            has_put = bool(methods & _PUTTERS) or any(
                name.startswith("put") for name in methods
            )
            if not (has_get and has_put):
                # Stats holders and the like: Cache in the name but no
                # lookup/store surface, nothing to go stale.
                continue
            if not self._mentions_version(node):
                yield self.finding(
                    file,
                    node,
                    f"memoising class {node.name} never references a "
                    f"version; stamp entries with the graph version and "
                    f"check it on lookup so apply_updates invalidates "
                    f"stale answers",
                )

    @staticmethod
    def _mentions_version(cls: ast.ClassDef) -> bool:
        for node in ast.walk(cls):
            if isinstance(node, ast.Name) and "version" in node.id.lower():
                return True
            if (
                isinstance(node, ast.Attribute)
                and "version" in node.attr.lower()
            ):
                return True
            if isinstance(node, ast.arg) and "version" in node.arg.lower():
                return True
        return False


@register_rule
class LockDisciplineRule(Rule):
    id = "lock-discipline"
    summary = (
        "no blocking calls or process construction while holding the "
        "writer lock; no bare or swallowed excepts in the serving layer"
    )
    invariant = (
        "The writer side of the RWLock is held only for pointer swaps: "
        "sleeping, untimed future/event waits, engine solves, or "
        "forking a worker process/pool under it convoy every reader "
        "(and a fork taken while the lock is held duplicates the held "
        "lock into the child).  Exceptions around future resolution "
        "are either re-raised or routed to the future, never dropped."
    )

    _SERVING_PACKAGE = "repro.serving"
    #: Attribute calls that block their caller when invoked untimed.
    _UNTIMED_BLOCKERS = frozenset({"result", "wait"})
    #: Engine entry points that run a full solve.
    _SOLVE_ATTRS = frozenset({"solve", "batch_query"})
    #: Constructors that fork worker processes (or whole pools of them).
    _PROCESS_CTORS = frozenset(
        {"Process", "Pool", "ProcessPoolExecutor", "fork"}
    )

    def check_file(self, file: SourceFile) -> Iterable[Finding]:
        if not file.in_package(self._SERVING_PACKAGE):
            return
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if isinstance(node, ast.With):
                yield from self._check_write_region(file, node)
            elif isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(file, node)

    # -- writer-lock regions -------------------------------------------
    def _check_write_region(
        self, file: SourceFile, node: ast.With
    ) -> Iterable[Finding]:
        if not any(
            self._is_write_acquire(item.context_expr) for item in node.items
        ):
            return
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                blocked = self._blocking_reason(sub)
                if blocked is not None:
                    yield self.finding(
                        file,
                        sub,
                        f"{blocked} inside a held writer-lock region; "
                        f"the write side of the RWLock must be held "
                        f"only for swap-in, never across blocking work",
                    )

    @staticmethod
    def _is_write_acquire(expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        name = dotted_name(expr.func)
        return name is not None and name.split(".")[-1] == "write"

    def _blocking_reason(self, call: ast.Call) -> str | None:
        name = dotted_name(call.func)
        if name == "time.sleep" or (
            name is not None and name.endswith(".sleep")
        ):
            return f"blocking sleep {name}()"
        if name is not None and name.split(".")[-1] in self._PROCESS_CTORS:
            return f"process/pool construction {name}()"
        if not isinstance(call.func, ast.Attribute):
            return None
        attr = call.func.attr
        if attr in self._SOLVE_ATTRS:
            return f"engine solve .{attr}()"
        if attr in self._UNTIMED_BLOCKERS and not call.args:
            has_timeout = any(
                kw.arg == "timeout" for kw in call.keywords
            )
            if not has_timeout:
                return f"untimed .{attr}()"
        return None

    # -- exception hygiene ---------------------------------------------
    def _check_handler(
        self, file: SourceFile, handler: ast.ExceptHandler
    ) -> Iterable[Finding]:
        if handler.type is None:
            yield self.finding(
                file,
                handler,
                "bare except: in the serving layer; catch a concrete "
                "exception type and route it to the pending future",
            )
            return
        name = dotted_name(handler.type)
        if name not in ("Exception", "BaseException"):
            return
        if self._swallows(handler):
            yield self.finding(
                file,
                handler,
                f"except {name} with a pass-only body swallows the "
                f"error; re-raise or attach it to the future so a "
                f"failed request never hangs its caller",
            )

    @staticmethod
    def _swallows(handler: ast.ExceptHandler) -> bool:
        meaningful = [
            stmt
            for stmt in handler.body
            if not isinstance(stmt, ast.Pass)
            and not (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
            )
        ]
        return not meaningful


@register_rule
class AsyncDisciplineRule(Rule):
    id = "async-discipline"
    summary = (
        "no blocking calls (time.sleep, untimed .result()/.wait()) "
        "inside async functions in the serving layer"
    )
    invariant = (
        "An async def in repro.serving runs on the event loop: one "
        "time.sleep or untimed future .result()/.wait() stalls every "
        "in-flight request at once.  Blocking work belongs in the "
        "executor (run_in_executor) or behind asyncio.wrap_future / "
        "asyncio.wait_for; pauses use asyncio.sleep.  Sync defs "
        "nested inside an async def are exempt — they run wherever "
        "they are called, typically the executor."
    )

    _SERVING_PACKAGE = "repro.serving"
    #: Attribute calls that park the calling thread when untimed.
    _UNTIMED_BLOCKERS = frozenset({"result", "wait"})

    def check_file(self, file: SourceFile) -> Iterable[Finding]:
        if not file.in_package(self._SERVING_PACKAGE):
            return
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(file, node)

    def _check_async_body(
        self, file: SourceFile, fn: ast.AsyncFunctionDef
    ) -> Iterable[Finding]:
        # Walk the async function's own statements only: a nested def
        # is its own execution context (sync helpers run off-loop via
        # the executor; nested async defs are visited on their own by
        # the outer walk), so the scan resets at function boundaries.
        stack: list[ast.AST] = list(fn.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                reason = self._blocking_reason(node)
                if reason is not None:
                    yield self.finding(
                        file,
                        node,
                        f"{reason} inside async def {fn.name}() blocks "
                        f"the event loop; use asyncio.sleep / "
                        f"wrap_future / wait_for, or push the call into "
                        f"run_in_executor",
                    )
            stack.extend(ast.iter_child_nodes(node))

    def _blocking_reason(self, call: ast.Call) -> str | None:
        name = dotted_name(call.func)
        if name == "sleep" or (
            name is not None
            and name.endswith(".sleep")
            and not name.endswith("asyncio.sleep")
        ):
            return f"blocking sleep {name}()"
        if not isinstance(call.func, ast.Attribute):
            return None
        attr = call.func.attr
        if attr in self._UNTIMED_BLOCKERS and not call.args:
            has_timeout = any(kw.arg == "timeout" for kw in call.keywords)
            if not has_timeout:
                return f"untimed .{attr}()"
        return None


#: Method names that count as a teardown surface for an owned segment.
_SHM_CLEANUP_METHODS = frozenset(
    {"close", "unlink", "cleanup", "__exit__", "__del__"}
)

_AnyFunc = ast.FunctionDef | ast.AsyncFunctionDef
#: A ``SharedMemory(create=True)`` call with its enclosing scopes.
_CreationSite = tuple[ast.ClassDef | None, "_AnyFunc | None", ast.Call]


@register_rule
class ShmDisciplineRule(Rule):
    id = "shm-discipline"
    summary = (
        "every SharedMemory(create=True) has a reachable unlink() in a "
        "finally/except or teardown-method path"
    )
    invariant = (
        "A process that creates a shared-memory segment owns its "
        "lifetime: the creation site is guarded so a half-built "
        "segment is unlinked on failure, or the owning class exposes a "
        "teardown method (close/unlink/cleanup/__exit__) that unlinks "
        "it.  A create with no reachable unlink path leaks a "
        "/dev/shm file that outlives every process."
    )

    def check_file(self, file: SourceFile) -> Iterable[Finding]:
        assert file.tree is not None
        for cls, fn, call in self._creations(file.tree):
            if fn is not None and self._guarded_locally(fn):
                continue
            if cls is not None and self._class_has_teardown(cls):
                continue
            yield self.finding(
                file,
                call,
                "SharedMemory(create=True) with no reachable unlink(): "
                "guard the creation with a finally/except that unlinks "
                "the half-built segment, or give the owning class a "
                "close/unlink/cleanup method that does",
            )

    # -- locating creation sites with their enclosing scopes -----------
    @classmethod
    def _creations(cls, tree: ast.Module) -> Iterable["_CreationSite"]:
        def visit(
            node: ast.AST,
            in_class: ast.ClassDef | None,
            in_fn: "_AnyFunc | None",
        ) -> Iterable["_CreationSite"]:
            for child in ast.iter_child_nodes(node):
                next_class, next_fn = in_class, in_fn
                if isinstance(child, ast.ClassDef):
                    next_class = child
                elif isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    next_fn = child
                if isinstance(child, ast.Call) and cls._is_create(child):
                    yield in_class, in_fn, child
                yield from visit(child, next_class, next_fn)

        yield from visit(tree, None, None)

    @staticmethod
    def _is_create(call: ast.Call) -> bool:
        name = dotted_name(call.func)
        if name is None or name.split(".")[-1] != "SharedMemory":
            return False
        return any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in call.keywords
        )

    # -- the two sanctioned cleanup shapes -----------------------------
    @staticmethod
    def _calls_unlink(node: ast.AST) -> bool:
        return any(
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "unlink"
            for sub in ast.walk(node)
        )

    @classmethod
    def _guarded_locally(
        cls, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        """A try in the creating function unlinks on failure/teardown."""
        for node in ast.walk(fn):
            if not isinstance(node, ast.Try):
                continue
            for region in (*node.handlers, *node.finalbody):
                if cls._calls_unlink(region):
                    return True
        return False

    @classmethod
    def _class_has_teardown(cls, owner: ast.ClassDef) -> bool:
        """The owning class exposes a teardown method that unlinks."""
        return any(
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name in _SHM_CLEANUP_METHODS
            and cls._calls_unlink(item)
            for item in owner.body
        )


@register_rule
class RetryDisciplineRule(Rule):
    id = "retry-discipline"
    summary = (
        "retry loops in repro.serving are bounded, backed off, and "
        "deadline-aware; no bare while-True around cross-process sends"
    )
    invariant = (
        "A retry that is not bounded by an attempt budget and the "
        "request deadline turns one dead shard into an infinite "
        "cross-process send loop (a hung future with a hot CPU "
        "attached).  Every function on the retry path names its "
        "attempt counter and the deadline it respects — or delegates "
        "to one that does — and every while-True that ships messages "
        "to another process has a reachable break/return/raise."
    )

    _SERVING_PACKAGE = "repro.serving"
    #: Queue/pipe methods that cross a process boundary.
    _SEND_ATTRS = frozenset({"put", "put_nowait", "send", "send_bytes"})
    _RETRY_MARKERS = ("retry", "resubmit")

    def check_file(self, file: SourceFile) -> Iterable[Finding]:
        if not file.in_package(self._SERVING_PACKAGE):
            return
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if isinstance(node, ast.While):
                yield from self._check_loop(file, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_retry_function(file, node)

    # -- while True around cross-process sends -------------------------
    def _check_loop(
        self, file: SourceFile, loop: ast.While
    ) -> Iterable[Finding]:
        if not (
            isinstance(loop.test, ast.Constant) and loop.test.value is True
        ):
            return
        # Sends count anywhere lexically inside the loop (a helper
        # defined and called per-iteration still sends per-iteration);
        # exits count only in the loop's own control flow.
        sends = [
            sub
            for sub in ast.walk(loop)
            if isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in self._SEND_ATTRS
        ]
        if not sends:
            return
        if any(
            isinstance(sub, (ast.Break, ast.Return, ast.Raise))
            for sub in self._walk_loop(loop)
        ):
            return
        yield self.finding(
            file,
            sends[0],
            "while True loop sends to another process with no "
            "break/return/raise: an unreachable peer turns this into "
            "an unbounded retry; bound it with an attempt budget or "
            "an exit condition",
        )

    @staticmethod
    def _walk_loop(loop: ast.While) -> Iterable[ast.AST]:
        """Walk a loop body without descending into nested defs (their
        control flow does not terminate this loop)."""

        def visit(node: ast.AST) -> Iterable[ast.AST]:
            for child in ast.iter_child_nodes(node):
                yield child
                if not isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
                ):
                    yield from visit(child)

        for stmt in loop.body:
            yield stmt
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                yield from visit(stmt)

    # -- retry/resubmit functions --------------------------------------
    def _check_retry_function(
        self, file: SourceFile, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterable[Finding]:
        lowered = fn.name.lower()
        if not any(marker in lowered for marker in self._RETRY_MARKERS):
            return
        names = {
            part.lower()
            for node in ast.walk(fn)
            for part in self._identifier_parts(node)
        }
        deadline_aware = any("deadline" in name for name in names)
        bounded = any("attempt" in name for name in names) or any(
            "retry" in name
            for node in ast.walk(fn)
            if isinstance(node, ast.Call)
            for name in [dotted_name(node.func) or ""]
            if name.lower() != fn.name.lower()
        )
        if deadline_aware and bounded:
            return
        missing = []
        if not bounded:
            missing.append(
                "an attempt budget (or delegation to a *retry* helper)"
            )
        if not deadline_aware:
            missing.append("the request deadline")
        yield self.finding(
            file,
            fn,
            f"retry-path function {fn.name}() never references "
            + " or ".join(missing)
            + "; unbounded or deadline-blind retries hang futures "
            "past the caller's budget",
        )

    @staticmethod
    def _identifier_parts(node: ast.AST) -> Iterable[str]:
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr
        elif isinstance(node, ast.arg):
            yield node.arg
        elif isinstance(node, ast.keyword) and node.arg:
            yield node.arg
