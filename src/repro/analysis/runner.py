"""The analysis driver behind ``repro-ppr lint`` / ``python -m repro.analysis``.

Loads a corpus, runs every (selected) rule over it, applies reasoned
suppressions, and renders the surviving findings.  Exit status is the
contract CI gates on: 0 for a clean tree, 1 when any gating finding
survives, 2 for usage errors.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Iterable, Sequence, TextIO

# Importing the check modules registers the built-in rules.
from repro.analysis import (  # noqa: F401  (imported for registration)
    checks_backends,
    checks_determinism,
    checks_durability,
    checks_serving,
    reporters,
)
from repro.analysis.corpus import Corpus, SourceFile, load_corpus
from repro.analysis.findings import Finding
from repro.analysis.rules import (
    Rule,
    all_rules,
    get_rule,
    register_rule,
    rule_ids,
)
from repro.errors import ParameterError, ReproError

__all__ = [
    "AnalysisResult",
    "Analyzer",
    "run_lint",
    "add_lint_arguments",
    "lint_from_args",
    "main",
    "DEFAULT_LINT_PATHS",
]

#: Paths linted when none are given (the project's own source tree).
DEFAULT_LINT_PATHS = ("src/repro",)


@register_rule
class SuppressionHygieneRule(Rule):
    id = "suppression-hygiene"
    summary = (
        "every allow comment names a registered rule and gives a reason"
    )
    invariant = (
        "Suppressions are documentation: a reasonless or unknown-rule "
        "allow comment suppresses nothing and is itself a finding, so "
        "the tree never accumulates silent exemptions."
    )

    def check_file(self, file: SourceFile) -> Iterable[Finding]:
        known = set(rule_ids())
        for suppression in file.suppressions.suppressions:
            if not suppression.reason:
                yield Finding(
                    rule=self.id,
                    path=str(file.path),
                    line=suppression.line,
                    col=0,
                    message=(
                        f"allow[{suppression.rule}] without a reason "
                        f"suppresses nothing; append "
                        f"' -- <why the invariant does not apply here>'"
                    ),
                )
            elif suppression.rule not in known:
                yield Finding(
                    rule=self.id,
                    path=str(file.path),
                    line=suppression.line,
                    col=0,
                    message=(
                        f"allow names unknown rule "
                        f"{suppression.rule!r}; registered rules: "
                        f"{', '.join(sorted(known))}"
                    ),
                )


@dataclass
class AnalysisResult:
    """Everything one lint run produced (reporters consume this)."""

    findings: list[Finding]
    checked_files: int
    rules: list[Rule]


class Analyzer:
    """Runs a rule set over a corpus and applies suppressions."""

    def __init__(self, rules: Sequence[Rule] | None = None) -> None:
        self.rules: list[Rule] = (
            list(rules) if rules is not None else all_rules()
        )

    def run(self, corpus: Corpus) -> AnalysisResult:
        raw: list[Finding] = []
        for file in corpus:
            if file.parse_error is not None:
                raw.append(file.parse_error)
        for rule in self.rules:
            if rule.scope == "file":
                for file in corpus:
                    if file.tree is None:
                        continue
                    raw.extend(rule.check_file(file))
            else:
                raw.extend(rule.check_project(corpus))
        by_path = {str(file.path): file for file in corpus}
        kept: list[Finding] = []
        for finding in raw:
            source = by_path.get(finding.path)
            if source is not None and source.suppressions.is_suppressed(
                finding.rule, finding.line
            ):
                continue
            kept.append(finding)
        kept.sort(key=lambda f: f.sort_key())
        return AnalysisResult(
            findings=kept,
            checked_files=len(corpus),
            rules=self.rules,
        )


def _split_rule_args(values: Sequence[str] | None) -> list[str] | None:
    if values is None:
        return None
    rules: list[str] = []
    for value in values:
        rules.extend(part.strip() for part in value.split(",") if part.strip())
    return rules


def resolve_rules(
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Rule]:
    """The rule set a run uses; unknown ids raise ParameterError."""
    if select:
        rules = [get_rule(rule_id) for rule_id in select]
    else:
        rules = all_rules()
    if ignore:
        for rule_id in ignore:
            get_rule(rule_id)  # validate
        ignored = set(ignore)
        rules = [rule for rule in rules if rule.id not in ignored]
    return rules


def run_lint(
    paths: Sequence[str],
    *,
    fmt: str = "text",
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    stream: TextIO | None = None,
) -> int:
    """Lint ``paths``; returns the process exit code (0 clean, 1 findings)."""
    out = stream if stream is not None else sys.stdout
    rules = resolve_rules(select, ignore)
    try:
        corpus = load_corpus(paths)
    except FileNotFoundError as exc:
        raise ParameterError(str(exc)) from exc
    result = Analyzer(rules).run(corpus)
    if fmt == "json":
        reporters.render_json(result, out)
    else:
        reporters.render_text(result, out)
    return 1 if any(f.severity.gates for f in result.findings) else 0


# ---------------------------------------------------------------------------
# argparse plumbing shared by `repro-ppr lint` and `python -m repro.analysis`
# ---------------------------------------------------------------------------

def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=(
            "files or directories to lint "
            f"(default: {' '.join(DEFAULT_LINT_PATHS)})"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE[,RULE...]",
        default=None,
        help="run only these rule ids",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE[,RULE...]",
        default=None,
        help="skip these rule ids",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the selected rules and exit",
    )


def lint_from_args(args: argparse.Namespace) -> int:
    select = _split_rule_args(args.select)
    ignore = _split_rule_args(args.ignore)
    if args.list_rules:
        for rule in resolve_rules(select, ignore):
            print(f"{rule.id:<26} {rule.scope:<8} {rule.summary}")
        return 0
    paths = list(args.paths) if args.paths else list(DEFAULT_LINT_PATHS)
    return run_lint(paths, fmt=args.format, select=select, ignore=ignore)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description=(
            "Project-invariant static checker for the repro PPR stack "
            "(determinism, backend parity, lock discipline)."
        ),
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return lint_from_args(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
