"""Finding and severity types for the static checker.

A :class:`Finding` is one rule violation pinned to a ``path:line:col``
location.  Findings are plain data — the reporters in
:mod:`repro.analysis.reporters` render them as text or JSON, and the
exit code of ``repro-ppr lint`` is derived from the surviving (i.e.
unsuppressed) findings' severities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class Severity(enum.Enum):
    """How a finding gates the lint run.

    ``ERROR`` findings fail the run (exit code 1); ``WARNING`` findings
    are reported but do not gate unless ``--strict`` promotes them.
    """

    WARNING = "warning"
    ERROR = "error"

    @property
    def gates(self) -> bool:
        """Whether this severity fails the run by default."""
        return self is Severity.ERROR

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at a precise source location.

    Attributes
    ----------
    rule:
        The rule id (kebab-case, e.g. ``"rng-discipline"``).
    path:
        Path of the offending file, as given to the analyzer.
    line, col:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable description of the violation (one line).
    severity:
        Gate level; rules emit their default unless overridden.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR

    @property
    def location(self) -> str:
        """``path:line:col`` — the clickable anchor reporters print."""
        return f"{self.path}:{self.line}:{self.col}"

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> dict[str, Any]:
        """JSON-reporter representation (stable schema, see reporters)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
