"""The pluggable rule registry behind ``repro-ppr lint``.

A rule is a subclass of :class:`Rule` registered with
:func:`register_rule`.  Each one encodes a project invariant the
language cannot express — determinism, backend parity, lock discipline
— and reports violations as :class:`~repro.analysis.findings.Finding`
objects.  Two scopes exist:

``file``
    :meth:`Rule.check_file` is called once per parsed source file;
    the rule walks that file's AST in isolation.
``project``
    :meth:`Rule.check_project` is called once with the whole corpus;
    the rule cross-references modules (e.g. the numpy backend against
    the numba backend).  When the corpus lacks the modules a project
    rule anchors on, the rule reports nothing — linting a lone file
    must not fabricate parity violations.

Third-party rules plug in through :func:`register_rule` exactly like
the built-ins in the ``checks_*`` modules; duplicate ids raise.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.corpus import Corpus, SourceFile
from repro.analysis.findings import Finding, Severity
from repro.errors import ParameterError

__all__ = [
    "Rule",
    "register_rule",
    "all_rules",
    "get_rule",
    "rule_ids",
    "dotted_name",
]

_RULES: dict[str, "Rule"] = {}


class Rule:
    """One checkable project invariant.

    Attributes
    ----------
    id:
        Kebab-case identifier used in reports and allow comments.
    summary:
        One-line description for ``repro-ppr lint --list-rules``.
    invariant:
        The contract this rule enforces, in prose (surfaced in docs).
    scope:
        ``"file"`` or ``"project"`` (see the module docstring).
    severity:
        Default severity of this rule's findings.
    """

    id: str = ""
    summary: str = ""
    invariant: str = ""
    scope: str = "file"
    severity: Severity = Severity.ERROR

    def check_file(self, file: SourceFile) -> Iterable[Finding]:
        """Findings for one file (``file.tree`` is never ``None``)."""
        return ()

    def check_project(self, corpus: Corpus) -> Iterable[Finding]:
        """Findings spanning the whole corpus (project-scope rules)."""
        return ()

    # -- helpers shared by the concrete rules ---------------------------
    def finding(
        self,
        file: SourceFile,
        node: ast.AST,
        message: str,
        *,
        severity: Severity | None = None,
    ) -> Finding:
        """A finding anchored at ``node``'s location in ``file``."""
        return Finding(
            rule=self.id,
            path=str(file.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=severity or self.severity,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Rule {self.id!r} ({self.scope})>"


def register_rule(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register ``rule_cls``.

    Duplicate ids and malformed declarations raise
    :class:`~repro.errors.ParameterError` at import time — a broken
    rule set must never silently lint less.
    """
    rule = rule_cls()
    if not rule.id:
        raise ParameterError(f"rule {rule_cls.__name__} declares no id")
    if rule.scope not in ("file", "project"):
        raise ParameterError(
            f"rule {rule.id!r} has invalid scope {rule.scope!r}"
        )
    if rule.id in _RULES:
        raise ParameterError(f"rule {rule.id!r} is already registered")
    _RULES[rule.id] = rule
    return rule_cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def rule_ids() -> list[str]:
    return sorted(_RULES)


def get_rule(rule_id: str) -> Rule:
    rule = _RULES.get(rule_id)
    if rule is None:
        raise ParameterError(
            f"unknown rule {rule_id!r}; registered rules: "
            f"{', '.join(rule_ids())}"
        )
    return rule


# ---------------------------------------------------------------------------
# Small AST utilities every check module shares
# ---------------------------------------------------------------------------

def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in ``tree``, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def parameter_names(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[str]:
    """All named parameters of ``fn`` (positional, kw-only; no *args/**kw)."""
    args = fn.args
    return [
        arg.arg
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    ]


def has_kwargs(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return fn.args.kwarg is not None
