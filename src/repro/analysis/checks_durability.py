"""Durability rules: atomic-write and fsync discipline.

The durability layer's guarantees are only as strong as their weakest
writer: one ``path.write_text(...)`` of a manifest can leave a torn
JSON file after a crash, and a WAL append that skips ``os.fsync``
acknowledges updates the disk never saw.  Both hazards are structural
— the code still works on every run that doesn't crash — so they live
here as lint rules rather than tests.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.corpus import SourceFile
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, dotted_name, register_rule

#: Packages whose modules persist artefacts and must therefore route
#: every file write through :mod:`repro.durability.atomic`.
_PERSISTENCE_PACKAGES = (
    "repro.api",
    "repro.serving",
    "repro.perf",
    "repro.durability",
)

#: The one module allowed to touch files directly — it *implements*
#: the sanctioned write path.
_SANCTIONED_MODULE = "repro.durability.atomic"

#: Method names that perform a whole-file write when called on a path.
_RAW_WRITERS = frozenset({"write_text", "write_bytes"})


@register_rule
class DurabilityDisciplineRule(Rule):
    id = "durability-discipline"
    summary = (
        "persistent artefacts go through repro.durability.atomic; "
        "WAL appends fsync before returning"
    )
    invariant = (
        "Modules in repro.api / repro.serving / repro.perf / "
        "repro.durability never call path.write_text, "
        "path.write_bytes, or json.dump directly — a crash mid-write "
        "leaves a torn artefact that atomic_write_* is designed to "
        "make impossible — and every append method of a WAL class "
        "reaches os.fsync so no acknowledged record can predate its "
        "own durability."
    )

    def check_file(self, file: SourceFile) -> Iterable[Finding]:
        if not file.in_package(*_PERSISTENCE_PACKAGES):
            return
        if file.module == _SANCTIONED_MODULE:
            return
        assert file.tree is not None
        yield from self._raw_write_findings(file)
        yield from self._wal_fsync_findings(file)

    # -- raw whole-file writes -----------------------------------------
    def _raw_write_findings(self, file: SourceFile) -> Iterable[Finding]:
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in _RAW_WRITERS:
                yield self.finding(
                    file,
                    node,
                    f"direct .{func.attr}() in a persistence-bearing "
                    f"module: a crash mid-write leaves a torn file; "
                    f"use repro.durability.atomic.atomic_write_*",
                )
            elif func.attr == "dump" and dotted_name(func) == "json.dump":
                yield self.finding(
                    file,
                    node,
                    "json.dump() writes incrementally and tears on "
                    "crash; use repro.durability.atomic."
                    "atomic_write_json",
                )

    # -- WAL append fsync reachability ---------------------------------
    def _wal_fsync_findings(self, file: SourceFile) -> Iterable[Finding]:
        if not file.in_package("repro.durability"):
            return
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if "Log" not in node.name:
                continue
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if not item.name.startswith("append"):
                    continue
                if not self._calls_fsync(item):
                    yield self.finding(
                        file,
                        item,
                        f"{node.name}.{item.name} never reaches "
                        f"os.fsync: records could be acknowledged "
                        f"before they are durable",
                    )

    @staticmethod
    def _calls_fsync(func: ast.FunctionDef) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and name.split(".")[-1] == "fsync":
                    return True
        return False
