"""Finding reporters: human text and machine JSON.

Both render an :class:`~repro.analysis.runner.AnalysisResult`.  The
JSON document is a stable schema (``"version": 1``) consumed by the CI
lint job's step summary; add fields rather than renaming them.
"""

from __future__ import annotations

import json
from typing import TextIO

__all__ = ["render_text", "render_json", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1


def render_text(result: "AnalysisResult", stream: TextIO) -> None:  # noqa: F821
    """``path:line:col: rule-id: message`` lines plus a summary line."""
    for finding in result.findings:
        stream.write(
            f"{finding.location}: {finding.rule}: {finding.message}\n"
        )
    total = len(result.findings)
    if total == 0:
        stream.write(
            f"repro-analysis: {result.checked_files} files checked, "
            f"no findings\n"
        )
    else:
        noun = "finding" if total == 1 else "findings"
        stream.write(
            f"repro-analysis: {result.checked_files} files checked, "
            f"{total} {noun}\n"
        )


def render_json(result: "AnalysisResult", stream: TextIO) -> None:  # noqa: F821
    """One JSON document describing the whole run."""
    by_rule: dict[str, int] = {}
    for finding in result.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    document = {
        "version": JSON_SCHEMA_VERSION,
        "tool": "repro-analysis",
        "checked_files": result.checked_files,
        "rules": [
            {
                "id": rule.id,
                "scope": rule.scope,
                "summary": rule.summary,
            }
            for rule in result.rules
        ],
        "findings": [finding.as_dict() for finding in result.findings],
        "summary": {
            "total": len(result.findings),
            "gating": sum(
                1 for f in result.findings if f.severity.gates
            ),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
    json.dump(document, stream, indent=2, sort_keys=False)
    stream.write("\n")
