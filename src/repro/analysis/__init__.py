"""repro.analysis: project-invariant static checks gating CI.

An AST-based checker for the invariants this codebase is built on but
Python cannot express: (seed, source) determinism, numpy/numba backend
parity, registry/signature sync, version-stamped memoisation, writer
lock discipline, and workspace-pooled scratch in kernels.

Run it as ``repro-ppr lint`` or ``python -m repro.analysis``.  Rules
plug in through :func:`repro.analysis.rules.register_rule`; see
CONTRIBUTING.md for the invariant -> rule -> suppression table.
"""

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import Rule, all_rules, get_rule, register_rule, rule_ids
from repro.analysis.runner import Analyzer, AnalysisResult, main, run_lint

__all__ = [
    "AnalysisResult",
    "Analyzer",
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "main",
    "register_rule",
    "rule_ids",
    "run_lint",
]
