"""Source collection: files parsed once, shared by every rule.

The analyzer parses each file a single time into a :class:`SourceFile`
(AST + suppression comments + inferred module name) and hands the whole
:class:`Corpus` to every rule.  Per-file rules walk one tree at a time;
project rules (backend parity, registry/signature sync) cross-reference
several modules, which is why the corpus indexes files by module name.

Module names are inferred from the path: everything from the last
``repro`` directory component down (``src/repro/core/kernels.py`` ->
``repro.core.kernels``).  Fixture trees used by the tests reproduce the
same layout under a temporary directory, so inference needs no
installed package.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.suppressions import SuppressionSet, parse_suppressions

__all__ = ["SourceFile", "Corpus", "infer_module", "load_corpus"]


def infer_module(path: Path) -> str:
    """Dotted module name for ``path`` (see the module docstring).

    Paths outside any ``repro`` directory fall back to the file stem,
    so ad-hoc single-file lint runs still work (module-scoped rules
    simply do not match them).
    """
    parts = list(path.parts)
    stem = path.stem
    if "repro" in parts[:-1]:
        directories = parts[:-1]
        anchor = len(directories) - 1 - directories[::-1].index("repro")
        packages = parts[anchor:-1]
    else:
        packages = []
    if stem == "__init__":
        return ".".join(packages) if packages else stem
    return ".".join([*packages, stem]) if packages else stem


@dataclass
class SourceFile:
    """One parsed source file plus its lint-relevant metadata."""

    path: Path
    text: str
    module: str
    tree: ast.Module | None
    parse_error: Finding | None
    suppressions: SuppressionSet

    @classmethod
    def from_text(
        cls, path: Path, text: str, *, module: str | None = None
    ) -> "SourceFile":
        """Parse ``text`` as ``path``'s contents (tests inject sources)."""
        if module is None:
            module = infer_module(path)
        tree: ast.Module | None = None
        parse_error: Finding | None = None
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            parse_error = Finding(
                rule="parse-error",
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"cannot parse: {exc.msg}",
                severity=Severity.ERROR,
            )
        return cls(
            path=path,
            text=text,
            module=module,
            tree=tree,
            parse_error=parse_error,
            suppressions=parse_suppressions(text),
        )

    @classmethod
    def from_path(cls, path: Path) -> "SourceFile":
        return cls.from_text(path, path.read_text(encoding="utf-8"))

    def in_package(self, *prefixes: str) -> bool:
        """Whether this file's module sits under any of ``prefixes``."""
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )


@dataclass
class Corpus:
    """Every file of one analysis run, indexed by module name."""

    files: list[SourceFile] = field(default_factory=list)

    def __iter__(self) -> Iterator[SourceFile]:
        return iter(self.files)

    def __len__(self) -> int:
        return len(self.files)

    def by_module(self, module: str) -> SourceFile | None:
        for file in self.files:
            if file.module == module:
                return file
        return None


def _iter_python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    yield from sorted(root.rglob("*.py"))


def load_corpus(paths: Iterable[Path | str]) -> Corpus:
    """Collect and parse every ``.py`` file under ``paths``.

    Missing paths raise :class:`FileNotFoundError` — a lint run over a
    typo'd path must fail loudly, not exit 0 on an empty corpus.
    """
    corpus = Corpus()
    seen: set[Path] = set()
    for given in paths:
        root = Path(given)
        if not root.exists():
            raise FileNotFoundError(f"lint path does not exist: {given}")
        for path in _iter_python_files(root):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            corpus.files.append(SourceFile.from_path(path))
    return corpus
